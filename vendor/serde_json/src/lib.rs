//! Minimal JSON text layer over the vendored `serde::Value` tree.
//!
//! Provides the two entry points the workspace uses — [`to_string`] and
//! [`from_str`] — with a wire format compatible with upstream
//! `serde_json` for the derived types in this repository. Floats are
//! written with Rust's shortest round-trip formatting, so `f32` weights
//! survive the decimal round-trip exactly.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Fails when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Fails on malformed JSON or a structure mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // Shortest round-trip representation; force a fractional part
            // so the token re-parses as a float, as upstream does.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        self.pos += 1; // past the `u`
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::Float(f))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            // Integer literal too large for 64 bits: fall back to float.
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Ok(Value::Float(f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert!(!from_str::<bool>(" false ").unwrap());
    }

    #[test]
    fn f32_values_survive_roundtrip_exactly() {
        // 0.3f32 rounds to the same bits as the long literal; use the next
        // representable value above 0.3 to keep an "awkward" mantissa case.
        for &v in &[
            0.1f32,
            -1e-30,
            3.4e38,
            1.0,
            -0.0,
            f32::EPSILON + 0.3,
            1.5e-9,
        ] {
            let json = to_string(&v).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {json}");
        }
    }

    #[test]
    fn integral_floats_keep_a_fractional_part() {
        assert_eq!(to_string(&1.0f32).unwrap(), "1.0");
        let back: f32 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f32, -2.0, 3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,-2.0,3.25]");
        assert_eq!(from_str::<Vec<f32>>(&json).unwrap(), v);
        let pair = (7usize, 9usize);
        assert_eq!(
            from_str::<(usize, usize)>(&to_string(&pair).unwrap()).unwrap(),
            pair
        );
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tπ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<bool>("not json").is_err());
        assert!(from_str::<Vec<f32>>("[1.0,").is_err());
        assert!(from_str::<u32>("42 garbage").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("{\"a\":}").is_err());
    }

    #[test]
    fn non_finite_floats_fail_to_serialize() {
        assert!(to_string(&f32::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
