//! Minimal stand-in for the `serde` crate used to build offline.
//!
//! Instead of upstream's visitor-based architecture, this crate uses a
//! simple self-describing [`Value`] tree as the interchange format. The
//! [`Serialize`]/[`Deserialize`] traits convert to and from [`Value`];
//! `serde_json` (also vendored) renders [`Value`] as JSON text that is
//! wire-compatible with what upstream `serde_json` produces for the types
//! this workspace derives (structs with named fields, externally-tagged
//! enums, tuples as arrays, `Option` as the value or `null`).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format of this vendored
/// serde implementation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object by name.
    pub fn field<'v>(pairs: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
        pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// (De)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A type mismatch at deserialization time.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] interchange tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] interchange tree.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`].
    ///
    /// # Errors
    ///
    /// Fails on type or structure mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent; `Option` overrides this to
    /// produce `None`, everything else errors.
    ///
    /// # Errors
    ///
    /// Fails (by default) because the field is required.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected a tuple of {LEN} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let pair = (3usize, 4usize);
        assert_eq!(
            <(usize, usize)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
        let some: Option<f32> = Some(1.5);
        assert_eq!(Option::<f32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<f32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<f32>::missing_field("x").unwrap(), None);
        assert!(f32::missing_field("x").is_err());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(usize::from_value(&Value::Str("no".into())).is_err());
        assert!(usize::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(Vec::<f32>::from_value(&Value::Bool(true)).is_err());
        assert!(<(usize, usize)>::from_value(&Value::Array(vec![Value::UInt(1)])).is_err());
    }
}
