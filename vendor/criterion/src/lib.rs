//! Minimal benchmarking harness, API-compatible with the subset of
//! `criterion` this workspace uses (`harness = false` bench targets).
//!
//! Differences from upstream: no statistical analysis, plots, or saved
//! baselines. Each benchmark runs a short warm-up, then a fixed number of
//! timed samples, and prints mean / best per-iteration wall time (plus
//! throughput when configured). Good enough for before/after comparisons
//! on one machine, which is all the workspace benches are for.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. images) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing loop handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the best sample, filled by `iter`.
    best: Duration,
    /// Mean per-iteration time across all samples, filled by `iter`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms of work or 3 calls, whichever is later,
        // and size the per-sample iteration count from the observed cost.
        let warm_start = Instant::now();
        let mut warm_calls = 0u32;
        while warm_calls < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_calls += 1;
            if warm_calls >= 1000 {
                break;
            }
        }
        let per_call = warm_start.elapsed() / warm_calls;
        // Aim for ~30ms per sample, clamped to keep tiny kernels honest
        // and huge ones bounded.
        let iters = (Duration::from_millis(30).as_nanos() / per_call.as_nanos().max(1))
            .clamp(1, 100_000) as u32;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let sample = start.elapsed() / iters;
            total += sample;
            best = best.min(sample);
        }
        self.best = best;
        self.mean = total / self.samples as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates benchmarks with work-per-iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            best: Duration::ZERO,
            mean: Duration::ZERO,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.mean > Duration::ZERO => {
                format!("  ({:.1} elem/s)", n as f64 / b.mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if b.mean > Duration::ZERO => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / (1024.0 * 1024.0) / b.mean.as_secs_f64()
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} mean {:>12?}   best {:>12?}{rate}",
            self.name, id, b.mean, b.best
        );
        self
    }

    /// Ends the group (upstream parity; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, like upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, like upstream `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2).throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.finish();
    }

    mod macros {
        use super::super::*;

        fn trivial(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }

        criterion_group!(benches, trivial);

        #[test]
        fn group_macro_produces_callable() {
            benches();
        }
    }
}
