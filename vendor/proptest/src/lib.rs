//! Minimal property-testing harness, API-compatible with the subset of
//! `proptest` this workspace uses.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs but is not minimized), and the case stream is deterministic —
//! each test function replays the same inputs on every run, which keeps
//! CI reproducible.
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {...} }`
//! * range strategies over the primitive numeric types,
//! * [`collection::vec`],
//! * tuples of strategies,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the workspace's heavier
        // numeric properties fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Test-case outcomes and the RNG driving input generation.
pub mod test_runner {
    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert!` (or friends) failed.
        Fail(String),
    }

    /// Deterministic RNG for input generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one test function, keyed by its name.
        pub fn for_test(name: &str) -> Self {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for b in name.bytes() {
                state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            TestRng { state }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    (self.start as f64 + (self.end as f64 - self.start as f64) * u01) as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)`: a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` call site needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. See the crate docs for the supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let mut __proptest_inputs = ::std::string::String::new();
                    $(
                        let __proptest_value = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                        __proptest_inputs.push_str(&format!(
                            "{} = {:?}; ",
                            stringify!($arg),
                            &__proptest_value
                        ));
                        let $arg = __proptest_value;
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {case}: {msg}\n  inputs: {__proptest_inputs}",
                                stringify!($name),
                            );
                        }
                    }
                    let _ = __proptest_inputs;
                }
            }
        )*
    };
    // No config attribute: the fn-list is matched explicitly (rather than
    // by a `tt` catch-all) so unsupported syntax is a parse error instead
    // of infinite recursion.
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $crate::proptest!(
            @run ($crate::ProptestConfig::default());
            $( $(#[$meta])* fn $name ( $($arg in $strat),* ) $body )*
        );
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..17, b in -2.0f32..4.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..4.0).contains(&b));
        }

        #[test]
        fn vec_strategy_length_and_elements(v in collection::vec(1usize..6, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..6).contains(&e)));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut a = TestRng::for_test("some_test");
        let mut b = TestRng::for_test("some_test");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(x in 0u32..5) {
                prop_assert!(false, "boom");
            }
        }
        always_fails();
    }
}
