//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the vendored `serde` crate.
//!
//! No `syn`/`quote` (offline build), so the item is parsed directly from
//! the raw token stream. Supported shapes — exactly what the workspace
//! uses:
//!
//! * structs with named fields,
//! * enums with unit variants, struct variants, and single-field tuple
//!   (newtype) variants.
//!
//! Generics, tuple structs, and `#[serde(...)]` attributes are rejected
//! with a compile error.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> Result<(), String> {
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            _ => return Err("expected `[...]` after `#`".into()),
        }
    }
    Ok(())
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, got {other:?}")),
    }
}

/// Advances past one type, stopping after the top-level `,` (or at end).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i64;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &Group) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i)?;
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i)?;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&toks, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(group: &Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i)?;
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i)?;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g) != 1 {
                    return Err(format!(
                        "variant `{name}`: only single-field tuple variants are supported"
                    ));
                }
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                return Err(format!(
                    "expected `,` after variant `{name}`, got {other:?}"
                ))
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i)?;
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i)?;
    let name = expect_ident(&toks, &mut i)?;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("`{name}`: generic types are not supported"));
        }
    }
    match (kw.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Struct {
                name,
                fields: parse_named_fields(g)?,
            })
        }
        ("struct", _) => Err(format!(
            "`{name}`: only structs with named fields are supported"
        )),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g)?,
            })
        }
        _ => Err(format!("cannot derive for `{kw} {name}`")),
    }
}

fn serialize_fields_object(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({access_prefix}{f})),"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(""))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = serialize_fields_object(fields, "&self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vname}(inner) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(inner))]),"
                        ),
                        VariantKind::Struct(fields) => {
                            let bindings = fields.join(", ");
                            let body = serialize_fields_object(fields, "");
                            format!(
                                "{name}::{vname} {{ {bindings} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), {body})]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn deserialize_fields(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match ::serde::Value::field(pairs, {f:?}) {{\n\
                     Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                     None => ::serde::Deserialize::missing_field({f:?})?,\n\
                 }},"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = deserialize_fields(fields);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let pairs = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", v))?;\n\
                         Ok({name} {{ {body} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Struct(fields) => {
                            let body = deserialize_fields(fields);
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let pairs = inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", inner))?;\n\
                                     Ok({name}::{vname} {{ {body} }})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
                                 let (tag, inner) = &tagged[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::expected(\"enum variant\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
