//! Minimal stand-in for the `rand_distr` crate: the [`Distribution`]
//! trait plus the [`Normal`] and [`Uniform`] distributions used by the
//! workspace. See `vendor/rand` for why this exists.

use rand::Rng;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from [`Normal::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is negative or not finite"),
            NormalError::MeanTooSmall => write!(f, "mean is not finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution `N(mean, std²)` over `f32`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f32,
    std: f32,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Fails when `std` is negative or either parameter is not finite.
    pub fn new(mean: f32, std: f32) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std.is_finite() || std < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std })
    }
}

impl Distribution<f32> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller; u1 is kept in (0, 1] so the log is finite.
        let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std * z as f32
    }
}

/// Uniform distribution over `[lo, hi)` for `f32`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f32,
    hi: f32,
}

impl Uniform {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` (matching upstream `rand 0.8`).
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(lo < hi, "Uniform::new called with empty range");
        Uniform { lo, hi }
    }
}

impl Distribution<f32> for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (self.lo as f64 + (self.hi as f64 - self.lo as f64) * u01) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let dist = Normal::new(2.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.02, "mean={mean}");
        assert!((var - 0.25).abs() < 0.02, "var={var}");
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f32::NAN).is_err());
        assert!(Normal::new(f32::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn uniform_stays_in_range() {
        let dist = Uniform::new(-1.5, 2.5);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-1.5..2.5).contains(&v));
        }
    }
}
