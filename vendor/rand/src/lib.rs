//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no access to a cargo registry, so the
//! workspace vendors exactly the API surface it uses: [`Rng`],
//! [`SeedableRng`], and [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic across platforms, which is
//! what the reproduction experiments require. The bit streams differ from
//! upstream `rand`'s `StdRng` (ChaCha12), so seeds produce different but
//! equally reproducible sequences.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a single `u64` seed (via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Decomposes into `(lo, hi, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (lo, hi) = self.into_inner();
        (lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                // 53 uniform mantissa bits, scaled into [lo, hi).
                let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + (hi as f64 - lo as f64) * u01;
                v as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Types producible by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// The random number generator interface used across the workspace.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` (full-range integers, unit-interval floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        let (lo, hi, inclusive) = range.bounds();
        T::sample_uniform(self, lo, hi, inclusive)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, the workspace's standard RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..4.0);
            assert!((-2.0..4.0).contains(&f));
            let inc: u64 = rng.gen_range(5..=5);
            assert_eq!(inc, 5);
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
