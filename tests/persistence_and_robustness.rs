//! Cross-crate persistence round-trips and failure-injection tests: the
//! detector must survive serialization exactly, and must fail loudly —
//! never silently — on malformed inputs.

use novelty::{
    load_detector, save_detector, ClassifierConfig, NoveltyDetector, NoveltyDetectorBuilder,
    ReconstructionObjective,
};
use saliency_novelty::prelude::*;

fn trained_detector() -> (NoveltyDetector, DrivingDataset) {
    let data = DatasetConfig::indoor()
        .with_len(20)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(8);
    let detector = NoveltyDetectorBuilder::paper()
        .classifier_config(ClassifierConfig {
            hidden: vec![16, 8, 16],
            epochs: 4,
            warmup_epochs: 1,
            batch_size: 8,
            learning_rate: 3e-3,
            objective: ReconstructionObjective::Ssim { window: 7 },
        })
        .cnn_epochs(1)
        .seed(6)
        .train(&data)
        .unwrap();
    (detector, data)
}

#[test]
fn detector_file_roundtrip_preserves_everything_observable() {
    let (detector, data) = trained_detector();
    let dir = std::env::temp_dir().join("saliency_novelty_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip_detector.json");

    save_detector(&detector, &path).unwrap();
    let reloaded = load_detector(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.threshold(), detector.threshold());
    assert_eq!(reloaded.preprocessing(), detector.preprocessing());
    assert_eq!(reloaded.training_scores(), detector.training_scores());
    for frame in data.frames().iter().take(5) {
        assert_eq!(
            reloaded.score(&frame.image).unwrap(),
            detector.score(&frame.image).unwrap()
        );
        assert_eq!(
            reloaded.predict_steering(&frame.image).unwrap(),
            detector.predict_steering(&frame.image).unwrap()
        );
    }
}

#[test]
fn wrong_image_sizes_error_instead_of_misclassifying() {
    let (detector, _) = trained_detector();
    let too_small = Image::new(10, 10).unwrap();
    assert!(detector.score(&too_small).is_err());
    assert!(detector.classify(&too_small).is_err());
    assert!(detector.reconstruct(&too_small).is_err());
    assert!(detector.predict_steering(&too_small).is_err());
}

#[test]
fn non_finite_pixels_are_rejected() {
    let (detector, data) = trained_detector();
    let mut poisoned = data.frames()[0].image.clone();
    poisoned.put(3, 3, f32::NAN);
    assert!(
        detector.score(&poisoned).is_err(),
        "NaN input must not produce a silent verdict"
    );
    let mut inf = data.frames()[0].image.clone();
    inf.put(0, 0, f32::INFINITY);
    assert!(detector.classify(&inf).is_err());
}

#[test]
fn corrupted_detector_files_are_rejected() {
    let dir = std::env::temp_dir().join("saliency_novelty_integration_corrupt");
    std::fs::create_dir_all(&dir).unwrap();

    // Truncated JSON.
    let path = dir.join("truncated.json");
    let (detector, _) = trained_detector();
    save_detector(&detector, &path).unwrap();
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    assert!(load_detector(&path).is_err());

    // Valid JSON, wrong schema.
    std::fs::write(&path, "{\"layers\": []}").unwrap();
    assert!(load_detector(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_and_degenerate_datasets_fail_loudly() {
    let empty = DatasetConfig::outdoor().with_len(0).generate(0);
    assert!(NoveltyDetectorBuilder::paper().train(&empty).is_err());

    // A train fraction of zero leaves nothing to fit.
    let tiny = DatasetConfig::outdoor()
        .with_len(4)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(1);
    assert!(NoveltyDetectorBuilder::paper()
        .train_fraction(0.0)
        .train(&tiny)
        .is_err());
}

#[test]
fn network_json_is_stable_under_reserialization() {
    // Serialize → deserialize → serialize must be a fixed point (weights
    // survive the f32 decimal round-trip exactly).
    let (detector, _) = trained_detector();
    let spec1 = novelty::save_detector(&detector, std::env::temp_dir().join("sn_fixpoint.json"));
    assert!(spec1.is_ok());
    let path = std::env::temp_dir().join("sn_fixpoint.json");
    let d2 = load_detector(&path).unwrap();
    let path2 = std::env::temp_dir().join("sn_fixpoint2.json");
    save_detector(&d2, &path2).unwrap();
    let a = std::fs::read_to_string(&path).unwrap();
    let b = std::fs::read_to_string(&path2).unwrap();
    assert_eq!(a, b, "reserialization must be a fixed point");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}
