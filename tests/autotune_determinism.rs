//! Autotune must never perturb results: training, persisted detector
//! JSON and classification verdicts are byte-identical whether routine
//! selection runs the static heuristic (`SALIENCY_AUTOTUNE=off`) or
//! measured autotune (`on`, with the sanctioned timer installed). This
//! is the end-to-end proof of the registry's core invariant — every
//! routine of a family is bitwise-equal, so *which* one runs is
//! unobservable in the output.

use ndtensor::routines::{self, AutotuneMode};
use novelty::{
    save_detector, ClassifierConfig, NoveltyDetector, NoveltyDetectorBuilder,
    ReconstructionObjective,
};
use simdrive::{DatasetConfig, DrivingDataset};

fn small_dataset(seed: u64) -> DrivingDataset {
    DatasetConfig::outdoor()
        .with_len(16)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(seed)
}

fn train_quick(data: &DrivingDataset) -> NoveltyDetector {
    NoveltyDetectorBuilder::paper()
        .classifier_config(ClassifierConfig {
            hidden: vec![16, 8, 16],
            epochs: 2,
            warmup_epochs: 0,
            batch_size: 8,
            learning_rate: 3e-3,
            objective: ReconstructionObjective::Ssim { window: 7 },
        })
        .cnn_epochs(1)
        .seed(11)
        .train(data)
        .expect("quick detector trains")
}

/// One full train → persist → classify pass under the given mode,
/// returning (detector JSON bytes, verdict JSON bytes).
fn run_under(mode: AutotuneMode, data: &DrivingDataset, tag: &str) -> (Vec<u8>, Vec<u8>) {
    routines::set_autotune(mode);
    let detector = train_quick(data);
    let path = std::env::temp_dir().join(format!("sn_autotune_{tag}.json"));
    save_detector(&detector, &path).expect("detector saves");
    let detector_json = std::fs::read(&path).expect("saved detector reads");
    let _ = std::fs::remove_file(&path);
    let verdicts: Vec<_> = data
        .frames()
        .iter()
        .take(6)
        .map(|f| detector.classify(&f.image).expect("classifies"))
        .collect();
    let verdict_json = serde_json::to_string(&verdicts)
        .expect("verdicts serialize")
        .into_bytes();
    (detector_json, verdict_json)
}

#[test]
fn detector_json_is_byte_identical_autotune_on_vs_off() {
    let data = small_dataset(21);
    // Install the sanctioned timer so `on` means *measured* selection,
    // not the heuristic fallback.
    obs::install_kernel_timer();
    assert!(routines::timer_installed());

    let (det_off, verdicts_off) = run_under(AutotuneMode::Off, &data, "off");
    assert!(
        routines::selection_table().is_empty(),
        "heuristic mode caches nothing"
    );
    let (det_on, verdicts_on) = run_under(AutotuneMode::On, &data, "on");
    let table = routines::selection_table();
    assert!(
        table.iter().any(|e| e.measured),
        "autotune with a timer must measure at least one shape: {table:?}"
    );

    assert_eq!(
        det_off, det_on,
        "persisted detector JSON differs between autotune modes"
    );
    assert_eq!(
        verdicts_off, verdicts_on,
        "classification verdicts differ between autotune modes"
    );

    // Second resolution under the same mode: cached selections replay.
    let (det_again, verdicts_again) = run_under(AutotuneMode::On, &data, "on2");
    assert_eq!(det_on, det_again);
    assert_eq!(verdicts_on, verdicts_again);

    routines::set_autotune(AutotuneMode::Off);
}
