//! Isolation and determinism proofs for the multi-tenant stream server:
//! serving K interleaved tenants must leave each tenant's decision
//! sequence bit-identical to a solo run (whatever the arrival order and
//! whoever else is on the box), a 100 % faulted tenant must not perturb
//! its neighbours by one byte, shed frames must still obey the
//! one-decision-per-frame contract, and per-tenant alarm logs must
//! survive thread-count changes and half-written files.

use std::path::PathBuf;

use novelty::{
    AlarmLog, ClassifierConfig, CostModel, DecisionSource, NoveltyDetector, NoveltyDetectorBuilder,
    QueueConfig, ReconstructionObjective, ShedReason, StreamConfig, StreamDecision, StreamRuntime,
    StreamServer, TenantSpec,
};
use obs::{Recorder, RunRecorder};
use proptest::prelude::*;
use simdrive::{standard_mix, FaultBurst, FaultKind, TenantTraffic, TrafficConfig, World};

const HEIGHT: usize = 40;
const WIDTH: usize = 80;

/// One tiny trained detector shared by every test in this binary.
fn detector() -> &'static NoveltyDetector {
    use std::sync::OnceLock;
    static DETECTOR: OnceLock<NoveltyDetector> = OnceLock::new();
    DETECTOR.get_or_init(|| {
        let data = simdrive::DatasetConfig::outdoor()
            .with_len(24)
            .with_size(HEIGHT, WIDTH)
            .with_supersample(1)
            .generate(31);
        NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![16, 8, 16],
                epochs: 6,
                warmup_epochs: 2,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(2)
            .train(&data)
            .unwrap()
    })
}

fn stream_config() -> StreamConfig {
    StreamConfig::for_detector(detector()).with_alarm_window(6, 4)
}

fn small_traffic(name: &str, world: World) -> TrafficConfig {
    TrafficConfig::new(name, world)
        .with_size(HEIGHT, WIDTH)
        .with_supersample(1)
}

/// A queue so generous nothing ever sheds: serve decisions can then be
/// compared against solo [`StreamRuntime`] runs one-to-one.
fn lossless_queue() -> QueueConfig {
    QueueConfig {
        capacity: 1024,
        drain: 16,
        max_wait_rounds: u64::MAX,
    }
}

/// Tiny LCG + Fisher–Yates so arrival interleavings are seeded, not
/// platform-dependent.
fn next_u64(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

fn shuffle(order: &mut [usize], state: &mut u64) {
    for i in (1..order.len()).rev() {
        let j = (next_u64(state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

/// Runs a whole fleet through a [`StreamServer`] and demuxes the
/// decisions per tenant. When `order_seed` is set, the order in which
/// tenants are offered their arrivals is Fisher–Yates-shuffled every
/// round — tenant isolation means this must never change any output.
fn run_serve(
    traffics: &mut [TenantTraffic],
    queue: QueueConfig,
    config: impl Fn(usize) -> StreamConfig,
    order_seed: Option<u64>,
    recorder: &dyn Recorder,
) -> Vec<Vec<StreamDecision>> {
    let det = detector();
    let specs: Vec<TenantSpec> = traffics
        .iter()
        .enumerate()
        .map(|(i, t)| TenantSpec::new(t.name(), config(i)).with_queue(queue))
        .collect();
    let mut server = StreamServer::new(det, specs).unwrap();
    let mut out: Vec<Vec<StreamDecision>> = traffics.iter().map(|_| Vec::new()).collect();
    let mut rng = order_seed.unwrap_or(0);
    while traffics.iter().any(|t| t.remaining() > 0) || server.pending() > 0 {
        let mut order: Vec<usize> = (0..traffics.len()).collect();
        if order_seed.is_some() {
            shuffle(&mut order, &mut rng);
        }
        for &t in &order {
            let arrivals: Vec<_> = traffics[t].next_round().to_vec();
            for injected in arrivals {
                server.offer(t, injected.image).unwrap();
            }
        }
        for (t, decision) in server.step_recorded(recorder) {
            out[t].push(decision);
        }
    }
    for t in traffics.iter_mut() {
        t.reset();
    }
    out
}

/// The reference: one tenant alone on a plain [`StreamRuntime`].
fn run_solo(traffic: &TenantTraffic, config: StreamConfig) -> Vec<StreamDecision> {
    let det = detector();
    let mut runtime = StreamRuntime::new(det, config).unwrap();
    traffic
        .frames()
        .iter()
        .map(|f| runtime.process_recorded(f.image.as_ref(), obs::noop()))
        .collect()
}

fn per_tenant_log_bytes(traffic: &TenantTraffic, decisions: &[StreamDecision]) -> String {
    let mut log = AlarmLog::new(traffic.name());
    for d in decisions {
        let fault = traffic.fault_at(d.frame as usize);
        log.record(d, fault.map(|k| k.name()));
    }
    serde_json::to_string(&log).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole isolation property: interleaving K tenants through
    /// one server — with shuffled arrival orders and a fault burst on
    /// exactly one tenant — yields per-tenant decision sequences
    /// bit-identical to each tenant running *alone* on a plain
    /// StreamRuntime. Batched cross-tenant scoring, queueing and round
    /// scheduling must all be invisible.
    #[test]
    fn interleaved_serve_is_bit_identical_to_solo_runs(
        master_seed in 0u64..1000,
        order_seed in 0u64..1000,
        k in 2usize..=4,
        faulty in 0usize..4,
    ) {
        let faulty = faulty % k;
        let mut traffics: Vec<TenantTraffic> = (0..k)
            .map(|i| {
                let world = if i % 2 == 0 { World::Outdoor } else { World::Indoor };
                let mut config = small_traffic(&format!("t{i}"), world)
                    .with_len(8)
                    .with_arrivals_per_round(1 + i % 2);
                if i == faulty {
                    // A burst of every-kind trouble on one tenant only.
                    config = config
                        .with_fault_burst(FaultBurst::new(FaultKind::NanBurst, 2, 2))
                        .with_fault_burst(FaultBurst::new(FaultKind::Drop, 5, 1));
                }
                config.generate(master_seed, i).unwrap()
            })
            .collect();

        let served = run_serve(
            &mut traffics,
            lossless_queue(),
            |_| stream_config(),
            Some(order_seed),
            obs::noop(),
        );
        for (i, traffic) in traffics.iter().enumerate() {
            let solo = run_solo(traffic, stream_config());
            prop_assert_eq!(
                &served[i],
                &solo,
                "tenant {} diverged from its solo run",
                i
            );
        }
    }
}

/// The single-frame serve fast path (a coalesced batch of exactly one
/// frame skips batch assembly and scores through the scalar classify
/// path) must be invisible: a single-tenant server's decisions are
/// bit-identical to a solo [`StreamRuntime`], and to the same tenant
/// riding in a two-tenant fleet whose batches of two take the batched
/// path — while the `serve-score`/`scoring` stages and score counters
/// still fire.
#[test]
fn single_tenant_fast_path_is_bit_identical() {
    let gen_solo = || {
        small_traffic("solo", World::Outdoor)
            .with_len(10)
            .with_fault_burst(FaultBurst::new(FaultKind::NanBurst, 3, 2))
            .generate(41, 0)
            .unwrap()
    };
    let mut solo = vec![gen_solo()];
    let recorder = RunRecorder::new();
    let served = run_serve(
        &mut solo,
        lossless_queue(),
        |_| stream_config(),
        None,
        &recorder,
    )
    .remove(0);
    let reference = run_solo(&solo[0], stream_config());
    assert_eq!(
        served, reference,
        "single-tenant serve (fast path) diverged from the solo runtime"
    );

    // The same tenant in a two-tenant fleet: every round admits two
    // frames, so scoring takes the coalesced batch path instead.
    let mut pair = vec![
        gen_solo(),
        small_traffic("other", World::Indoor)
            .with_len(10)
            .generate(41, 1)
            .unwrap(),
    ];
    let fleet = run_serve(
        &mut pair,
        lossless_queue(),
        |_| stream_config(),
        None,
        obs::noop(),
    );
    assert_eq!(
        fleet[0], served,
        "fast-path decisions diverged from the coalesced batch path"
    );

    // Observability keeps its shape on the fast path.
    let report = recorder.report("serve");
    assert!(report
        .missing_stages(&["serve-score", "scoring"])
        .is_empty());
    assert!(report.counter("scoring.scores_computed").unwrap_or(0) > 0);
}

/// A tenant whose every frame is corrupted (100 % fault schedule) must
/// not change one byte of any other tenant's decisions or alarm log:
/// removing it from the fleet leaves the survivors' outputs identical.
#[test]
fn hostile_tenant_cannot_perturb_neighbours() {
    let seed = 17;
    let len = 10;
    let mut configs = standard_mix(4, len, Some(0));
    for c in configs.iter_mut() {
        c.height = HEIGHT;
        c.width = WIDTH;
        c.supersample = 1;
    }
    let gen = |idx: &[usize]| -> Vec<TenantTraffic> {
        idx.iter()
            .map(|&i| configs[i].generate(seed, i).unwrap())
            .collect()
    };

    // A deliberately tight queue: shedding is allowed to happen, and
    // must still be a per-tenant-local phenomenon.
    let queue = QueueConfig {
        capacity: 3,
        drain: 2,
        max_wait_rounds: 2,
    };

    let mut full = gen(&[0, 1, 2, 3]);
    let with_hostile = run_serve(&mut full, queue, |_| stream_config(), None, obs::noop());
    let mut survivors = gen(&[1, 2, 3]);
    let without_hostile = run_serve(
        &mut survivors,
        queue,
        |_| stream_config(),
        None,
        obs::noop(),
    );

    // The hostile tenant really was hostile…
    assert!(
        with_hostile[0]
            .iter()
            .all(|d| d.source != DecisionSource::Scored),
        "tenant 0 should never score a clean frame"
    );
    // …and the survivors can't tell whether it was there.
    for (survivor, original) in (1..4).enumerate() {
        assert_eq!(
            with_hostile[original], without_hostile[survivor],
            "tenant {original} changed when the hostile tenant left"
        );
        assert_eq!(
            per_tenant_log_bytes(&full[original], &with_hostile[original]),
            per_tenant_log_bytes(&survivors[survivor], &without_hostile[survivor]),
            "tenant {original}'s alarm log bytes changed"
        );
    }
}

/// Same fleet, same seeds ⇒ byte-identical per-tenant alarm logs at any
/// thread count, with or without an obs recorder attached.
#[test]
fn serve_logs_are_byte_identical_across_thread_counts() {
    let seed = 23;
    let mut configs = standard_mix(3, 9, Some(2));
    for c in configs.iter_mut() {
        c.height = HEIGHT;
        c.width = WIDTH;
        c.supersample = 1;
    }
    let mut traffics: Vec<TenantTraffic> = configs
        .iter()
        .enumerate()
        .map(|(i, c)| c.generate(seed, i).unwrap())
        .collect();
    let queue = QueueConfig {
        capacity: 4,
        drain: 2,
        max_wait_rounds: 3,
    };

    let recorder = RunRecorder::new();
    ndtensor::set_thread_config(ndtensor::ThreadConfig::serial());
    let serial = run_serve(&mut traffics, queue, |_| stream_config(), None, &recorder);
    ndtensor::set_thread_config(ndtensor::ThreadConfig::new(4));
    let threaded = run_serve(&mut traffics, queue, |_| stream_config(), None, obs::noop());
    ndtensor::set_thread_config(ndtensor::ThreadConfig::from_env());

    for (i, traffic) in traffics.iter().enumerate() {
        assert_eq!(
            per_tenant_log_bytes(traffic, &serial[i]),
            per_tenant_log_bytes(traffic, &threaded[i]),
            "tenant {i} log bytes differ between 1 and 4 threads"
        );
    }

    // The recorded run exposes the serve pipeline without changing it.
    let report = recorder.report("serve");
    assert!(report.missing_stages(&["serve-score"]).is_empty());
    assert!(report.counter("serve.rounds").unwrap_or(0) > 0);
}

/// Overload semantics: every offered frame still gets exactly one
/// decision, sheds carry a reason and count against health, and both
/// shed classes (queue overflow, expired queueing deadline) occur under
/// sustained pressure.
#[test]
fn shedding_preserves_one_decision_per_frame() {
    let len = 18;
    let mut traffics = vec![small_traffic("hot", World::Outdoor)
        .with_len(len)
        .with_arrivals_per_round(3)
        .generate(5, 0)
        .unwrap()];
    // Capacity 4 with drain 1 lets a backlog age past the 1-round
    // queueing deadline, while 3-per-round arrivals overflow it.
    let queue = QueueConfig {
        capacity: 4,
        drain: 1,
        max_wait_rounds: 1,
    };
    let recorder = RunRecorder::new();
    let decisions = run_serve(&mut traffics, queue, |_| stream_config(), None, &recorder).remove(0);

    assert_eq!(decisions.len(), len, "one decision per offered frame");
    for (i, d) in decisions.iter().enumerate() {
        assert_eq!(d.frame, i as u64, "decisions in frame order");
        if d.source == DecisionSource::Shed {
            assert!(d.shed.is_some());
            assert!(d.gate_fault.is_none(), "shed frames are never gated");
            assert!(d.score_error.is_none());
            // Default fallback treats unscorable frames as novel.
            assert_eq!(d.is_novel, Some(true));
        } else {
            assert!(d.shed.is_none());
        }
    }
    let reasons: Vec<ShedReason> = decisions.iter().filter_map(|d| d.shed).collect();
    assert!(
        reasons.contains(&ShedReason::QueueFull),
        "expected queue-full sheds under 3-per-round arrivals into capacity 2"
    );
    assert!(
        reasons.contains(&ShedReason::DeadlineExpired),
        "expected deadline sheds with max_wait_rounds 1"
    );
    // Sustained shedding reads as a fault stream to the health tracker.
    assert!(
        decisions
            .iter()
            .any(|d| d.health != novelty::HealthState::Healthy),
        "sustained shedding must degrade health"
    );
    // And the obs layer sees it all.
    let report = recorder.report("serve");
    let shed_total = reasons.len() as u64;
    assert_eq!(report.counter("serve.shed"), Some(shed_total));
    assert_eq!(
        report.counter("serve.shed.queue-full").unwrap_or(0)
            + report.counter("serve.shed.deadline-expired").unwrap_or(0),
        shed_total
    );
    assert_eq!(report.counter("stream-score.shed"), Some(shed_total));
}

/// The virtual cost clock makes scoring-deadline overruns a pure
/// function of the seed: same config ⇒ identical decisions (including
/// overruns and the health consequences), no wall clock involved.
#[test]
fn virtual_deadline_overruns_are_deterministic() {
    use std::time::Duration;
    let config = || {
        stream_config()
            .with_deadline(Duration::from_millis(12))
            .with_virtual_cost(CostModel {
                base: Duration::from_millis(10),
                jitter: Duration::from_millis(5),
                seed: 77,
            })
    };
    let mut traffics = vec![small_traffic("vt", World::Outdoor)
        .with_len(12)
        .generate(3, 0)
        .unwrap()];
    let a = run_serve(
        &mut traffics,
        lossless_queue(),
        |_| config(),
        None,
        obs::noop(),
    )
    .remove(0);
    let b = run_serve(
        &mut traffics,
        lossless_queue(),
        |_| config(),
        None,
        obs::noop(),
    )
    .remove(0);
    assert_eq!(a, b);
    assert!(
        a.iter().any(|d| d.deadline_overrun),
        "a 10–15 ms virtual cost against a 12 ms deadline must overrun sometimes"
    );
    assert!(a.iter().any(|d| !d.deadline_overrun), "…but not every time");
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("serve_isolation_{}_{name}", std::process::id()))
}

/// Alarm-log persistence: atomic save (no `.tmp` left behind), lossless
/// load, append-then-rewrite, and a clean failure — not a panic, not
/// garbage — on a truncated file.
#[test]
fn alarm_log_roundtrip_append_and_truncation() {
    let mut traffics = vec![small_traffic("log", World::Outdoor)
        .with_len(6)
        .with_fault_burst(FaultBurst::new(FaultKind::Drop, 2, 1))
        .generate(9, 0)
        .unwrap()];
    let decisions = run_serve(
        &mut traffics,
        lossless_queue(),
        |_| stream_config(),
        None,
        obs::noop(),
    )
    .remove(0);
    let mut log = AlarmLog::new("log");
    for d in &decisions[..4] {
        log.record(d, traffics[0].fault_at(d.frame as usize).map(|k| k.name()));
    }

    let path = temp_path("roundtrip.json");
    log.save(&path).unwrap();
    let tmp = path.with_extension("json.tmp");
    assert!(!tmp.exists(), "atomic save must not leave a .tmp sibling");
    let loaded = AlarmLog::load(&path).unwrap();
    assert_eq!(loaded, log);

    // Append rewrites atomically; the file is always a complete log.
    let tail: Vec<_> = decisions[4..]
        .iter()
        .map(|d| {
            novelty::AlarmLogEntry::from_decision(
                d,
                traffics[0].fault_at(d.frame as usize).map(|k| k.name()),
            )
        })
        .collect();
    let appended = AlarmLog::append(&path, &tail).unwrap();
    assert_eq!(appended.entries.len(), decisions.len());
    assert_eq!(AlarmLog::load(&path).unwrap(), appended);

    // A truncated file (simulating a non-atomic writer dying mid-write)
    // must fail to load with an error, not a panic or a partial log.
    let json = std::fs::read_to_string(&path).unwrap();
    let cut = temp_path("truncated.json");
    std::fs::write(&cut, &json[..json.len() / 2]).unwrap();
    let err = AlarmLog::load(&cut).unwrap_err();
    assert!(
        err.to_string().contains("not a valid alarm log"),
        "unexpected error: {err}"
    );
    // Appending to the truncated log refuses rather than clobbering it.
    assert!(AlarmLog::append(&cut, &appended.entries).is_err());

    // Schema mismatches are rejected explicitly.
    let mut wrong = appended.clone();
    wrong.schema_version += 1;
    let bad = temp_path("schema.json");
    std::fs::write(&bad, serde_json::to_string(&wrong).unwrap()).unwrap();
    let err = AlarmLog::load(&bad).unwrap_err();
    assert!(err.to_string().contains("unsupported alarm log schema"));

    for p in [path, cut, bad] {
        let _ = std::fs::remove_file(p);
    }
}
