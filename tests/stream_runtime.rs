//! End-to-end robustness tests of the fault-tolerant streaming runtime:
//! every injected fault class must yield a decision under every fallback
//! policy (no panics, no silent frame drops), the health machine must
//! degrade and recover, and all of it must be visible in the obs report.

use novelty::monitor::AlarmState;
use novelty::{
    ClassifierConfig, DecisionSource, FallbackPolicy, HealthState, NoveltyDetector,
    NoveltyDetectorBuilder, ReconstructionObjective, StreamConfig, StreamDecision, StreamRuntime,
};
use obs::{Recorder, RunRecorder};
use simdrive::{DriveConfig, FaultBurst, FaultConfig, FaultInjector, FaultKind, World};
use vision::Image;

const HEIGHT: usize = 40;
const WIDTH: usize = 80;

/// One tiny trained detector shared by every test in this binary.
fn detector() -> &'static NoveltyDetector {
    use std::sync::OnceLock;
    static DETECTOR: OnceLock<NoveltyDetector> = OnceLock::new();
    DETECTOR.get_or_init(|| {
        let data = simdrive::DatasetConfig::outdoor()
            .with_len(24)
            .with_size(HEIGHT, WIDTH)
            .with_supersample(1)
            .generate(31);
        NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![16, 8, 16],
                epochs: 6,
                warmup_epochs: 2,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(2)
            .train(&data)
            .unwrap()
    })
}

fn drive_frames(len: usize, seed: u64) -> Vec<Image> {
    DriveConfig::new(World::Outdoor)
        .with_len(len)
        .with_size(HEIGHT, WIDTH)
        .with_supersample(1)
        .simulate(seed)
        .frames()
        .iter()
        .map(|f| f.image.clone())
        .collect()
}

/// Runs `frames` through a fresh runtime with the given fault schedule.
fn run_stream(
    policy: FallbackPolicy,
    fault_config: FaultConfig,
    frames: &[Image],
    recorder: &dyn Recorder,
) -> Vec<StreamDecision> {
    let det = detector();
    let config = StreamConfig::for_detector(det)
        .with_fallback(policy)
        .with_alarm_window(6, 4);
    let mut runtime = StreamRuntime::new(det, config).unwrap();
    let mut injector = FaultInjector::new(fault_config);
    frames
        .iter()
        .enumerate()
        .map(|(i, frame)| {
            let injected = injector.apply(i, frame);
            runtime.process_recorded(injected.image.as_ref(), recorder)
        })
        .collect()
}

#[test]
fn every_fault_class_yields_a_decision_under_every_policy() {
    let frames = drive_frames(20, 3);
    let burst = 4..10; // 6 consecutive faulty frames
    for kind in FaultKind::all() {
        for policy in FallbackPolicy::all() {
            let recorder = RunRecorder::new();
            let fault_config =
                FaultConfig::new(0).with_burst(FaultBurst::new(kind, burst.start, burst.len()));
            let decisions = run_stream(policy, fault_config, &frames, &recorder);
            let label = format!("kind {} policy {}", kind.name(), policy.name());

            // No silent frame drops: one decision per frame, in order.
            assert_eq!(decisions.len(), frames.len(), "{label}");
            for (i, d) in decisions.iter().enumerate() {
                assert_eq!(d.frame, i as u64, "{label}");
                // Every frame carries a flag unless the abstain policy
                // explicitly declined one.
                match d.source {
                    DecisionSource::Abstained => {
                        assert_eq!(policy, FallbackPolicy::Abstain, "{label}");
                        assert_eq!(d.is_novel, None, "{label}");
                    }
                    _ => assert!(d.is_novel.is_some(), "{label} frame {i}"),
                }
            }

            // The burst is visible: the gate rejected at least one frame
            // (freeze needs a couple of repeats before it reads as stuck,
            // every other class is caught immediately).
            let rejected = decisions[burst.clone()]
                .iter()
                .filter(|d| d.gate_fault.is_some())
                .count();
            assert!(rejected >= 1, "{label}: no gate rejection in the burst");
            // Outside the burst every frame scores normally.
            for d in decisions[..burst.start].iter() {
                assert_eq!(d.source, DecisionSource::Scored, "{label}");
            }

            // The whole episode is visible in the obs report.
            let report = recorder.report("stream");
            assert_eq!(
                report.counter("stream-score.frames"),
                Some(frames.len() as u64),
                "{label}"
            );
            assert!(
                report.counter("stream-score.gate_rejected").unwrap_or(0) >= rejected as u64,
                "{label}"
            );
            assert!(
                report.missing_stages(&["stream-score"]).is_empty(),
                "{label}"
            );
        }
    }
}

#[test]
fn health_degrades_through_failsafe_and_recovers() {
    let frames = drive_frames(30, 5);
    let recorder = RunRecorder::new();
    let fault_config = FaultConfig::new(0).with_burst(FaultBurst::new(FaultKind::NanBurst, 8, 8));
    let decisions = run_stream(
        FallbackPolicy::TreatAsNovel,
        fault_config,
        &frames,
        &recorder,
    );

    // Degraded after 2 consecutive faults, FailSafe after 6.
    assert_eq!(decisions[9].health, HealthState::Degraded);
    assert_eq!(decisions[13].health, HealthState::FailSafe);
    // Recovery is stepwise with hysteresis: 4 clean frames per level.
    assert_eq!(decisions[19].health, HealthState::Degraded);
    assert_eq!(decisions[23].health, HealthState::Healthy);
    assert_eq!(decisions.last().unwrap().health, HealthState::Healthy);

    // The sustained fault raised the alarm (treat-as-novel feeds the
    // window), and the alarm cleared once scoring resumed.
    assert!(decisions[8..16]
        .iter()
        .any(|d| d.alarm == AlarmState::Raised));
    assert_eq!(decisions.last().unwrap().alarm, AlarmState::Nominal);

    // Healthy→Degraded→FailSafe→Degraded→Healthy = 4 transitions, all
    // counted in the report.
    let report = recorder.report("stream");
    assert_eq!(report.counter("stream-score.health.transitions"), Some(4));
    assert_eq!(report.counter("stream-score.health.to_fail-safe"), Some(1));
    assert_eq!(
        report.counter("stream-score.gate_rejected.non-finite-pixels"),
        Some(8)
    );
    assert_eq!(report.counter("stream-score.fallbacks"), Some(8));
    assert!(report.counter("stream-score.alarm.raised_frames").unwrap() > 0);
}

#[test]
fn seeded_random_fault_runs_are_deterministic() {
    let frames = drive_frames(25, 7);
    let config = || FaultConfig::new(99).with_random(0.25, 3);
    let a = run_stream(
        FallbackPolicy::HoldLastVerdict,
        config(),
        &frames,
        obs::noop(),
    );
    let b = run_stream(
        FallbackPolicy::HoldLastVerdict,
        config(),
        &frames,
        obs::noop(),
    );
    assert_eq!(a, b);
    // The schedule actually fired (rate 0.25 over 25 frames).
    assert!(a.iter().any(|d| d.source != DecisionSource::Scored));
    // A different seed corrupts differently.
    let other = FaultConfig::new(100).with_random(0.25, 3);
    let c = run_stream(FallbackPolicy::HoldLastVerdict, other, &frames, obs::noop());
    let faults =
        |v: &[StreamDecision]| -> Vec<bool> { v.iter().map(|d| d.gate_fault.is_some()).collect() };
    assert_ne!(faults(&a), faults(&c));
}

#[test]
fn hold_last_coasts_and_abstain_reports_gaps() {
    let frames = drive_frames(12, 9);
    let fault_config = || FaultConfig::new(0).with_burst(FaultBurst::new(FaultKind::Drop, 5, 3));

    let held = run_stream(
        FallbackPolicy::HoldLastVerdict,
        fault_config(),
        &frames,
        obs::noop(),
    );
    for d in &held[5..8] {
        assert_eq!(d.source, DecisionSource::FallbackHeld);
        // The held verdict is the one scored just before the gap.
        assert_eq!(d.verdict, held[4].verdict);
    }

    let abstained = run_stream(
        FallbackPolicy::Abstain,
        fault_config(),
        &frames,
        obs::noop(),
    );
    for d in &abstained[5..8] {
        assert_eq!(d.source, DecisionSource::Abstained);
        assert_eq!(d.is_novel, None);
    }
    // Scoring resumes after the gap under both policies.
    assert_eq!(held[8].source, DecisionSource::Scored);
    assert_eq!(abstained[8].source, DecisionSource::Scored);
}
