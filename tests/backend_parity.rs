//! Backend-registry parity harness.
//!
//! The `ScoreBackend` refactor must be a pure re-plumbing: each of the
//! paper's three legacy pipelines, trained and scored *through the
//! trait*, has to produce bit-identical scores and byte-identical
//! persisted specs at any thread count. The ensemble layer on top must
//! fuse deterministically: `fuse_verdict` is a pure function of the
//! (unordered) member-score set and the quorum, order-independent and
//! monotone in both the oriented ranks and the votes.
//!
//! Thread-config tests mutate process-global state and serialise on one
//! mutex, same as `parallel_parity.rs`.

use std::sync::Mutex;

use ndtensor::{set_thread_config, ThreadConfig};
use novelty::{
    detector_to_spec, fuse_verdict, BackendKind, BackendScore, Direction, NoveltyDetectorBuilder,
};
use proptest::prelude::*;
use simdrive::{DatasetConfig, DrivingDataset};
use vision::Image;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the environment-derived config when dropped, so a failing
/// test does not leak its thread count into later tests.
struct ConfigRestore;

impl Drop for ConfigRestore {
    fn drop(&mut self) {
        set_thread_config(ThreadConfig::from_env());
    }
}

fn tiny_dataset(seed: u64) -> DrivingDataset {
    DatasetConfig::outdoor()
        .with_len(16)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(seed)
}

fn probe_images() -> Vec<Image> {
    (0..5)
        .map(|s| {
            Image::from_fn(40, 80, |y, x| ((y * 7 + x * 3 + s * 11) % 31) as f32 / 30.0).unwrap()
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Every legacy pipeline, trained and scored through the `ScoreBackend`
/// trait, is bit-identical between one worker thread and four — scores,
/// calibration, and the persisted JSON spec alike.
#[test]
fn legacy_backends_are_bit_identical_across_thread_counts() {
    let _guard = lock();
    let _restore = ConfigRestore;
    let data = tiny_dataset(41);
    let probes = probe_images();

    for kind in BackendKind::legacy() {
        let build = || {
            NoveltyDetectorBuilder::for_kind(kind)
                .cnn_epochs(1)
                .ae_epochs(2)
                .seed(13)
                .train(&data)
                .expect("tiny detector trains")
        };

        set_thread_config(ThreadConfig::serial());
        let reference = build();
        let ref_scores: Vec<f32> = probes
            .iter()
            .map(|img| reference.score(img).unwrap())
            .collect();
        let ref_spec = serde_json::to_string(&detector_to_spec(&reference).unwrap()).unwrap();

        for threads in [1usize, 4] {
            set_thread_config(ThreadConfig::new(threads));
            let detector = build();
            assert_eq!(detector.kind(), kind);
            assert_eq!(
                bits(detector.training_scores()),
                bits(reference.training_scores()),
                "{} training scores, threads={threads}",
                kind.id()
            );
            assert_eq!(
                detector.threshold().value().to_bits(),
                reference.threshold().value().to_bits(),
                "{} threshold, threads={threads}",
                kind.id()
            );
            // Scoring through the trait object (the batch path fans out
            // over the pool) matches the serial reference bit for bit.
            let batch = detector.classify_batch(&probes).unwrap();
            let scores: Vec<f32> = batch.iter().map(|v| v.score).collect();
            assert_eq!(
                bits(&scores),
                bits(&ref_scores),
                "{} scores, threads={threads}",
                kind.id()
            );
            for (verdict, score) in batch.iter().zip(&ref_scores) {
                assert_eq!(verdict.backend, kind.id());
                assert_eq!(verdict.score.to_bits(), score.to_bits());
                assert_eq!(verdict.total_votes, 1);
            }
            // The persisted spec is byte-identical, so same-seed runs
            // write the same detector file at any thread count.
            let spec = serde_json::to_string(&detector_to_spec(&detector).unwrap()).unwrap();
            assert_eq!(spec, ref_spec, "{} spec JSON, threads={threads}", kind.id());
        }
    }
}

/// The distinct backend ids member scores can carry (fusion sorts by
/// id; real ensembles never hold duplicates).
const IDS: [&str; 6] = [
    "raw+mse",
    "vbp+mse",
    "vbp+ssim",
    "model-char",
    "aux-a",
    "aux-b",
];

fn member(backend: &'static str, rank: f32, novel: bool, lower_is_novel: bool) -> BackendScore {
    BackendScore {
        backend,
        score: rank,
        threshold: 50.0,
        direction: if lower_is_novel {
            Direction::LowerIsNovel
        } else {
            Direction::HigherIsNovel
        },
        percentile_rank: rank,
        is_novel: novel,
    }
}

/// Materialises raw `(rank, novel, lower_is_novel)` draws into member
/// scores with distinct backend ids (fusion sorts by id; real ensembles
/// never hold duplicates).
fn make_members(raw: &[(f32, u8, u8)]) -> Vec<BackendScore> {
    raw.iter()
        .enumerate()
        .map(|(i, &(rank, novel, lower))| member(IDS[i], rank, novel == 1, lower == 1))
        .collect()
}

/// Deterministically permutes `v` from a seed (Fisher–Yates over a
/// splitmix-style stream), so order-independence is exercised without
/// relying on ambient randomness.
fn permute<T>(mut v: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % (i + 1);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fusion is a pure function: the same member set fuses to the same
    /// verdict, bit for bit, no matter how the members are ordered.
    #[test]
    fn fusion_is_deterministic_and_order_independent(
        raw in collection::vec((0.0f32..100.0, 0u8..2, 0u8..2), 1..7),
        quorum_frac in 0.0f64..1.0,
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let members = make_members(&raw);
        let quorum = 1 + (quorum_frac * (members.len() - 1) as f64) as u32;
        let once = fuse_verdict(&members, quorum);
        let again = fuse_verdict(&members, quorum);
        prop_assert_eq!(&once, &again);
        let shuffled = fuse_verdict(&permute(members.clone(), shuffle_seed), quorum);
        prop_assert_eq!(once.score.to_bits(), shuffled.score.to_bits());
        prop_assert_eq!(&once, &shuffled);

        // Bookkeeping invariants.
        prop_assert_eq!(once.backend, "ensemble");
        prop_assert_eq!(once.total_votes as usize, members.len());
        let votes = members.iter().filter(|m| m.is_novel).count() as u32;
        prop_assert_eq!(once.novel_votes, votes);
        prop_assert_eq!(once.is_novel, votes >= quorum);
        prop_assert!((0.0..=100.0).contains(&once.score));
    }

    /// Raising one member's oriented rank (everything else fixed) never
    /// lowers the fused score, and flipping one member's vote to novel
    /// never un-flags the frame.
    #[test]
    fn fusion_is_monotone_in_ranks_and_votes(
        raw in collection::vec((0.0f32..100.0, 0u8..2, 0u8..2), 1..7),
        which_frac in 0.0f64..1.0,
        bump_frac in 0.0f64..1.0,
    ) {
        let members = make_members(&raw);
        let quorum = (members.len() as u32 / 2) + 1;
        let which = (which_frac * (members.len() - 1) as f64) as usize;
        let before = fuse_verdict(&members, quorum);

        // Oriented rank is `rank` under HigherIsNovel and `100 - rank`
        // under LowerIsNovel; bump it by moving the raw rank the right
        // way within [0, 100].
        let mut bumped = members.clone();
        let old = bumped[which].percentile_rank;
        let rank = match bumped[which].direction {
            Direction::HigherIsNovel => old + (bump_frac as f32) * (100.0 - old),
            Direction::LowerIsNovel => old - (bump_frac as f32) * old,
        };
        bumped[which].percentile_rank = rank;
        prop_assert!(bumped[which].oriented_rank() >= members[which].oriented_rank());
        let after = fuse_verdict(&bumped, quorum);
        prop_assert!(
            after.score >= before.score,
            "fused score dropped: {} -> {}", before.score, after.score
        );

        let mut voted = members.clone();
        voted[which].is_novel = true;
        let after_vote = fuse_verdict(&voted, quorum);
        prop_assert!(after_vote.novel_votes >= before.novel_votes);
        // A novel verdict can only be strengthened by another vote.
        prop_assert!(!before.is_novel || after_vote.is_novel);
    }
}
