//! End-to-end tests of the `saliency-novelty` CLI binary: generate →
//! train → info/classify/eval against real subprocess invocations.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_saliency-novelty")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary launches")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("saliency_novelty_cli_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a tiny detector once; several tests reuse the file.
fn trained_detector_path() -> &'static Path {
    use std::sync::OnceLock;
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let dir = temp_dir("train");
        let detector = dir.join("detector.json");
        let out = run(&[
            "train",
            "--world",
            "outdoor",
            "--len",
            "30",
            "--seed",
            "3",
            "--cnn-epochs",
            "1",
            "--ae-epochs",
            "3",
            "--out",
            detector.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "train failed: {}\n{}",
            stdout(&out),
            stderr(&out)
        );
        detector
    })
}

#[test]
fn help_is_printed_without_arguments() {
    let out = run(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
    let out = run(&["--help"]);
    assert!(stdout(&out).contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn usage_errors_exit_2_and_runtime_errors_exit_1() {
    // Usage class: unknown command, unknown flag, unparseable value,
    // missing required flag, bad --threads.
    for args in [
        vec!["frobnicate"],
        vec!["generate", "--frobnicate", "1"],
        vec!["generate", "--len", "many"],
        vec!["classify"],
        vec!["eval", "--detector", "x.json", "--threads", "0"],
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
    }
    // Runtime class: well-formed invocation, missing file.
    let out = run(&["info", "--detector", "/nonexistent.json"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let out = run(&["report", "--file", "/nonexistent.json"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
}

#[test]
fn generate_writes_frames_and_index() {
    let dir = temp_dir("generate");
    let out = run(&[
        "generate",
        "--world",
        "indoor",
        "--len",
        "4",
        "--seed",
        "9",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    for i in 0..4 {
        assert!(dir.join(format!("frame_{i:04}.pgm")).exists());
    }
    let csv = std::fs::read_to_string(dir.join("angles.csv")).unwrap();
    assert!(csv.starts_with("frame,angle"));
    assert_eq!(csv.lines().count(), 5);
    // Frames are readable images of the paper's geometry.
    let img = vision::io::load_pgm(dir.join("frame_0000.pgm")).unwrap();
    assert_eq!((img.height(), img.width()), (60, 160));
}

#[test]
fn generate_rejects_bad_flags() {
    let out = run(&["generate", "--world", "mars"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown world"));
    let out = run(&["generate", "--len", "many"]);
    assert!(!out.status.success());
    let out = run(&["generate", "--len"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("missing its value"));
}

#[test]
fn train_then_info_and_classify_roundtrip() {
    let detector = trained_detector_path();
    let out = run(&["info", "--detector", detector.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("backend:       vbp+ssim"));
    assert!(text.contains("preprocessing: vbp"));
    assert!(text.contains("objective:     ssim"));
    assert!(text.contains("steering CNN"));

    // Classify a freshly generated frame.
    let dir = temp_dir("classify");
    let gen = run(&[
        "generate",
        "--world",
        "outdoor",
        "--len",
        "1",
        "--seed",
        "77",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(gen.status.success());
    let out = run(&[
        "classify",
        "--detector",
        detector.to_str().unwrap(),
        "--image",
        dir.join("frame_0000.pgm").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"is_novel\""), "{json}");
    assert!(json.contains("\"backend\": \"vbp+ssim\""), "{json}");
    assert!(
        json.contains("\"votes\": \"0/1\"") || json.contains("\"votes\": \"1/1\""),
        "{json}"
    );
}

#[test]
fn eval_prints_separation_report() {
    let detector = trained_detector_path();
    let out = run(&[
        "eval",
        "--detector",
        detector.to_str().unwrap(),
        "--len",
        "6",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("AUROC"));
}

#[test]
fn classify_requires_its_flags() {
    let out = run(&["classify"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--detector"));
    let out = run(&[
        "classify",
        "--detector",
        "/nonexistent.json",
        "--image",
        "x.pgm",
    ]);
    assert!(!out.status.success());
}

#[test]
fn classify_json_emits_full_verdict() {
    let detector = trained_detector_path();
    let dir = temp_dir("classify_json");
    let gen = run(&[
        "generate",
        "--world",
        "outdoor",
        "--len",
        "1",
        "--seed",
        "78",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(gen.status.success());
    let out = run(&[
        "classify",
        "--detector",
        detector.to_str().unwrap(),
        "--image",
        dir.join("frame_0000.pgm").to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    for field in [
        "\"is_novel\"",
        "\"score\"",
        "\"threshold\"",
        "\"percentile_rank\"",
        "\"backend\"",
        "\"novel_votes\"",
        "\"total_votes\"",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
}

#[test]
fn backends_subcommand_lists_the_registry() {
    let out = run(&["backends"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for id in ["raw+mse", "vbp+mse", "vbp+ssim", "model-char"] {
        assert!(text.contains(id), "missing {id} in {text}");
    }
    assert!(text.contains("layer-stats"), "{text}");
    // The subcommand takes no flags.
    let out = run(&["backends", "--json"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

/// Trains a tiny ensemble once; the ensemble tests reuse the file.
fn trained_ensemble_path() -> &'static Path {
    use std::sync::OnceLock;
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let dir = temp_dir("train_ensemble");
        let ensemble = dir.join("ensemble.json");
        let out = run(&[
            "train",
            "--ensemble",
            "--world",
            "outdoor",
            "--len",
            "30",
            "--seed",
            "3",
            "--cnn-epochs",
            "1",
            "--ae-epochs",
            "3",
            "--out",
            ensemble.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "ensemble train failed: {}\n{}",
            stdout(&out),
            stderr(&out)
        );
        assert!(stdout(&out).contains("quorum"), "{}", stdout(&out));
        ensemble
    })
}

#[test]
fn ensemble_train_classify_and_member_selection() {
    let ensemble = trained_ensemble_path();
    let ens = ensemble.to_str().unwrap();

    let out = run(&["info", "--detector", ens]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("ensemble"), "{text}");
    assert!(text.contains("quorum"), "{text}");
    assert!(text.contains("member model-char:"), "{text}");

    let dir = temp_dir("ensemble_classify");
    let gen = run(&[
        "generate",
        "--world",
        "outdoor",
        "--len",
        "1",
        "--seed",
        "79",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(gen.status.success());
    let image = dir.join("frame_0000.pgm");
    let img = image.to_str().unwrap();

    // Fused verdict carries every member's vote.
    let out = run(&["classify", "--detector", ens, "--image", img, "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"backend\":\"ensemble\""), "{json}");
    assert!(json.contains("\"total_votes\":4"), "{json}");

    // --backend selects a single member of the ensemble file.
    let out = run(&[
        "classify",
        "--detector",
        ens,
        "--image",
        img,
        "--backend",
        "vbp+mse",
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("\"backend\":\"vbp+mse\""),
        "{}",
        stdout(&out)
    );

    // Unknown backend ids are usage errors (exit 2).
    let out = run(&[
        "classify",
        "--detector",
        ens,
        "--image",
        img,
        "--backend",
        "warp-core",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("unknown backend"), "{}", stderr(&out));

    // --backend and --ensemble together make no sense (exit 2).
    let out = run(&[
        "classify",
        "--detector",
        ens,
        "--image",
        img,
        "--backend",
        "vbp+ssim",
        "--ensemble",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));

    // --ensemble against a single-backend file is a runtime error.
    let single = trained_detector_path();
    let out = run(&[
        "classify",
        "--detector",
        single.to_str().unwrap(),
        "--image",
        img,
        "--ensemble",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));

    // --backend against a single file of a different backend fails too.
    let out = run(&[
        "classify",
        "--detector",
        single.to_str().unwrap(),
        "--image",
        img,
        "--backend",
        "raw+mse",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
}

#[test]
fn ensemble_eval_reports_fused_separation() {
    let ensemble = trained_ensemble_path();
    let out = run(&[
        "eval",
        "--detector",
        ensemble.to_str().unwrap(),
        "--ensemble",
        "--len",
        "6",
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"auroc\""), "{json}");
}

#[test]
fn eval_json_and_threads_flags_work() {
    let detector = trained_detector_path();
    let out = run(&[
        "eval",
        "--detector",
        detector.to_str().unwrap(),
        "--len",
        "6",
        "--threads",
        "2",
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"auroc\""), "{json}");
    assert!(json.contains("\"novel_detection_rate\""), "{json}");
}

#[test]
fn stream_with_faults_recovers_and_writes_byte_identical_logs() {
    let detector = trained_detector_path();
    let dir = temp_dir("stream");
    let log_a = dir.join("alarms_a.json");
    let log_b = dir.join("alarms_b.json");
    let report = dir.join("stream_report.json");
    let stream_args = |log: &Path, extra: &[&str]| -> Vec<String> {
        let mut v: Vec<String> = [
            "stream",
            "--detector",
            detector.to_str().unwrap(),
            "--len",
            "60",
            "--seed",
            "11",
            "--faults",
            "nan@10+8,freeze@30+6",
            "--alarm-log",
            log.to_str().unwrap(),
            "--require-recovery",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    let args_a = stream_args(&log_a, &["--obs-out", report.to_str().unwrap()]);
    let out = run(&args_a.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(out.status.success(), "{}\n{}", stdout(&out), stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("gate rejections"), "{text}");
    assert!(text.contains("recovery check passed"), "{text}");

    // Same seed and schedule → byte-identical alarm log.
    let args_b = stream_args(&log_b, &[]);
    let out = run(&args_b.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(out.status.success(), "{}", stderr(&out));
    let bytes_a = std::fs::read(&log_a).unwrap();
    let bytes_b = std::fs::read(&log_b).unwrap();
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "alarm logs differ between identical runs");
    // The log is JSON and records the injected fault classes.
    let log_text = String::from_utf8(bytes_a).unwrap();
    assert!(log_text.contains("\"non-finite-pixels\""), "{log_text}");
    assert!(log_text.contains("\"fail-safe\"") || log_text.contains("\"degraded\""));

    // The obs report carries the stream-score stage.
    let out = run(&[
        "report",
        "--file",
        report.to_str().unwrap(),
        "--expect",
        "stream-score",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("all expected stages present"));
}

#[test]
fn stream_json_summary_and_fault_free_recovery_check() {
    let detector = trained_detector_path();
    let out = run(&[
        "stream",
        "--detector",
        detector.to_str().unwrap(),
        "--len",
        "10",
        "--json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    for field in ["\"frames\": 10", "\"final_health\"", "\"gate_rejections\""] {
        assert!(json.contains(field), "missing {field} in {json}");
    }

    // --require-recovery on a fault-free run fails: nothing degraded.
    let out = run(&[
        "stream",
        "--detector",
        detector.to_str().unwrap(),
        "--len",
        "10",
        "--require-recovery",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("never degraded"));
}

#[test]
fn stream_rejects_malformed_fault_specs() {
    let detector = trained_detector_path();
    let det = detector.to_str().unwrap();
    for (extra, needle) in [
        (vec!["--faults", "warp@3+2"], "unknown fault kind"),
        (vec!["--faults", "nan-3"], "must look like"),
        (vec!["--faults", "nan@3+0"], "zero length"),
        (vec!["--fallback", "yolo"], "unknown fallback policy"),
        (vec!["--fault-rate", "1.5"], "must be in [0, 1]"),
    ] {
        let mut args = vec!["stream", "--detector", det];
        args.extend(&extra);
        let out = run(&args);
        assert_eq!(out.status.code(), Some(2), "{extra:?}: {}", stderr(&out));
        assert!(stderr(&out).contains(needle), "{extra:?}: {}", stderr(&out));
    }
}

#[test]
fn train_obs_out_then_report_roundtrip() {
    let dir = temp_dir("obs");
    let detector = dir.join("detector.json");
    let report = dir.join("report.json");
    let out = run(&[
        "train",
        "--world",
        "outdoor",
        "--len",
        "24",
        "--seed",
        "4",
        "--cnn-epochs",
        "1",
        "--ae-epochs",
        "2",
        "--out",
        detector.to_str().unwrap(),
        "--obs-out",
        report.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(report.exists(), "train --obs-out wrote no report");

    // `report` pretty-prints and verifies the expected stages.
    let out = run(&[
        "report",
        "--file",
        report.to_str().unwrap(),
        "--expect",
        "cnn-train,vbp,ae-train,calibration,scoring",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("all expected stages present"), "{text}");
    assert!(text.contains("cnn-train"), "{text}");

    // A stage the run never produced fails the check at runtime (exit 1).
    let out = run(&[
        "report",
        "--file",
        report.to_str().unwrap(),
        "--expect",
        "warp-drive",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("warp-drive"));
}
