//! Cross-crate property tests: invariants that must hold for *any* seed,
//! not just the ones the experiments use. These run without training
//! (random-weight networks are enough for structural invariants), so the
//! whole file stays fast.

use metrics::{ssim, SsimConfig};
use neural::models::{pilotnet, PilotNetConfig};
use novelty::{Calibrator, Direction};
use proptest::prelude::*;
use saliency::visual_backprop;
use saliency_novelty::prelude::*;
use simdrive::SceneParams;

fn small_pilotnet_config() -> PilotNetConfig {
    PilotNetConfig {
        height: 40,
        width: 80,
        conv_channels: [4, 6, 8, 8, 8],
        dense_widths: vec![16],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// VBP masks are always input-sized, unit-range and finite, whatever
    /// the network init or scene.
    #[test]
    fn vbp_mask_structural_invariants(net_seed in 0u64..500, scene_seed in 0u64..500) {
        let net = pilotnet(&small_pilotnet_config(), net_seed).unwrap();
        let frame = DatasetConfig::outdoor()
            .with_len(1)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(scene_seed);
        let img = &frame.frames()[0].image;
        let mask = visual_backprop(&net, img).unwrap();
        prop_assert_eq!((mask.height(), mask.width()), (40, 80));
        prop_assert!(mask.tensor().min_value() >= 0.0);
        prop_assert!(mask.tensor().max_value() <= 1.0);
        prop_assert!(!mask.tensor().has_non_finite());
    }

    /// SSIM is symmetric and bounded for arbitrary rendered frame pairs.
    #[test]
    fn ssim_symmetry_and_bounds_on_rendered_frames(seed_a in 0u64..300, seed_b in 0u64..300) {
        let make = |seed| {
            DatasetConfig::indoor()
                .with_len(1)
                .with_size(32, 48)
                .with_supersample(1)
                .generate(seed)
                .frames()[0]
                .image
                .clone()
        };
        let (a, b) = (make(seed_a), make(seed_b));
        let cfg = SsimConfig::with_window(7);
        let ab = ssim(&a, &b, &cfg).unwrap();
        let ba = ssim(&b, &a, &cfg).unwrap();
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&ab));
    }

    /// The calibrated threshold flags at most (100 − p)% of its own
    /// calibration sample, in both directions.
    #[test]
    fn threshold_respects_its_percentile_budget(
        scores in proptest::collection::vec(0.0f32..1.0, 20..200),
        percentile in 80.0f32..100.0,
    ) {
        for direction in [Direction::HigherIsNovel, Direction::LowerIsNovel] {
            let threshold = Calibrator::new(percentile)
                .unwrap()
                .calibrate(&scores, direction)
                .unwrap();
            let flagged = scores.iter().filter(|&&s| threshold.is_novel(s)).count();
            let budget = ((100.0 - percentile) / 100.0 * scores.len() as f32).ceil() as usize;
            prop_assert!(
                flagged <= budget,
                "{direction:?}: {flagged} flagged > budget {budget} (p = {percentile})"
            );
        }
    }

    /// Steering labels are a pure function of geometry: re-deriving the
    /// angle from the stored scene always matches the stored label.
    #[test]
    fn steering_labels_are_reconstructible(seed in 0u64..1000) {
        let ds = DatasetConfig::outdoor()
            .with_len(3)
            .with_size(24, 64)
            .with_supersample(1)
            .generate(seed);
        for frame in ds.frames() {
            prop_assert_eq!(frame.angle, simdrive::steering_angle(&frame.scene));
        }
    }

    /// Rendering is a pure function of the scene: identical scenes render
    /// identically regardless of surrounding state.
    #[test]
    fn rendering_is_pure(seed in 0u64..500) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let scene = SceneParams::sample(World::Outdoor, &mut rng);
        let a = simdrive::render_frame(&scene, 24, 64, 1, 1.0);
        let b = simdrive::render_frame(&scene, 24, 64, 1, 1.0);
        prop_assert_eq!(a.gray, b.gray);
        prop_assert_eq!(a.lane_mask, b.lane_mask);
    }
}
