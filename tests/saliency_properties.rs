//! Cross-crate saliency properties: the claims of Figs. 2 and 4 at
//! reduced scale, plus agreement checks between the saliency methods.

use novelty::NoveltyDetectorBuilder;
use saliency::mask::concentration_ratio;
use saliency::{lrp, visual_backprop, LrpConfig};
use saliency_novelty::prelude::*;

fn indoor_data(len: usize, seed: u64) -> DrivingDataset {
    DatasetConfig::indoor()
        .with_len(len)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(seed)
}

#[test]
fn vbp_concentration_measurement_is_stable_and_in_range() {
    // Fig. 2's *measurement machinery*: concentration ratios of VBP
    // masks against ground-truth lane pixels must be finite, positive and
    // reproducible. (The paper's trained ≫ random claim itself reproduces
    // only weakly on this substrate — our compact CNN solves steering
    // with near-initialisation conv features, so trained and random-label
    // masks stay similar; see EXPERIMENTS.md E1 for the measured numbers.
    // Asserting a strict ordering here would codify a flaky result.)
    let data = indoor_data(60, 40);
    let builder = NoveltyDetectorBuilder::paper().cnn_epochs(4).seed(11);
    let trained = builder.train_steering_cnn(&data).unwrap();

    let probe = data.sample(8, 3);
    let mut ratios = Vec::new();
    for frame in probe.frames() {
        let mt = visual_backprop(&trained, &frame.image).unwrap();
        ratios.push(concentration_ratio(&mt, &frame.lane_mask, 0.5).unwrap());
    }
    for &r in &ratios {
        assert!(r.is_finite() && r > 0.0, "degenerate concentration {r}");
        assert!(r < 50.0, "implausible concentration {r}");
    }
    // Reproducible: recomputing on the same frame gives the same ratio.
    let f = &probe.frames()[0];
    let again = concentration_ratio(
        &visual_backprop(&trained, &f.image).unwrap(),
        &f.lane_mask,
        0.5,
    )
    .unwrap();
    assert_eq!(again, ratios[0]);
}

#[test]
fn vbp_and_lrp_agree_on_where_saliency_is() {
    // §III.B claims VBP produces masks comparable to LRP. Check rank
    // agreement: the mean VBP saliency inside LRP's top-quartile region
    // must exceed its mean outside.
    let data = indoor_data(40, 41);
    let cnn = NoveltyDetectorBuilder::paper()
        .cnn_epochs(3)
        .seed(12)
        .train_steering_cnn(&data)
        .unwrap();
    let img = &data.frames()[0].image;
    let vbp_mask = visual_backprop(&cnn, img).unwrap();
    let lrp_mask = lrp(&cnn, img, &LrpConfig::default()).unwrap();

    let mut lrp_sorted: Vec<f32> = lrp_mask.as_slice().to_vec();
    lrp_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q75 = lrp_sorted[(lrp_sorted.len() * 3) / 4];

    let mut inside = (0.0f32, 0usize);
    let mut outside = (0.0f32, 0usize);
    for (v, l) in vbp_mask.as_slice().iter().zip(lrp_mask.as_slice()) {
        if *l >= q75 {
            inside = (inside.0 + v, inside.1 + 1);
        } else {
            outside = (outside.0 + v, outside.1 + 1);
        }
    }
    let inside_mean = inside.0 / inside.1 as f32;
    let outside_mean = outside.0 / outside.1 as f32;
    assert!(
        inside_mean > outside_mean,
        "VBP mass inside LRP hot region {inside_mean} vs outside {outside_mean}"
    );
}

#[test]
fn vbp_mask_changes_with_the_scene_not_just_the_network() {
    let data = indoor_data(30, 42);
    let cnn = NoveltyDetectorBuilder::paper()
        .cnn_epochs(2)
        .seed(13)
        .train_steering_cnn(&data)
        .unwrap();
    let m0 = visual_backprop(&cnn, &data.frames()[0].image).unwrap();
    let m1 = visual_backprop(&cnn, &data.frames()[1].image).unwrap();
    assert_ne!(m0.as_slice(), m1.as_slice());
}

#[test]
fn noisy_input_garbles_the_vbp_mask() {
    // The mechanism behind Fig. 7: noise on the input degrades the VBP
    // mask itself (lower structural similarity to the clean mask than a
    // brightness change causes).
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let data = indoor_data(40, 43);
    let cnn = NoveltyDetectorBuilder::paper()
        .cnn_epochs(3)
        .seed(14)
        .train_steering_cnn(&data)
        .unwrap();
    let img = &data.frames()[0].image;
    let clean_mask = visual_backprop(&cnn, img).unwrap();

    let mut rng = StdRng::seed_from_u64(3);
    let noisy = vision::perturb::add_gaussian_noise(img, &mut rng, 0.3).unwrap();
    let noisy_mask = visual_backprop(&cnn, &noisy).unwrap();
    let bright = vision::perturb::adjust_brightness(img, 0.08);
    let bright_mask = visual_backprop(&cnn, &bright).unwrap();

    let cfg = metrics::SsimConfig::with_window(7);
    let s_noise = metrics::ssim(&clean_mask, &noisy_mask, &cfg).unwrap();
    let s_bright = metrics::ssim(&clean_mask, &bright_mask, &cfg).unwrap();
    assert!(
        s_bright > s_noise,
        "brightness mask sim {s_bright} should exceed noise mask sim {s_noise}"
    );
}
