//! Manual perf probe: times every registered routine on the bench's
//! measured shapes. Run with
//! `cargo test --release --test routine_probe -- --ignored --nocapture`.

use std::time::Instant;

use ndtensor::routines::{candidates, run_serial, GemmOp};

fn fill(buf: &mut [f32], seed: u64, zero_every: usize) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for (i, v) in buf.iter_mut().enumerate() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = if zero_every > 0 && i % zero_every == 0 {
            0.0
        } else {
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
    }
}

#[test]
#[ignore = "manual perf probe"]
fn probe() {
    let shapes = [
        (GemmOp::MatMul, 8, 25, 2184),
        (GemmOp::MatMul, 16, 300, 68),
        (GemmOp::MatMulABt, 1, 64, 9600),
        (GemmOp::MatMulABt, 1, 9600, 64),
        (GemmOp::MatMulAtB, 32, 64, 9600),
        (GemmOp::MatMulAtB, 25, 8, 2184),
        // conv forward shape (PilotNet conv1 as GEMM) and zero-heavy A.
        (GemmOp::MatMul, 24, 75, 1748),
    ];
    for (op, m, k, n) in shapes {
        let (a_len, b_len) = match op {
            GemmOp::MatMul => (m * k, k * n),
            GemmOp::MatMulAtB => (k * m, k * n),
            GemmOp::MatMulABt => (m * k, n * k),
        };
        // Dense A: matches the bench operands (pseudo data has no exact
        // zeros), so numbers are comparable to BENCH_pipeline.json.
        let mut a = vec![0.0f32; a_len];
        fill(&mut a, 1, 0);
        let mut b = vec![0.0f32; b_len];
        fill(&mut b, 2, 0);
        let mut out = vec![0.0f32; m * n];
        println!("== {} m{} k{} n{}", op.as_str(), m, k, n);
        for r in candidates(op, m, k, n) {
            // warmup
            for _ in 0..3 {
                run_serial(r, m, k, n, &a, &b, &mut out);
            }
            let mut best = u128::MAX;
            for _ in 0..5 {
                let reps = 20usize.max(2_000_000 / (m * k * n + 1));
                let t = Instant::now();
                for _ in 0..reps {
                    run_serial(r, m, k, n, &a, &b, &mut out);
                }
                best = best.min(t.elapsed().as_nanos() / reps as u128);
            }
            println!("  {:<16} {:>12} ns/iter", r.name, best);
        }
    }
}
