//! End-to-end integration tests of the full pipeline across crates:
//! data generation → CNN training → VBP → autoencoder → calibration →
//! classification. These run reduced-scale versions of the paper's
//! headline experiments and assert the *shape* of the results (who wins,
//! directionally), not absolute numbers.
//!
//! Training is expensive, so the fixture (datasets + the two detectors
//! under comparison) is built once in a `OnceLock` and shared by every
//! test in the file.

use std::sync::OnceLock;

use novelty::eval::evaluate;
use novelty::{
    ClassifierConfig, Direction, NoveltyDetector, NoveltyDetectorBuilder, PipelineKind,
    ReconstructionObjective,
};
use saliency_novelty::prelude::*;

/// Reduced-scale settings: the paper's 60×160 geometry (the CNN needs
/// realistic resolution to learn lane features) at reduced sample counts.
fn dataset(world: World, len: usize, seed: u64) -> DrivingDataset {
    DatasetConfig::for_world(world)
        .with_len(len)
        .with_size(60, 160)
        .with_supersample(1)
        .generate(seed)
}

fn builder_for(kind: PipelineKind) -> NoveltyDetectorBuilder {
    let objective = match kind {
        PipelineKind::VbpSsim => ReconstructionObjective::paper_ssim(),
        _ => ReconstructionObjective::Mse,
    };
    NoveltyDetectorBuilder::for_kind(kind)
        .classifier_config(ClassifierConfig {
            epochs: 60,
            objective,
            ..ClassifierConfig::paper()
        })
        .cnn_epochs(12)
        // The 80/20 split is applied by the fixture itself, so the
        // builder trains on everything it is given.
        .train_fraction(1.0)
        .seed(1234)
}

struct Fixture {
    train: DrivingDataset,
    target: Vec<Image>,
    novel: Vec<Image>,
    paper_detector: NoveltyDetector,
    baseline_detector: NoveltyDetector,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let outdoor = dataset(World::Outdoor, 200, 21);
        let indoor = dataset(World::Indoor, 30, 22);
        let (train, held_out) = outdoor.split(0.85);
        let paper_detector = builder_for(PipelineKind::VbpSsim)
            .train(&train)
            .expect("paper pipeline trains");
        let baseline_detector = builder_for(PipelineKind::RawMse)
            .train(&train)
            .expect("baseline pipeline trains");
        Fixture {
            train,
            target: held_out.frames().iter().map(|f| f.image.clone()).collect(),
            novel: indoor.frames().iter().map(|f| f.image.clone()).collect(),
            paper_detector,
            baseline_detector,
        }
    })
}

#[test]
fn paper_pipeline_separates_cross_world_novelty() {
    let fx = fixture();
    let report = evaluate(&fx.paper_detector, &fx.target, &fx.novel).unwrap();

    // The paper's headline: the two datasets separate. At this reduced
    // scale we require near-perfect ranking and a majority of novel
    // frames past the calibrated threshold.
    assert!(
        report.separation.auroc >= 0.9,
        "cross-world AUROC too low: {}",
        report.separation.auroc
    );
    // At this reduced scale the 99th-percentile threshold sits on a
    // noisy 170-sample tail, so the detection-rate bound is conservative;
    // the full-scale figure binary reproduces the paper's ~100 %.
    assert!(
        report.novel_detection_rate >= 0.35,
        "novel detection rate too low: {}",
        report.novel_detection_rate
    );
    // SSIM direction: target scores must be *higher* than novel scores.
    assert_eq!(report.direction, Direction::LowerIsNovel);
    assert!(report.separation.target_mean > report.separation.novel_mean);
    // The threshold was calibrated at the 99th percentile, so few
    // in-distribution frames should be flagged.
    assert!(
        report.false_positive_rate <= 0.2,
        "false positive rate too high: {}",
        report.false_positive_rate
    );
}

#[test]
fn steering_cnn_actually_learns_the_task() {
    // The pipeline is only meaningful if the CNN learns steering: its
    // test error must beat the trivial predict-zero baseline.
    let fx = fixture();
    let cnn = fx
        .paper_detector
        .steering_network()
        .expect("paper pipeline carries a CNN");

    let probe = dataset(World::Outdoor, 40, 77);
    let mut model_se = 0.0f32;
    let mut zero_se = 0.0f32;
    for frame in probe.frames() {
        let input = frame
            .image
            .tensor()
            .reshape([1, 1, frame.image.height(), frame.image.width()])
            .unwrap();
        let pred = cnn.forward(&input).unwrap().as_slice()[0];
        model_se += (pred - frame.angle).powi(2);
        zero_se += frame.angle * frame.angle;
    }
    assert!(
        model_se < zero_se * 0.8,
        "CNN no better than predicting zero: model {model_se} vs baseline {zero_se}"
    );
}

#[test]
fn vbp_ssim_beats_raw_mse_baseline_on_ranking() {
    // Fig. 5's ordering claim, as a ranking statement at reduced scale:
    // the paper's pipeline must separate at least as well as the
    // Richter & Roy baseline.
    let fx = fixture();
    let paper_report = evaluate(&fx.paper_detector, &fx.target, &fx.novel).unwrap();
    let base_report = evaluate(&fx.baseline_detector, &fx.target, &fx.novel).unwrap();
    assert!(
        paper_report.separation.auroc + 1e-6 >= base_report.separation.auroc,
        "paper {} < baseline {}",
        paper_report.separation.auroc,
        base_report.separation.auroc
    );
}

#[test]
fn noisy_frames_score_lower_than_clean_under_ssim() {
    // Fig. 7's direction: Gaussian noise pushes SSIM scores down.
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let fx = fixture();
    let clean_scores = fx.paper_detector.score_batch(&fx.target).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let noisy: Vec<Image> = fx
        .target
        .iter()
        .map(|img| vision::perturb::add_gaussian_noise(img, &mut rng, 0.3).unwrap())
        .collect();
    let noisy_scores = fx.paper_detector.score_batch(&noisy).unwrap();
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    assert!(
        mean(&clean_scores) > mean(&noisy_scores),
        "clean {} vs noisy {}",
        mean(&clean_scores),
        mean(&noisy_scores)
    );
}

#[test]
fn in_class_reconstruction_quality_is_meaningful() {
    // The paper's Fig. 5 right panel: the SSIM autoencoder reconstructs
    // in-class VBP masks substantially better than chance (training-set
    // mean SSIM well above the novel-class level).
    let fx = fixture();
    let train_scores = fx.paper_detector.training_scores();
    let train_mean = train_scores.iter().sum::<f32>() / train_scores.len() as f32;
    assert!(
        train_mean > 0.4,
        "in-class reconstruction SSIM too weak: {train_mean}"
    );
    let novel_scores = fx.paper_detector.score_batch(&fx.novel).unwrap();
    let novel_mean = novel_scores.iter().sum::<f32>() / novel_scores.len() as f32;
    assert!(
        train_mean > novel_mean + 0.15,
        "train {train_mean} vs novel {novel_mean}"
    );
}

#[test]
fn verdicts_are_consistent_with_scores_and_threshold() {
    let fx = fixture();
    for detector in [&fx.paper_detector, &fx.baseline_detector] {
        for img in fx.target.iter().chain(fx.novel.iter()).take(5) {
            let verdict = detector.classify(img).unwrap();
            let score = detector.score(img).unwrap();
            assert_eq!(verdict.score, score);
            assert_eq!(verdict.threshold, detector.threshold().value());
            assert_eq!(
                verdict.is_novel,
                detector.threshold().is_novel(score),
                "verdict disagrees with threshold rule"
            );
        }
    }
    // The training split is what the detectors were calibrated on.
    assert_eq!(fx.train.len(), 170);
}
