//! Behaviour of the thread-count knobs: `SALIENCY_THREADS`, programmatic
//! [`ThreadConfig`], and the guarantee that serial configurations spawn
//! no worker threads at all.
//!
//! Environment-variable manipulation is process-global, so everything
//! lives in a handful of tests that serialise on one mutex.

use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;

use ndtensor::par::{self, PARALLEL_THRESHOLD};
use ndtensor::{set_thread_config, ThreadConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs a job large enough to spawn threads (when allowed) and returns
/// the set of threads that executed work.
fn worker_threads() -> HashSet<ThreadId> {
    let seen = Mutex::new(HashSet::new());
    let mut out = vec![0.0f32; 256];
    par::for_each_block(&mut out, 1, PARALLEL_THRESHOLD + 1, |_, _| {
        seen.lock().unwrap().insert(std::thread::current().id());
    });
    seen.into_inner().unwrap()
}

#[test]
fn serial_config_disables_pooling_entirely() {
    let _guard = lock();
    set_thread_config(ThreadConfig::serial());
    let caller = std::thread::current().id();
    assert_eq!(
        worker_threads(),
        HashSet::from([caller]),
        "ThreadConfig::serial() must keep all work on the calling thread"
    );
    set_thread_config(ThreadConfig::from_env());
}

#[test]
fn with_serial_disables_pooling_even_under_a_parallel_config() {
    let _guard = lock();
    set_thread_config(ThreadConfig::new(4));
    let caller = std::thread::current().id();
    let seen = ndtensor::with_serial(worker_threads);
    assert_eq!(seen, HashSet::from([caller]));
    set_thread_config(ThreadConfig::from_env());
}

#[test]
fn parallel_config_actually_uses_multiple_threads() {
    let _guard = lock();
    set_thread_config(ThreadConfig::new(4));
    let seen = worker_threads();
    assert!(
        seen.len() > 1,
        "4-thread config on a 256-item job should use more than one thread"
    );
    set_thread_config(ThreadConfig::from_env());
}

#[test]
fn saliency_threads_env_knob() {
    let _guard = lock();

    // SALIENCY_THREADS=1 disables pooling entirely.
    std::env::set_var("SALIENCY_THREADS", "1");
    let cfg = ThreadConfig::from_env();
    assert_eq!(cfg.threads(), 1);
    set_thread_config(cfg);
    let caller = std::thread::current().id();
    assert_eq!(
        worker_threads(),
        HashSet::from([caller]),
        "SALIENCY_THREADS=1 must keep all work on the calling thread"
    );

    // A valid explicit count is honoured.
    std::env::set_var("SALIENCY_THREADS", "3");
    assert_eq!(ThreadConfig::from_env().threads(), 3);

    // Invalid values (zero, garbage, negative) fall back to the
    // available-parallelism default — with a warning, never a panic.
    let fallback = ThreadConfig::available().threads();
    for bad in ["0", "banana", "-2", "1.5", ""] {
        std::env::set_var("SALIENCY_THREADS", bad);
        assert_eq!(
            ThreadConfig::from_env().threads(),
            fallback,
            "SALIENCY_THREADS={bad:?} should fall back to the default"
        );
    }

    // Unset means the available-parallelism default.
    std::env::remove_var("SALIENCY_THREADS");
    assert_eq!(ThreadConfig::from_env().threads(), fallback);

    set_thread_config(ThreadConfig::from_env());
}

#[test]
fn programmatic_config_is_clamped_and_reported() {
    let _guard = lock();
    assert_eq!(ThreadConfig::new(0).threads(), 1);
    assert_eq!(ThreadConfig::serial().threads(), 1);
    assert!(ThreadConfig::available().threads() >= 1);
    // The process-wide getter reflects the last set_thread_config call.
    set_thread_config(ThreadConfig::new(5));
    assert_eq!(ndtensor::thread_config().threads(), 5);
    set_thread_config(ThreadConfig::from_env());
}
