//! End-to-end tests of the observability layer: a recorded training run
//! must produce a [`RunReport`] covering every pipeline stage, and —
//! the layer's core invariant — recording must never perturb results,
//! at any thread count.

use std::sync::Mutex;

use ndtensor::{set_thread_config, ThreadConfig};
use novelty::{
    detector_to_spec, ClassifierConfig, NoveltyDetector, NoveltyDetectorBuilder, PipelineKind,
    ReconstructionObjective,
};
use obs::{Recorder, RunRecorder, RunReport};
use simdrive::{DatasetConfig, DrivingDataset};
use vision::Image;

/// Thread configuration is process-global; tests that touch it (or
/// depend on pool behaviour) serialise on this mutex.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const STAGES: [&str; 5] = ["cnn-train", "vbp", "ae-train", "calibration", "scoring"];

fn train_data() -> DrivingDataset {
    DatasetConfig::outdoor()
        .with_len(16)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(31)
}

fn probe_images() -> Vec<Image> {
    DatasetConfig::indoor()
        .with_len(4)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(32)
        .frames()
        .iter()
        .map(|f| f.image.clone())
        .collect()
}

fn train(recorder: &dyn Recorder) -> NoveltyDetector {
    NoveltyDetectorBuilder::for_kind(PipelineKind::VbpSsim)
        .classifier_config(ClassifierConfig {
            hidden: vec![12, 6, 12],
            epochs: 3,
            warmup_epochs: 1,
            batch_size: 8,
            learning_rate: 3e-3,
            objective: ReconstructionObjective::Ssim { window: 7 },
        })
        .cnn_epochs(1)
        .seed(9)
        .train_recorded(&train_data(), recorder)
        .unwrap()
}

#[test]
fn recorded_training_reports_all_five_stages() {
    let _guard = lock();
    let recorder = RunRecorder::new();
    let detector = train(&recorder);
    let report = recorder.report("train");

    let missing = report.missing_stages(&STAGES);
    assert!(missing.is_empty(), "missing stages: {missing:?}");
    for name in STAGES {
        let stage = report
            .stage(name)
            .or_else(|| {
                report
                    .stages
                    .iter()
                    .find(|s| s.name.starts_with(&format!("{name}.")))
            })
            .unwrap_or_else(|| panic!("no stage entry for {name}"));
        assert!(stage.count >= 1, "{name} never entered");
        assert!(stage.total_secs > 0.0, "{name} has zero wall time");
    }

    // Counters and series line up with the actual work done.
    assert_eq!(
        report.counter("scoring.scores_computed").unwrap(),
        detector.training_scores().len() as u64
    );
    assert_eq!(
        report.counter("vbp.masks_computed").unwrap(),
        detector.training_scores().len() as u64,
        "one mask per training image"
    );
    let cnn_loss = report.series("cnn-train.epoch_loss").unwrap();
    assert_eq!(cnn_loss.values.len(), 1, "one CNN epoch was requested");
    let ae_loss = report.series("ae-train.epoch_loss").unwrap();
    assert_eq!(ae_loss.values.len(), 3, "1 warmup + 2 main AE epochs");
    assert!(report.gauge("calibration.threshold").is_some());

    // The report survives a JSON round trip bit-for-bit.
    let json = report.to_json().unwrap();
    assert_eq!(RunReport::from_json(&json).unwrap(), report);
}

#[test]
fn recording_never_perturbs_results_at_any_thread_count() {
    let _guard = lock();
    let probes = probe_images();
    for threads in [1usize, 4] {
        set_thread_config(ThreadConfig::new(threads));
        let plain = train(obs::noop());
        let recorder = RunRecorder::new();
        let recorded = train(&recorder);

        // Detector JSON bit-identical.
        let plain_json = serde_json::to_string(&detector_to_spec(&plain).unwrap()).unwrap();
        let recorded_json = serde_json::to_string(&detector_to_spec(&recorded).unwrap()).unwrap();
        assert_eq!(
            plain_json, recorded_json,
            "recording changed the trained detector at {threads} threads"
        );

        // Scores bit-identical, with the recorder enabled on one side.
        let a = plain.score_batch(&probes).unwrap();
        let b = recorded
            .score_batch_recorded(&probes, &RunRecorder::new())
            .unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "score diverged at {threads} threads"
            );
        }
    }
    set_thread_config(ThreadConfig::from_env());
}
