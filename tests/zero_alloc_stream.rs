//! Proof that a warmed [`novelty::StreamRuntime`] scores frames without
//! touching the heap.
//!
//! A counting allocator wraps the system allocator for this whole test
//! binary (integration tests are separate binaries, so nothing else is
//! affected). After training a tiny detector and warming the runtime —
//! first frames populate the scratch pool, the VBP thread-local
//! workspace, and the tensor pool — the steady-state per-frame
//! allocation delta must be exactly zero. This is the end-to-end
//! guarantee the scratch/workspace plumbing exists to provide: frame
//! latency in deployment cannot jitter on allocator locks or page
//! faults.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use novelty::{
    ClassifierConfig, NoveltyDetectorBuilder, ReconstructionObjective, StreamConfig, StreamRuntime,
};
use simdrive::{DatasetConfig, DriveConfig, World};

/// System allocator with an allocation counter. Only `alloc` calls are
/// counted (growth via `realloc` routes through `alloc` in the default
/// `GlobalAlloc` impl, and counting frees would add nothing to the
/// zero-allocation claim).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// The `GlobalAlloc` trait is unsafe by definition; this impl only
// forwards to `System` and bumps a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warmed_stream_runtime_is_zero_allocation_per_frame() {
    // Serial execution: worker threads have their own (cold) thread-local
    // pools, and the acceptance criterion is the single-core deployment.
    ndtensor::set_thread_config(ndtensor::ThreadConfig::serial());

    let data = DatasetConfig::outdoor()
        .with_len(24)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(11);
    let detector = NoveltyDetectorBuilder::paper()
        .classifier_config(ClassifierConfig {
            hidden: vec![16, 8, 16],
            epochs: 2,
            warmup_epochs: 1,
            batch_size: 8,
            learning_rate: 3e-3,
            objective: ReconstructionObjective::Ssim { window: 7 },
        })
        .cnn_epochs(1)
        .seed(1)
        .train(&data)
        .expect("tiny detector trains");

    let frames: Vec<_> = DriveConfig::new(World::Outdoor)
        .with_len(12)
        .with_size(40, 80)
        .with_supersample(1)
        .simulate(3)
        .frames()
        .iter()
        .map(|f| f.image.clone())
        .collect();

    // Sanity: the counter is live (training alone allocates plenty). A
    // broken hook would make the zero assertions below vacuous.
    assert!(
        allocations() > 1000,
        "counting allocator is not intercepting allocations"
    );

    let mut runtime = StreamRuntime::new(&detector, StreamConfig::for_detector(&detector))
        .expect("stream runtime");

    // Warm-up: the first frames populate every pool (tensor storage,
    // scratch panels, the VBP thread-local workspace). Warming with
    // several frames, not one, lets pools reach their steady-state
    // high-water mark.
    for frame in frames.iter().take(4) {
        let decision = runtime.process(Some(frame));
        assert!(decision.is_novel.is_some());
    }

    // Steady state: not one heap allocation per frame, over many frames.
    for (i, frame) in frames.iter().enumerate() {
        let before = allocations();
        let decision = runtime.process(Some(frame));
        let delta = allocations() - before;
        assert!(decision.verdict.is_some(), "frame {i} must score");
        assert_eq!(
            delta, 0,
            "frame {i}: {delta} heap allocations in the warmed hot path"
        );
    }
}
