//! Serial-parity harness for the parallel execution layer.
//!
//! Every parallel kernel in the workspace must produce *bit-identical*
//! output for any thread count: work is partitioned into disjoint output
//! regions and reductions happen in a fixed order, so no floating-point
//! summation is ever reordered. These tests pin that guarantee from the
//! GEMM kernels all the way up to novelty scores, across thread counts
//! {1, 2, 4} and several seeds.
//!
//! The tests mutate the process-wide thread configuration, so they all
//! serialise on one mutex.

use std::sync::Mutex;

use ndtensor::{
    conv2d, conv2d_backward, matmul, matmul_a_bt, matmul_at_b, set_thread_config, Conv2dSpec,
    Tensor, ThreadConfig,
};
use neural::models::{pilotnet, PilotNetConfig};
use novelty::NoveltyDetectorBuilder;
use saliency::{visual_backprop, visual_backprop_batch};
use saliency_novelty::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the environment-derived config when dropped, so a failing
/// test does not leak its thread count into later tests.
struct ConfigRestore;

impl Drop for ConfigRestore {
    fn drop(&mut self) {
        set_thread_config(ThreadConfig::from_env());
    }
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SEEDS: [u64; 3] = [11, 12, 13];

fn pseudo(shape: impl Into<ndtensor::Shape>, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Tensor::from_fn(shape.into(), |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn matmul_kernels_are_bit_identical_across_thread_counts() {
    let _guard = lock();
    let _restore = ConfigRestore;
    for seed in SEEDS {
        // 128³ = 2²¹ multiply-adds: comfortably past the parallel
        // threshold, so every thread count actually exercises the pool.
        let a = pseudo([128, 96], seed);
        let b = pseudo([96, 144], seed + 100);
        let at = pseudo([96, 128], seed + 200);
        let bt = pseudo([144, 96], seed + 300);

        set_thread_config(ThreadConfig::serial());
        let ref_ab = matmul(&a, &b).unwrap();
        let ref_atb = matmul_at_b(&at, &b).unwrap();
        let ref_abt = matmul_a_bt(&a, &bt).unwrap();

        for threads in THREAD_COUNTS {
            set_thread_config(ThreadConfig::new(threads));
            assert_eq!(
                bits(matmul(&a, &b).unwrap().as_slice()),
                bits(ref_ab.as_slice()),
                "matmul seed={seed} threads={threads}"
            );
            assert_eq!(
                bits(matmul_at_b(&at, &b).unwrap().as_slice()),
                bits(ref_atb.as_slice()),
                "matmul_at_b seed={seed} threads={threads}"
            );
            assert_eq!(
                bits(matmul_a_bt(&a, &bt).unwrap().as_slice()),
                bits(ref_abt.as_slice()),
                "matmul_a_bt seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn conv2d_forward_and_backward_are_bit_identical_across_thread_counts() {
    let _guard = lock();
    let _restore = ConfigRestore;
    let spec = Conv2dSpec::new((2, 2), (1, 1));
    for seed in SEEDS {
        let input = pseudo([8, 2, 32, 32], seed);
        let weight = pseudo([8, 2, 3, 3], seed + 1);
        let bias = pseudo([8], seed + 2);

        set_thread_config(ThreadConfig::serial());
        let ref_out = conv2d(&input, &weight, Some(&bias), spec).unwrap();
        let gout = pseudo(ref_out.shape().dims().to_vec(), seed + 3);
        let ref_grads = conv2d_backward(&input, &weight, &gout, spec).unwrap();

        for threads in THREAD_COUNTS {
            set_thread_config(ThreadConfig::new(threads));
            let out = conv2d(&input, &weight, Some(&bias), spec).unwrap();
            assert_eq!(
                bits(out.as_slice()),
                bits(ref_out.as_slice()),
                "conv2d seed={seed} threads={threads}"
            );
            let grads = conv2d_backward(&input, &weight, &gout, spec).unwrap();
            for (name, got, want) in [
                ("grad_input", &grads.grad_input, &ref_grads.grad_input),
                ("grad_weight", &grads.grad_weight, &ref_grads.grad_weight),
                ("grad_bias", &grads.grad_bias, &ref_grads.grad_bias),
            ] {
                assert_eq!(
                    bits(got.as_slice()),
                    bits(want.as_slice()),
                    "conv2d_backward {name} seed={seed} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn network_forward_batch_is_bit_identical_across_thread_counts() {
    let _guard = lock();
    let _restore = ConfigRestore;
    for seed in SEEDS {
        let net = pilotnet(&PilotNetConfig::compact(), seed).unwrap();
        let batch = pseudo([6, 1, 60, 160], seed + 500);

        set_thread_config(ThreadConfig::serial());
        let reference = net.forward(&batch).unwrap();

        for threads in THREAD_COUNTS {
            set_thread_config(ThreadConfig::new(threads));
            let out = net.forward_batch(&batch).unwrap();
            assert_eq!(out.shape(), reference.shape());
            assert_eq!(
                bits(out.as_slice()),
                bits(reference.as_slice()),
                "forward_batch seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn visual_backprop_batch_is_bit_identical_across_thread_counts() {
    let _guard = lock();
    let _restore = ConfigRestore;
    for seed in SEEDS {
        let net = pilotnet(&PilotNetConfig::compact(), seed).unwrap();
        let images: Vec<Image> = (0..6)
            .map(|s| {
                Image::from_fn(60, 160, |y, x| {
                    ((y * 5 + x * 3 + s * 7 + seed as usize) % 23) as f32 / 22.0
                })
                .unwrap()
            })
            .collect();

        set_thread_config(ThreadConfig::serial());
        let reference: Vec<Image> = images
            .iter()
            .map(|img| visual_backprop(&net, img).unwrap())
            .collect();

        for threads in THREAD_COUNTS {
            set_thread_config(ThreadConfig::new(threads));
            let masks = visual_backprop_batch(&net, &images).unwrap();
            assert_eq!(masks.len(), reference.len());
            for (i, (got, want)) in masks.iter().zip(&reference).enumerate() {
                assert_eq!(
                    bits(got.as_slice()),
                    bits(want.as_slice()),
                    "vbp image={i} seed={seed} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn score_batch_is_bit_identical_across_thread_counts() {
    let _guard = lock();
    let _restore = ConfigRestore;
    // One small detector (training is the expensive part); scoring parity
    // is then checked for several image sets.
    set_thread_config(ThreadConfig::serial());
    let data = DatasetConfig::indoor()
        .with_len(20)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(71);
    let detector = NoveltyDetectorBuilder::paper()
        .cnn_epochs(1)
        .ae_epochs(2)
        .seed(7)
        .train(&data)
        .expect("tiny detector trains");

    for seed in SEEDS {
        let images: Vec<Image> = (0..8)
            .map(|s| {
                Image::from_fn(40, 80, |y, x| {
                    ((y * 11 + x * 5 + s * 3 + seed as usize) % 29) as f32 / 28.0
                })
                .unwrap()
            })
            .collect();

        set_thread_config(ThreadConfig::serial());
        let reference: Vec<f32> = images
            .iter()
            .map(|img| detector.score(img).unwrap())
            .collect();

        for threads in THREAD_COUNTS {
            set_thread_config(ThreadConfig::new(threads));
            let scores = detector.score_batch(&images).unwrap();
            assert_eq!(
                bits(&scores),
                bits(&reference),
                "score_batch seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn training_is_bit_identical_across_thread_counts() {
    let _guard = lock();
    let _restore = ConfigRestore;
    // The full training path (CNN fit → VBP representations → autoencoder
    // → calibration) also runs on the pool; a detector trained at 4
    // threads must carry exactly the serial detector's calibration.
    let data = DatasetConfig::indoor()
        .with_len(12)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(72);
    let build = || {
        NoveltyDetectorBuilder::paper()
            .cnn_epochs(1)
            .ae_epochs(1)
            .seed(9)
            .train(&data)
            .expect("tiny detector trains")
    };

    set_thread_config(ThreadConfig::serial());
    let reference = build();
    for threads in THREAD_COUNTS {
        set_thread_config(ThreadConfig::new(threads));
        let detector = build();
        assert_eq!(
            bits(detector.training_scores()),
            bits(reference.training_scores()),
            "training_scores threads={threads}"
        );
        assert_eq!(
            detector.threshold().value().to_bits(),
            reference.threshold().value().to_bits(),
            "threshold threads={threads}"
        );
    }
}
