//! Bit-parity of the packed, cache-blocked GEMM kernels (and their
//! workspace `_into` variants) against an embedded naive reference, for
//! random shapes and thread counts {1, 2, 4}.
//!
//! The packed kernels in `ndtensor::matmul` tile output columns and pack
//! operand panels for locality, but the contract is strict: every output
//! element is accumulated over `k` ascending, in one chain, exactly like
//! the three-loop schoolbook product. These tests hold the kernels to
//! that contract at the bit level — any reassociation, blocking over
//! `k`, or FMA contraction would fail them.
//!
//! The tests mutate the process-wide thread configuration, so they all
//! serialise on one mutex (same convention as `parallel_parity.rs`).

use std::sync::Mutex;

use ndtensor::{
    conv2d, conv2d_into, matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b, matmul_at_b_into,
    matmul_into, set_thread_config, Conv2dSpec, Tensor, ThreadConfig,
};
use proptest::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn pseudo(shape: impl Into<ndtensor::Shape>, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Tensor::from_fn(shape.into(), |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Schoolbook `A[m,k] · B[k,n]`: one accumulation chain per output
/// element, `k` ascending. This is the reference order every production
/// kernel must reproduce bit-for-bit.
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Schoolbook `Aᵀ[m,k] · B[k,n]` with `A` stored `[k, m]`.
fn naive_matmul_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[l * m + i] * b[l * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Schoolbook `A[m,k] · Bᵀ[k,n]` with `B` stored `[n, k]`.
fn naive_matmul_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[j * k + l];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Runs `f` under every thread count and asserts its output bits match
/// `reference` each time. Restores the env config afterwards.
fn assert_parity_across_threads(
    reference: &[f32],
    label: &str,
    mut f: impl FnMut() -> Vec<f32>,
) -> Result<(), TestCaseError> {
    for threads in THREAD_COUNTS {
        set_thread_config(ThreadConfig::new(threads));
        let got = f();
        let ok = bits(&got) == bits(reference);
        set_thread_config(ThreadConfig::from_env());
        prop_assert!(ok, "{label}: mismatch vs naive at threads={threads}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul` and `matmul_into` reproduce the naive chain bit-for-bit
    /// for random shapes spanning the column-tile boundary (n crosses
    /// 256) and the packing threshold (m crosses 4).
    #[test]
    fn matmul_bitwise_matches_naive(
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..320,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let a = pseudo([m, k], seed);
        let b = pseudo([k, n], seed + 7);
        let reference = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        assert_parity_across_threads(&reference, "matmul", || {
            matmul(&a, &b).unwrap().as_slice().to_vec()
        })?;
        assert_parity_across_threads(&reference, "matmul_into", || {
            let mut out = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut out).unwrap();
            out
        })?;
    }

    /// Same contract for the transposed-A kernel, whose production
    /// implementation packs the strided Aᵀ reads into a contiguous
    /// scratch panel first.
    #[test]
    fn matmul_at_b_bitwise_matches_naive(
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..320,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let a = pseudo([k, m], seed);
        let b = pseudo([k, n], seed + 7);
        let reference = naive_matmul_at_b(a.as_slice(), b.as_slice(), m, k, n);
        assert_parity_across_threads(&reference, "matmul_at_b", || {
            matmul_at_b(&a, &b).unwrap().as_slice().to_vec()
        })?;
        assert_parity_across_threads(&reference, "matmul_at_b_into", || {
            let mut out = vec![0.0f32; m * n];
            matmul_at_b_into(&a, &b, &mut out).unwrap();
            out
        })?;
    }

    /// Same contract for the transposed-B kernel, whose production
    /// implementation runs 8 independent per-column accumulators.
    #[test]
    fn matmul_a_bt_bitwise_matches_naive(
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..96,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let a = pseudo([m, k], seed);
        let b = pseudo([n, k], seed + 7);
        let reference = naive_matmul_a_bt(a.as_slice(), b.as_slice(), m, k, n);
        assert_parity_across_threads(&reference, "matmul_a_bt", || {
            matmul_a_bt(&a, &b).unwrap().as_slice().to_vec()
        })?;
        assert_parity_across_threads(&reference, "matmul_a_bt_into", || {
            let mut out = vec![0.0f32; m * n];
            matmul_a_bt_into(&a, &b, &mut out).unwrap();
            out
        })?;
    }

    /// The convolution (im2col + packed GEMM) is bit-stable across thread
    /// counts and between the allocating and workspace entry points.
    #[test]
    fn conv2d_bitwise_stable_across_threads(
        n in 1usize..3,
        c in 1usize..3,
        f in 1usize..4,
        hw in 6usize..14,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let spec = Conv2dSpec::new((1, 1), (1, 1));
        let input = pseudo([n, c, hw, hw], seed);
        let weight = pseudo([f, c, 3, 3], seed + 3);
        let bias = pseudo([f], seed + 5);
        set_thread_config(ThreadConfig::serial());
        let reference = conv2d(&input, &weight, Some(&bias), spec).unwrap();
        set_thread_config(ThreadConfig::from_env());
        assert_parity_across_threads(reference.as_slice(), "conv2d", || {
            conv2d(&input, &weight, Some(&bias), spec)
                .unwrap()
                .as_slice()
                .to_vec()
        })?;
        assert_parity_across_threads(reference.as_slice(), "conv2d_into", || {
            let mut out = vec![0.0f32; reference.len()];
            conv2d_into(&input, &weight, Some(&bias), spec, &mut out).unwrap();
            out
        })?;
    }
}

/// Fixed shapes chosen to land exactly on kernel tile edges: the column
/// tile (256), the `a_bt` row tile (64), the 8-wide accumulator group,
/// and the pack threshold (4 rows).
#[test]
fn tile_edge_shapes_match_naive_bitwise() {
    let _guard = lock();
    set_thread_config(ThreadConfig::serial());
    let cases = [
        (4usize, 16usize, 256usize),
        (3, 16, 257),
        (5, 16, 255),
        (1, 9, 512),
        (8, 1, 64),
        (2, 33, 65),
    ];
    for (idx, &(m, k, n)) in cases.iter().enumerate() {
        let seed = 40 + idx as u64;
        let a = pseudo([m, k], seed);
        let b = pseudo([k, n], seed + 7);
        let bt = pseudo([n, k], seed + 11);
        let at = pseudo([k, m], seed + 13);
        assert_eq!(
            bits(matmul(&a, &b).unwrap().as_slice()),
            bits(&naive_matmul(a.as_slice(), b.as_slice(), m, k, n)),
            "matmul m{m} k{k} n{n}"
        );
        assert_eq!(
            bits(matmul_at_b(&at, &b).unwrap().as_slice()),
            bits(&naive_matmul_at_b(at.as_slice(), b.as_slice(), m, k, n)),
            "matmul_at_b m{m} k{k} n{n}"
        );
        assert_eq!(
            bits(matmul_a_bt(&a, &bt).unwrap().as_slice()),
            bits(&naive_matmul_a_bt(a.as_slice(), bt.as_slice(), m, k, n)),
            "matmul_a_bt m{m} k{k} n{n}"
        );
    }
    set_thread_config(ThreadConfig::from_env());
}
