//! Bit-parity of the packed, cache-blocked GEMM kernels (and their
//! workspace `_into` variants) against an embedded naive reference, for
//! random shapes and thread counts {1, 2, 4}.
//!
//! The packed kernels in `ndtensor::matmul` tile output columns and pack
//! operand panels for locality, but the contract is strict: every output
//! element is accumulated over `k` ascending, in one chain, exactly like
//! the three-loop schoolbook product. These tests hold the kernels to
//! that contract at the bit level — any reassociation, blocking over
//! `k`, or FMA contraction would fail them.
//!
//! The tests mutate the process-wide thread configuration, so they all
//! serialise on one mutex (same convention as `parallel_parity.rs`).

use std::sync::Mutex;

use ndtensor::routines::{self, GemmOp};
use ndtensor::{
    conv2d, conv2d_into, matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b, matmul_at_b_into,
    matmul_into, set_thread_config, Conv2dSpec, Tensor, ThreadConfig,
};
use proptest::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn pseudo(shape: impl Into<ndtensor::Shape>, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Tensor::from_fn(shape.into(), |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Schoolbook `A[m,k] · B[k,n]`: one accumulation chain per output
/// element, `k` ascending. This is the reference order every production
/// kernel must reproduce bit-for-bit.
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Schoolbook `Aᵀ[m,k] · B[k,n]` with `A` stored `[k, m]`.
fn naive_matmul_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[l * m + i] * b[l * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Schoolbook `A[m,k] · Bᵀ[k,n]` with `B` stored `[n, k]`.
fn naive_matmul_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[j * k + l];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Runs `f` under every thread count and asserts its output bits match
/// `reference` each time. Restores the env config afterwards.
fn assert_parity_across_threads(
    reference: &[f32],
    label: &str,
    mut f: impl FnMut() -> Vec<f32>,
) -> Result<(), TestCaseError> {
    for threads in THREAD_COUNTS {
        set_thread_config(ThreadConfig::new(threads));
        let got = f();
        let ok = bits(&got) == bits(reference);
        set_thread_config(ThreadConfig::from_env());
        prop_assert!(ok, "{label}: mismatch vs naive at threads={threads}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul` and `matmul_into` reproduce the naive chain bit-for-bit
    /// for random shapes spanning the column-tile boundary (n crosses
    /// 256) and the packing threshold (m crosses 4).
    #[test]
    fn matmul_bitwise_matches_naive(
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..320,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let a = pseudo([m, k], seed);
        let b = pseudo([k, n], seed + 7);
        let reference = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        assert_parity_across_threads(&reference, "matmul", || {
            matmul(&a, &b).unwrap().as_slice().to_vec()
        })?;
        assert_parity_across_threads(&reference, "matmul_into", || {
            let mut out = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut out).unwrap();
            out
        })?;
    }

    /// Same contract for the transposed-A kernel, whose production
    /// implementation packs the strided Aᵀ reads into a contiguous
    /// scratch panel first.
    #[test]
    fn matmul_at_b_bitwise_matches_naive(
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..320,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let a = pseudo([k, m], seed);
        let b = pseudo([k, n], seed + 7);
        let reference = naive_matmul_at_b(a.as_slice(), b.as_slice(), m, k, n);
        assert_parity_across_threads(&reference, "matmul_at_b", || {
            matmul_at_b(&a, &b).unwrap().as_slice().to_vec()
        })?;
        assert_parity_across_threads(&reference, "matmul_at_b_into", || {
            let mut out = vec![0.0f32; m * n];
            matmul_at_b_into(&a, &b, &mut out).unwrap();
            out
        })?;
    }

    /// Same contract for the transposed-B kernel, whose production
    /// implementation runs 8 independent per-column accumulators.
    #[test]
    fn matmul_a_bt_bitwise_matches_naive(
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..96,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let a = pseudo([m, k], seed);
        let b = pseudo([n, k], seed + 7);
        let reference = naive_matmul_a_bt(a.as_slice(), b.as_slice(), m, k, n);
        assert_parity_across_threads(&reference, "matmul_a_bt", || {
            matmul_a_bt(&a, &b).unwrap().as_slice().to_vec()
        })?;
        assert_parity_across_threads(&reference, "matmul_a_bt_into", || {
            let mut out = vec![0.0f32; m * n];
            matmul_a_bt_into(&a, &b, &mut out).unwrap();
            out
        })?;
    }

    /// The convolution (im2col + packed GEMM) is bit-stable across thread
    /// counts and between the allocating and workspace entry points.
    #[test]
    fn conv2d_bitwise_stable_across_threads(
        n in 1usize..3,
        c in 1usize..3,
        f in 1usize..4,
        hw in 6usize..14,
        seed in 0u64..1000,
    ) {
        let _guard = lock();
        let spec = Conv2dSpec::new((1, 1), (1, 1));
        let input = pseudo([n, c, hw, hw], seed);
        let weight = pseudo([f, c, 3, 3], seed + 3);
        let bias = pseudo([f], seed + 5);
        set_thread_config(ThreadConfig::serial());
        let reference = conv2d(&input, &weight, Some(&bias), spec).unwrap();
        set_thread_config(ThreadConfig::from_env());
        assert_parity_across_threads(reference.as_slice(), "conv2d", || {
            conv2d(&input, &weight, Some(&bias), spec)
                .unwrap()
                .as_slice()
                .to_vec()
        })?;
        assert_parity_across_threads(reference.as_slice(), "conv2d_into", || {
            let mut out = vec![0.0f32; reference.len()];
            conv2d_into(&input, &weight, Some(&bias), spec, &mut out).unwrap();
            out
        })?;
    }
}

/// Pseudo-random fill with every `zero_every`-th element an exact zero
/// (0 disables), to exercise the accumulating families' sparsity-skip
/// discipline and the register kernels' dense-row fast-path gate.
fn pseudo_sparse(len: usize, seed: u64, zero_every: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if zero_every > 0 && i % zero_every == 0 {
                0.0
            } else {
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            }
        })
        .collect()
}

/// Naive reference with a seeded accumulator: element `(i, j)` starts at
/// `init[i * n + j]` (the accumulate-into contract) and adds products in
/// ascending `l`. The assigning family ignores `init`.
fn naive_for(
    op: GemmOp,
    a: &[f32],
    b: &[f32],
    init: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = match op {
                GemmOp::MatMulABt => 0.0,
                _ => init[i * n + j],
            };
            for l in 0..k {
                let av = match op {
                    GemmOp::MatMulAtB => a[l * m + i],
                    _ => a[i * k + l],
                };
                let bv = match op {
                    GemmOp::MatMulABt => b[j * k + l],
                    _ => b[l * n + j],
                };
                // The accumulating families skip exact-zero A elements
                // (0.0 * inf = NaN and -0.0 + 0.0 = +0.0 make the skip
                // observable); the assigning family never skips.
                if av == 0.0 && op != GemmOp::MatMulABt {
                    continue;
                }
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Packs A the way the entry points hand it to a [`routines::Kernel`]:
/// row-major `m × k` (a transpose for the `Aᵀ·B` family).
fn packed_a(op: GemmOp, a: &[f32], m: usize, k: usize) -> Vec<f32> {
    match op {
        GemmOp::MatMulAtB => {
            let mut pa = vec![0.0f32; m * k];
            for l in 0..k {
                for i in 0..m {
                    pa[i * k + l] = a[l * m + i];
                }
            }
            pa
        }
        _ => a.to_vec(),
    }
}

/// Every registered routine reproduces the naive chain bit-for-bit — on
/// the whole problem and on every row chunking the thread row-splitter
/// could produce (1, 2 and 4 contiguous chunks), on dense and zero-heavy
/// A, and honouring the accumulate-into contract (non-zero initial
/// output for the accumulating families).
///
/// Shapes land on the register-kernel block widths (16/32/64 columns ±1),
/// the axpy column tiles, the row-pair/quad boundaries and the pack
/// threshold.
#[test]
fn every_registered_routine_matches_naive_bitwise() {
    let _guard = lock();
    let shapes = [
        (1usize, 1usize, 1usize),
        (2, 3, 17),
        (3, 5, 63),
        (4, 8, 64),
        (5, 16, 65),
        (6, 7, 96),
        (7, 33, 128),
        (8, 64, 130),
        (9, 129, 160),
        (2, 130, 256),
        (5, 6, 300),
        (32, 64, 96),
    ];
    for (case, &(m, k, n)) in shapes.iter().enumerate() {
        for op in [GemmOp::MatMul, GemmOp::MatMulAtB, GemmOp::MatMulABt] {
            let (a_len, b_len) = match op {
                GemmOp::MatMul => (m * k, k * n),
                GemmOp::MatMulAtB => (k * m, k * n),
                GemmOp::MatMulABt => (m * k, n * k),
            };
            for zero_every in [0usize, 3] {
                let seed = 100 + case as u64;
                let a = pseudo_sparse(a_len, seed, zero_every);
                let b = pseudo_sparse(b_len, seed + 7, 0);
                let init = pseudo_sparse(m * n, seed + 13, 0);
                let zeroed = vec![0.0f32; m * n];
                let reference = naive_for(op, &a, &b, &zeroed, m, k, n);
                let reference_seeded = naive_for(op, &a, &b, &init, m, k, n);
                let pa = packed_a(op, &a, m, k);
                for routine in routines::candidates(op, m, k, n) {
                    let label = format!("{} m{m} k{k} n{n} zeros={zero_every}", routine.name);
                    // Whole problem through the shared measurement body.
                    let mut out = vec![0.0f32; m * n];
                    routines::run_serial(routine, m, k, n, &a, &b, &mut out);
                    assert_eq!(bits(&out), bits(&reference), "{label} (run_serial)");
                    // Row-chunked invocations: exactly what the threaded
                    // entry points do, for 1, 2 and 4 contiguous chunks.
                    for chunks in [1usize, 2, 4] {
                        let mut out = match op {
                            GemmOp::MatMulABt => vec![0.0f32; m * n],
                            _ => init.clone(),
                        };
                        let per = m.div_ceil(chunks);
                        let mut row0 = 0;
                        while row0 < m {
                            let rows = per.min(m - row0);
                            let (a_chunk, out_chunk) = (
                                &pa[row0 * k..(row0 + rows) * k],
                                &mut out[row0 * n..(row0 + rows) * n],
                            );
                            (routine.kernel)(a_chunk, rows, k, &b, n, out_chunk);
                            row0 += rows;
                        }
                        let want = match op {
                            GemmOp::MatMulABt => &reference,
                            _ => &reference_seeded,
                        };
                        assert_eq!(bits(&out), bits(want), "{label} (chunks={chunks})");
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selector determinism: the winner of [`routines::pick`] depends
    /// only on the candidate set, never on its order — shuffling the
    /// measured list (a stand-in for registration order) yields the same
    /// winning name.
    #[test]
    fn pick_is_order_independent(
        ns in proptest::collection::vec(1u64..2_000_000u64, 2..10),
        rotate in 0usize..10,
        seed in 0u64..1000,
    ) {
        let names = [
            "mm-axpy-c256", "mm-axpy-c128", "mm-axpy-c512", "mm-rr2-w16",
            "mm-rr2-w32", "mm-rr2-w64", "mm-rr4-w16", "mm-rr4-w32",
            "mm-rr4-w64", "mm-reg8-c256",
        ];
        let mut measured: Vec<(&str, u8, u64)> = ns
            .iter()
            .enumerate()
            .map(|(i, &t)| (names[i % names.len()], (seed % 5) as u8, t))
            .collect();
        measured.dedup_by_key(|e| e.0);
        let baseline = routines::pick(&measured).map(|i| measured[i].0);
        // Rotation + reversal cover every relative-order class a shuffle
        // can produce for the min-by comparison.
        let r = rotate % measured.len();
        measured.rotate_left(r);
        prop_assert_eq!(routines::pick(&measured).map(|i| measured[i].0), baseline);
        measured.reverse();
        prop_assert_eq!(routines::pick(&measured).map(|i| measured[i].0), baseline);
    }
}

/// Fixed shapes chosen to land exactly on kernel tile edges: the column
/// tile (256), the `a_bt` row tile (64), the 8-wide accumulator group,
/// and the pack threshold (4 rows).
#[test]
fn tile_edge_shapes_match_naive_bitwise() {
    let _guard = lock();
    set_thread_config(ThreadConfig::serial());
    let cases = [
        (4usize, 16usize, 256usize),
        (3, 16, 257),
        (5, 16, 255),
        (1, 9, 512),
        (8, 1, 64),
        (2, 33, 65),
    ];
    for (idx, &(m, k, n)) in cases.iter().enumerate() {
        let seed = 40 + idx as u64;
        let a = pseudo([m, k], seed);
        let b = pseudo([k, n], seed + 7);
        let bt = pseudo([n, k], seed + 11);
        let at = pseudo([k, m], seed + 13);
        assert_eq!(
            bits(matmul(&a, &b).unwrap().as_slice()),
            bits(&naive_matmul(a.as_slice(), b.as_slice(), m, k, n)),
            "matmul m{m} k{k} n{n}"
        );
        assert_eq!(
            bits(matmul_at_b(&at, &b).unwrap().as_slice()),
            bits(&naive_matmul_at_b(at.as_slice(), b.as_slice(), m, k, n)),
            "matmul_at_b m{m} k{k} n{n}"
        );
        assert_eq!(
            bits(matmul_a_bt(&a, &bt).unwrap().as_slice()),
            bits(&naive_matmul_a_bt(a.as_slice(), bt.as_slice(), m, k, n)),
            "matmul_a_bt m{m} k{k} n{n}"
        );
    }
    set_thread_config(ThreadConfig::from_env());
}
