//! Determinism guarantees across the whole stack: identical seeds must
//! produce bit-identical datasets, models, scores and verdicts — the
//! property that makes every figure in `EXPERIMENTS.md` regenerable.

use novelty::{ClassifierConfig, NoveltyDetectorBuilder, ReconstructionObjective};
use saliency_novelty::prelude::*;

fn small_dataset(seed: u64) -> DrivingDataset {
    DatasetConfig::outdoor()
        .with_len(24)
        .with_size(40, 80)
        .with_supersample(1)
        .generate(seed)
}

fn quick_builder(seed: u64) -> NoveltyDetectorBuilder {
    NoveltyDetectorBuilder::paper()
        .classifier_config(ClassifierConfig {
            hidden: vec![16, 8, 16],
            epochs: 4,
            warmup_epochs: 1,
            batch_size: 8,
            learning_rate: 3e-3,
            objective: ReconstructionObjective::Ssim { window: 7 },
        })
        .cnn_epochs(1)
        .seed(seed)
}

#[test]
fn datasets_are_bit_identical_across_generations() {
    let a = small_dataset(77);
    let b = small_dataset(77);
    for (fa, fb) in a.frames().iter().zip(b.frames()) {
        assert_eq!(fa.image.as_slice(), fb.image.as_slice());
        assert_eq!(fa.angle, fb.angle);
        assert_eq!(fa.lane_mask.as_slice(), fb.lane_mask.as_slice());
    }
    let c = small_dataset(78);
    assert_ne!(
        a.frames()[0].image.as_slice(),
        c.frames()[0].image.as_slice(),
        "different seeds must differ"
    );
}

#[test]
fn full_pipeline_is_deterministic_per_seed() {
    let data = small_dataset(5);
    let d1 = quick_builder(42).train(&data).unwrap();
    let d2 = quick_builder(42).train(&data).unwrap();
    assert_eq!(d1.threshold().value(), d2.threshold().value());
    assert_eq!(d1.training_scores(), d2.training_scores());
    for frame in data.frames().iter().take(5) {
        assert_eq!(
            d1.score(&frame.image).unwrap(),
            d2.score(&frame.image).unwrap()
        );
    }
}

#[test]
fn different_seeds_change_the_model() {
    let data = small_dataset(5);
    let d1 = quick_builder(1).train(&data).unwrap();
    let d2 = quick_builder(2).train(&data).unwrap();
    let img = &data.frames()[0].image;
    assert_ne!(
        d1.score(img).unwrap(),
        d2.score(img).unwrap(),
        "seeds must influence initialisation"
    );
}

#[test]
fn vbp_masks_are_deterministic() {
    let data = small_dataset(9);
    let cnn = quick_builder(3).train_steering_cnn(&data).unwrap();
    let img = &data.frames()[0].image;
    let m1 = saliency::visual_backprop(&cnn, img).unwrap();
    let m2 = saliency::visual_backprop(&cnn, img).unwrap();
    assert_eq!(m1.as_slice(), m2.as_slice());
}

#[test]
fn scoring_has_no_hidden_state() {
    // Scoring the same frame repeatedly — interleaved with other frames —
    // must always return the same value (no cache leakage between calls).
    let data = small_dataset(13);
    let detector = quick_builder(4).train(&data).unwrap();
    let a = &data.frames()[0].image;
    let b = &data.frames()[1].image;
    let first = detector.score(a).unwrap();
    let _ = detector.score(b).unwrap();
    let _ = detector.classify(b).unwrap();
    let again = detector.score(a).unwrap();
    assert_eq!(first, again);
}
