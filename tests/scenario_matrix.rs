//! Property-test sweep of the scenario-generator and gate/score
//! invariants (ISSUE 6).
//!
//! The scenario matrix only means something if the modifiers are honest:
//! pure in (seed, frame index, params), unit-range preserving, identity
//! at zero intensity, and gate-safe (weather is not a sensor fault).
//! These tests pin each contract for *any* seed/intensity, pin golden
//! `frame_digest` values so an accidental RNG-order change in `simdrive`
//! fails loudly, and prove the evalgrid report is thread-count
//! invariant.

use novelty::evalgrid::{run_evalgrid, GridConfig, GridDomain};
use novelty::{FrameFault, FrameGate, GateConfig};
use proptest::prelude::*;
use simdrive::{
    boxed_modifier, frame_digest, modifier_names, DatasetConfig, FaultBurst, FaultConfig,
    FaultInjector, FaultKind, ModifierStack,
};
use vision::Image;

const H: usize = 24;
const W: usize = 64;

/// Modifiers that only re-light existing structure (vs the occluders,
/// which paint geometry over it). The gate-safety claim covers both, but
/// the fault-visibility argument below needs the photometric family.
const PHOTOMETRIC: &[&str] = &["rain", "fog", "glare", "night"];
const OCCLUDERS: &[&str] = &["tunnel", "traffic"];

fn base_frame(seed: u64) -> Image {
    DatasetConfig::outdoor()
        .with_len(1)
        .with_size(H, W)
        .with_supersample(1)
        .generate(seed)
        .frames()[0]
        .image
        .clone()
}

fn gate() -> FrameGate {
    FrameGate::new(GateConfig::new(H, W)).expect("default gate config is valid")
}

fn apply(name: &str, intensity: f32, seed: u64, frame_index: u64, image: &Image) -> Image {
    boxed_modifier(name, intensity)
        .unwrap_or_else(|| panic!("unknown modifier {name}"))
        .apply(seed, frame_index, image)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same (seed, frame index, intensity) → bit-identical output, for
    /// every modifier. This is the purity contract the byte-reproducible
    /// evalgrid rests on.
    #[test]
    fn modifiers_are_pure_functions_of_seed_and_frame(
        scene_seed in 0u64..200,
        mod_seed in 0u64..u64::MAX,
        frame_index in 0u64..1000,
        intensity in 0.0f32..1.0,
    ) {
        let base = base_frame(scene_seed);
        for name in modifier_names() {
            let a = apply(name, intensity, mod_seed, frame_index, &base);
            let b = apply(name, intensity, mod_seed, frame_index, &base);
            prop_assert_eq!(
                frame_digest(&a), frame_digest(&b),
                "{} must be deterministic", name
            );
        }
    }

    /// Unit-range preservation: pixels stay in [0, 1] at any intensity.
    #[test]
    fn modifiers_preserve_unit_range(
        scene_seed in 0u64..200,
        mod_seed in 0u64..u64::MAX,
        frame_index in 0u64..1000,
        intensity in 0.0f32..1.0,
    ) {
        let base = base_frame(scene_seed);
        for name in modifier_names() {
            let out = apply(name, intensity, mod_seed, frame_index, &base);
            let min = out.as_slice().iter().copied().fold(f32::INFINITY, f32::min);
            let max = out.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(
                (0.0..=1.0).contains(&min) && (0.0..=1.0).contains(&max),
                "{name}@{intensity} leaves [0,1]: [{min}, {max}]"
            );
        }
    }

    /// Intensity 0 is the identity, bit-exactly, whatever the seed.
    #[test]
    fn zero_intensity_is_identity(
        scene_seed in 0u64..200,
        mod_seed in 0u64..u64::MAX,
        frame_index in 0u64..1000,
    ) {
        let base = base_frame(scene_seed);
        for name in modifier_names() {
            let out = apply(name, 0.0, mod_seed, frame_index, &base);
            prop_assert_eq!(&out, &base, "{}@0 must be the identity", name);
        }
    }

    /// The occluder family commutes bit-exactly (painting with
    /// input-independent shade via pointwise min), for any seeds and
    /// intensities. This is the only commutativity the trait claims.
    #[test]
    fn occluders_commute_bit_exactly(
        scene_seed in 0u64..200,
        mod_seed in 0u64..u64::MAX,
        frame_index in 0u64..1000,
        ia in 0.0f32..1.0,
        ib in 0.0f32..1.0,
    ) {
        let base = base_frame(scene_seed);
        let ab = apply("traffic", ib, mod_seed, frame_index,
            &apply("tunnel", ia, mod_seed, frame_index, &base));
        let ba = apply("tunnel", ia, mod_seed, frame_index,
            &apply("traffic", ib, mod_seed, frame_index, &base));
        prop_assert_eq!(frame_digest(&ab), frame_digest(&ba));
    }

    /// Weather is not a sensor fault: any single modifier at any
    /// intensity — and any composition of the photometric family —
    /// passes the gate. Fog must not read as all-black, glare must not
    /// read as the saturated fault, night must not read as a dead
    /// sensor.
    #[test]
    fn modifiers_never_trip_the_gate(
        scene_seed in 0u64..200,
        mod_seed in 0u64..u64::MAX,
        frame_index in 0u64..200,
        i0 in 0.0f32..1.0,
        i1 in 0.0f32..1.0,
        i2 in 0.0f32..1.0,
        i3 in 0.0f32..1.0,
        rot in 0usize..4,
    ) {
        let base = base_frame(scene_seed);
        for name in PHOTOMETRIC.iter().chain(OCCLUDERS) {
            let out = apply(name, i0, mod_seed, frame_index, &base);
            prop_assert_eq!(
                gate().admit(Some(&out)), None,
                "{}@{} must be admitted", name, i0
            );
        }
        // A composed photometric stack (rotated order, independent
        // intensities) is still admissible.
        let intensities = [i0, i1, i2, i3];
        let mut stack = ModifierStack::new();
        for k in 0..PHOTOMETRIC.len() {
            let name = PHOTOMETRIC[(k + rot) % PHOTOMETRIC.len()];
            if let Some(m) = boxed_modifier(name, intensities[k]) {
                stack.push(m);
            }
        }
        let out = stack.apply(mod_seed, frame_index, &base);
        prop_assert_eq!(
            gate().admit(Some(&out)), None,
            "composed stack {} must be admitted", stack.spec()
        );
    }

    /// No gate regression: real injected faults still trip the gate even
    /// on frames already degraded by weather, for any modifier and
    /// intensity.
    #[test]
    fn injected_faults_still_trip_the_gate(
        scene_seed in 0u64..200,
        mod_seed in 0u64..u64::MAX,
        intensity in 0.0f32..1.0,
        which in 0usize..4,
    ) {
        let name = PHOTOMETRIC[which];
        let weathered = apply(name, intensity, mod_seed, 0, &base_frame(scene_seed));
        let inject = |kind: FaultKind| {
            FaultInjector::new(FaultConfig::new(1).with_burst(FaultBurst::new(kind, 0, 1)))
                .apply(0, &weathered)
        };

        let dropped = inject(FaultKind::Drop);
        prop_assert_eq!(
            gate().admit(dropped.image.as_ref()),
            Some(FrameFault::MissingFrame)
        );

        let nan = inject(FaultKind::NanBurst);
        prop_assert!(matches!(
            gate().admit(nan.image.as_ref()),
            Some(FrameFault::NonFinitePixels { .. })
        ), "nan burst must be rejected on a {name}@{intensity} frame");

        let spiked = inject(FaultKind::BrightnessSpike);
        prop_assert!(matches!(
            gate().admit(spiked.image.as_ref()),
            Some(FrameFault::OutOfRangePixels { .. })
        ), "brightness spike must be rejected on a {name}@{intensity} frame");

        let truncated = inject(FaultKind::Truncate);
        prop_assert!(matches!(
            gate().admit(truncated.image.as_ref()),
            Some(FrameFault::WrongDimensions { .. })
        ), "truncation must be rejected on a {name}@{intensity} frame");

        // Freeze: the same weathered frame repeated past the tolerance.
        let mut g = gate();
        prop_assert_eq!(g.admit(Some(&weathered)), None);
        prop_assert_eq!(g.admit(Some(&weathered)), None);
        prop_assert!(matches!(
            g.admit(Some(&weathered)),
            Some(FrameFault::StuckFrame { .. })
        ), "frozen {name}@{intensity} frame must be rejected");
    }
}

/// Golden digests: every modifier at 3 seeds × 3 intensities on a pinned
/// base frame. Any change to the hash discipline, noise layout or blend
/// arithmetic in `simdrive` shows up here as a loud diff, with the
/// expected table printed for re-pinning after an *intentional* change.
mod golden {
    use super::*;

    const BASE_SEED: u64 = 7;
    const FRAME_INDEX: u64 = 1;
    const SEEDS: [u64; 3] = [11, 22, 33];
    const INTENSITIES: [f32; 3] = [0.25, 0.5, 1.0];

    /// `frame_digest` of the unmodified base frame.
    const BASE_DIGEST: u64 = 0x76c239da96a5fddc;

    /// Row-major: modifier (declaration order) × seed × intensity.
    const GOLDEN: [u64; 54] = [
        0xa0174c401ac568b4,
        0x8016cf36c87220bc,
        0xab97549d4cc973d1,
        0x1feda102cf555aed,
        0x836e7a189002e45a,
        0xbffad06c8ce37c35,
        0xea6f1772d72c21ff,
        0x9af627cec8af7e01,
        0x0baa8854b572835f,
        0xd19eac0d2b921286,
        0xfdbdc417dd8559dc,
        0xae0c093c88cbfb5f,
        0x73826c1718ce7b5e,
        0x88497a8c7a9f83a3,
        0x2fe6cecbd634f911,
        0x0435cc90b6d23945,
        0x7ddcfc5c726c00c4,
        0x27c5af263c3feb74,
        0xa2b9e240b7f52269,
        0x09e0d03875ea735f,
        0x086a62427e506c5f,
        0xad2305461a185819,
        0x497322e81e9a9b60,
        0x7eebd24861654b99,
        0xf250d3a46aff4895,
        0x85bc7e31bda5220c,
        0xaefd4727f0f1b9f7,
        0x7acbb7ec24cee473,
        0x3efa06219a2efc25,
        0xc86bfa3bb567ce94,
        0x3d18d93faa2a9c29,
        0x6efcc8e53bfaaac7,
        0xf3d5e71c345cfdc2,
        0x2c728b3e08a3e782,
        0x0fba2a3d6e52cdb9,
        0xf87a5a10552f0c09,
        0x7ac06f1c5a5b7777,
        0xa5853e63db7e908a,
        0x5dc2722e5de5d145,
        0xa914b6c343d61649,
        0xc6ca02d96261bd46,
        0xd16c5cf538b38bfb,
        0xa9ffe84d340cd9c7,
        0xd8e610a9021b7217,
        0x55281530f1da6f3f,
        0xd6dc637f75f95f9f,
        0xe4b0fc51d016904e,
        0x962b43db1218f7cc,
        0x95f5f6ec0c8a5ae9,
        0x339f8011803294c2,
        0x9839f175955db545,
        0xf82bf4c014c125ef,
        0xd2e9a8362eb9ce50,
        0x60c433618e17153b,
    ];

    fn expected_table() -> (u64, Vec<u64>) {
        let base = base_frame(BASE_SEED);
        let mut digests = Vec::with_capacity(54);
        for name in modifier_names() {
            for seed in SEEDS {
                for intensity in INTENSITIES {
                    digests.push(frame_digest(&apply(
                        name,
                        intensity,
                        seed,
                        FRAME_INDEX,
                        &base,
                    )));
                }
            }
        }
        (frame_digest(&base), digests)
    }

    #[test]
    fn modifier_digests_match_pinned_goldens() {
        let (base_digest, digests) = expected_table();
        if base_digest != BASE_DIGEST || digests != GOLDEN {
            // Print the re-pin table before failing so an intentional
            // renderer change is a copy-paste fix.
            println!("const BASE_DIGEST: u64 = {base_digest:#018x};");
            println!("const GOLDEN: [u64; 54] = [");
            for chunk in digests.chunks(3) {
                let row: Vec<String> = chunk.iter().map(|d| format!("{d:#018x}")).collect();
                println!("    {},", row.join(", "));
            }
            println!("];");
        }
        assert_eq!(base_digest, BASE_DIGEST, "base frame digest changed");
        assert_eq!(
            digests.as_slice(),
            GOLDEN.as_slice(),
            "modifier digests changed"
        );
    }
}

/// The evalgrid report is a pure function of its config: identical at
/// 1 and 4 worker threads (the kernel-parity guarantee surfacing at the
/// top of the stack).
#[test]
fn evalgrid_is_thread_count_invariant() {
    let domains = vec![
        GridDomain::new("clear", "clear"),
        GridDomain::new("fognight", "fog@0.7+night@0.5"),
    ];
    let cfg = GridConfig::quick(13);
    ndtensor::set_thread_config(ndtensor::ThreadConfig::new(1));
    let serial = run_evalgrid(&domains, &cfg, obs::noop()).expect("grid at 1 thread");
    ndtensor::set_thread_config(ndtensor::ThreadConfig::new(4));
    let parallel = run_evalgrid(&domains, &cfg, obs::noop()).expect("grid at 4 threads");
    ndtensor::set_thread_config(ndtensor::ThreadConfig::from_env());
    assert_eq!(
        serial.to_json().expect("serializes"),
        parallel.to_json().expect("serializes"),
        "evalgrid JSON must be byte-identical across thread counts"
    );
    assert_eq!(serial.cells.len(), 4);
}

/// Different seeds genuinely change every modifier's output at full
/// intensity (a unit check, not a proptest: tiny intensities may quantize
/// to no-ops, full intensity must not).
#[test]
fn full_intensity_outputs_depend_on_seed() {
    let base = base_frame(3);
    for name in modifier_names() {
        let a = apply(name, 1.0, 100, 0, &base);
        let b = apply(name, 1.0, 200, 0, &base);
        assert_ne!(
            frame_digest(&a),
            frame_digest(&b),
            "{name} must draw its noise from the seed"
        );
    }
}
