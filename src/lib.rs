#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! # saliency-novelty
//!
//! A from-scratch Rust reproduction of *"Novelty Detection via Network
//! Saliency in Visual-based Deep Learning"* (Chen, Yoon, Shao — DSN 2019,
//! arXiv:1906.03685).
//!
//! The paper detects inputs a trained vision model cannot be trusted on by
//! combining three ingredients:
//!
//! 1. a **steering-angle CNN** (PilotNet-style) trained on road images,
//! 2. **VisualBackProp** saliency masks computed on that CNN, used as a
//!    preprocessing layer that keeps only the features the model relies on,
//! 3. a small **autoencoder one-class classifier** trained on those masks
//!    with an **SSIM** (structural similarity) objective, thresholded at
//!    the 99th percentile of the training-score distribution.
//!
//! This facade crate re-exports the public API of every workspace crate so
//! downstream users can depend on a single package. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! # Quickstart
//!
//! ```no_run
//! use saliency_novelty::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate synthetic driving data (stand-in for the Udacity set).
//! let dataset = DatasetConfig::outdoor().with_len(256).generate(42);
//!
//! // Train the full pipeline: steering CNN → VBP masks → SSIM autoencoder.
//! let detector = NoveltyDetectorBuilder::new()
//!     .seed(7)
//!     .train(&dataset)?;
//!
//! // Score a fresh frame.
//! let frame = DatasetConfig::indoor().with_len(1).generate(1).images()[0].clone();
//! let verdict = detector.classify(&frame)?;
//! println!("novel = {}, score = {:.3}", verdict.is_novel, verdict.score);
//! # Ok(())
//! # }
//! ```
//!
//! The `examples/` directory contains runnable end-to-end scenarios and the
//! `bench` crate regenerates every figure of the paper's evaluation.

pub use metrics;
pub use ndtensor;
pub use neural;
pub use novelty;
pub use obs;
pub use saliency;
pub use simdrive;
pub use vision;

/// One-line import for the most common types across the workspace.
pub mod prelude {
    pub use metrics::{ecdf::Ecdf, histogram::Histogram, ms_ssim, mse, ssim, SsimConfig};
    pub use ndtensor::{Shape, Tensor};
    pub use neural::{LrSchedule, Network, TrainConfig};
    pub use novelty::monitor::{AlarmState, StreamMonitor};
    pub use novelty::{
        BackendKind, Calibrator, Detector, Direction, EnsembleDetector, FallbackPolicy, FrameFault,
        FrameGate, GateConfig, HealthState, HealthTracker, NoveltyDetector, NoveltyDetectorBuilder,
        PipelineKind, ScoreBackend, StreamConfig, StreamDecision, StreamRuntime, Verdict,
    };
    pub use obs::{Recorder, RunRecorder, RunReport};
    pub use saliency::{visual_backprop, SaliencyMethod};
    pub use simdrive::{
        DatasetConfig, DrivingDataset, FaultBurst, FaultConfig, FaultInjector, FaultKind, Weather,
        World,
    };
    pub use vision::Image;
}
