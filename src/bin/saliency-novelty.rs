//! Command-line interface for the saliency-novelty pipeline.
//!
//! ```text
//! saliency-novelty generate --world outdoor --len 20 --out frames/
//! saliency-novelty train    --world outdoor --len 200 --pipeline vbp+ssim --out detector.json
//! saliency-novelty classify --detector detector.json --image frames/frame_0003.pgm
//! saliency-novelty eval     --detector detector.json --novel-world indoor --len 50
//! saliency-novelty stream   --detector detector.json --faults nan@20+8 --alarm-log alarms.json
//! saliency-novelty evalgrid --quick --domains clear=clear,fog=fog@0.8,night=night@0.7
//! saliency-novelty info     --detector detector.json
//! saliency-novelty report   --file report.json --expect cnn-train,vbp
//! ```
//!
//! Flags are `--key value` pairs (`--json` stands alone); `--help` (or no
//! arguments) prints usage. Usage mistakes (unknown flags, unparseable
//! values, missing required flags) exit with code 2; runtime failures
//! (I/O, training, evaluation) exit with code 1. The argument parser is
//! deliberately dependency-free.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use ndtensor::par::{set_thread_config, ThreadConfig};
use novelty::eval::evaluate_recorded;
use novelty::evalgrid::{run_evalgrid, GridConfig, GridDomain};
use novelty::monitor::AlarmState;
use novelty::{
    FallbackPolicy, HealthState, NoveltyDetector, NoveltyDetectorBuilder, PipelineKind,
    StreamConfig, StreamRuntime,
};
use obs::{Recorder, RunRecorder, RunReport};
use serde::Serialize;
use simdrive::{
    DatasetConfig, DriveConfig, FaultBurst, FaultConfig, FaultInjector, FaultKind, Weather, World,
};
use vision::Image;

const USAGE: &str = "\
saliency-novelty — novelty detection via network saliency (DSN 2019 reproduction)

USAGE:
  saliency-novelty <command> [--key value]...

COMMANDS:
  generate   render a synthetic driving dataset to PGM files
             --world outdoor|indoor   (default outdoor)
             --weather clear|fog|rain (default clear)
             --len N                  (default 20)
             --seed S                 (default 0)
             --out DIR                (default frames/)
  train      train a detector and save it as JSON
             --world outdoor|indoor   (default outdoor)
             --pipeline vbp+ssim|vbp+mse|raw+mse (default vbp+ssim)
             --len N                  (default 200)
             --seed S                 (default 0)
             --cnn-epochs N           (default 8)
             --ae-epochs N            (default 60)
             --out FILE               (default detector.json)
             --obs-out FILE           write an observability report
  classify   score one PGM image with a saved detector
             --detector FILE          (required)
             --image FILE.pgm         (required)
             --json                   emit the full verdict as JSON
  eval       compare target vs novel synthetic data under a detector
             --detector FILE          (required)
             --target-world outdoor|indoor (default outdoor)
             --novel-world outdoor|indoor  (default indoor)
             --len N                  (default 50)
             --seed S                 (default 1)
             --json                   emit the summary as JSON
             --obs-out FILE           write an observability report
  stream     run the fault-tolerant streaming monitor over a simulated
             drive, optionally with injected sensor faults
             --detector FILE          (required)
             --world outdoor|indoor   (default outdoor)
             --len N                  (default 120)
             --seed S                 (default 0)
             --window N               alarm window size (default 8)
             --min-novel N            flags that raise the alarm (default 5)
             --fallback treat-novel|hold-last|abstain (default treat-novel)
             --faults k@s+n,...       scripted fault bursts: kind drop|
                                      freeze|nan|spike|truncate at frame s
                                      for n frames (e.g. nan@20+8)
             --fault-rate P           random burst start probability per
                                      frame (default 0 = off)
             --fault-seed S           fault schedule seed (default --seed)
             --fault-burst-len N      max random burst length (default 4)
             --deadline-ms N          per-frame scoring deadline; overruns
                                      degrade health (default off; leaves
                                      runs byte-reproducible)
             --alarm-log FILE         write the per-frame decision log as
                                      JSON (byte-identical across runs
                                      with the same seeds and schedule)
             --require-recovery       exit 1 unless health degraded during
                                      the run AND ended healthy
             --json                   emit the summary as JSON
             --obs-out FILE           write an observability report
  evalgrid   train one detector per scenario domain and score the full
             train-domain x score-domain matrix (AUROC, threshold
             exceedance, mean SSIM per cell)
             --domains name=spec,...  scenario domains as modifier-stack
                                      specs, e.g. clear=clear,fog=fog@0.8,
                                      dusk=night@0.5+rain@0.3
                                      (default clear,fog,night)
             --quick                  smoke-test sizing (seconds; default
                                      is paper geometry, minutes)
             --train-len N            frames per training set (overrides
                                      the sizing preset)
             --test-len N             frames per held-out/score set
             --cnn-epochs N           steering-CNN epochs
             --ae-epochs N            autoencoder epochs
             --seed S                 (default 17)
             --pipeline vbp+ssim|vbp+mse|raw+mse (default vbp+ssim)
             --out FILE               write the grid as schema-versioned
                                      JSON (BENCH_evalgrid.json format)
             --json                   print the grid JSON to stdout
                                      instead of the table
             --obs-out FILE           write an observability report
  info       print a saved detector's configuration
             --detector FILE          (required)
  report     pretty-print an observability report written by --obs-out
             --file FILE              (required)
             --expect s1,s2,...       fail unless every named pipeline
                                      stage appears with positive time

  All pipeline commands also accept --threads N to fix the worker-pool
  size (overrides the SALIENCY_THREADS environment variable).

EXIT CODES:
  0 success · 1 runtime failure · 2 usage error
";

/// Flags that stand alone instead of consuming a value.
const BOOL_FLAGS: &[&str] = &["json", "require-recovery", "quick"];

/// CLI failure, split so `main` can map the class to an exit code.
enum CliError {
    /// The invocation itself was malformed (exit 2).
    Usage(String),
    /// The invocation was well-formed but the work failed (exit 1).
    Runtime(String),
}

type CliResult = Result<(), CliError>;

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime_err(msg: impl Into<String>) -> CliError {
    CliError::Runtime(msg.into())
}

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, CliError> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| usage_err(format!("expected --flag, got {:?}", raw[i])))?;
            if BOOL_FLAGS.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = raw
                .get(i + 1)
                .ok_or_else(|| usage_err(format!("flag --{key} is missing its value")))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Args { flags })
    }

    /// Rejects flags this command does not understand — a typo'd flag
    /// silently falling back to a default is worse than an error.
    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), CliError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(usage_err(format!(
                    "unknown flag --{key} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn optional(&self, key: &str) -> Option<String> {
        self.flags.get(key).cloned()
    }

    fn is_set(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    fn required(&self, key: &str) -> Result<String, CliError> {
        self.flags
            .get(key)
            .cloned()
            .ok_or_else(|| usage_err(format!("missing required flag --{key}")))
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("--{key} must be an integer, got {v:?}"))),
        }
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("--{key} must be an integer, got {v:?}"))),
        }
    }

    /// Applies `--threads N` to the process-global worker pool.
    fn apply_threads(&self) -> Result<(), CliError> {
        if let Some(v) = self.flags.get("threads") {
            let n: usize = v
                .parse()
                .map_err(|_| usage_err(format!("--threads must be an integer, got {v:?}")))?;
            if n == 0 {
                return Err(usage_err("--threads must be at least 1"));
            }
            set_thread_config(ThreadConfig::new(n));
        }
        Ok(())
    }
}

fn parse_world(s: &str) -> Result<World, CliError> {
    match s {
        "outdoor" => Ok(World::Outdoor),
        "indoor" => Ok(World::Indoor),
        other => Err(usage_err(format!(
            "unknown world {other:?} (outdoor|indoor)"
        ))),
    }
}

fn parse_weather(s: &str) -> Result<Weather, CliError> {
    match s {
        "clear" => Ok(Weather::Clear),
        "fog" => Ok(Weather::Fog),
        "rain" => Ok(Weather::Rain),
        other => Err(usage_err(format!(
            "unknown weather {other:?} (clear|fog|rain)"
        ))),
    }
}

fn parse_pipeline(s: &str) -> Result<PipelineKind, CliError> {
    match s {
        "vbp+ssim" => Ok(PipelineKind::VbpSsim),
        "vbp+mse" => Ok(PipelineKind::VbpMse),
        "raw+mse" => Ok(PipelineKind::RawMse),
        other => Err(usage_err(format!(
            "unknown pipeline {other:?} (vbp+ssim|vbp+mse|raw+mse)"
        ))),
    }
}

/// Picks the recorder for a command: a live [`RunRecorder`] when
/// `--obs-out` is present, the no-op otherwise. Recording never changes
/// results, only what gets written at the end.
fn recorder_for(args: &Args) -> (Option<RunRecorder>, Option<String>) {
    match args.optional("obs-out") {
        Some(path) => (Some(RunRecorder::new()), Some(path)),
        None => (None, None),
    }
}

/// Writes the observability report if `--obs-out` was requested.
fn flush_report(
    recorder: &Option<RunRecorder>,
    obs_out: &Option<String>,
    command: &str,
) -> Result<(), CliError> {
    if let (Some(recorder), Some(path)) = (recorder, obs_out) {
        let report = recorder.report(command);
        report
            .save(path)
            .map_err(|e| runtime_err(format!("cannot write report {path}: {e}")))?;
        eprintln!("wrote observability report to {path}");
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> CliResult {
    args.reject_unknown(&["world", "weather", "len", "seed", "out", "threads"])?;
    let world = parse_world(&args.get("world", "outdoor"))?;
    let weather = parse_weather(&args.get("weather", "clear"))?;
    let len = args.usize("len", 20)?;
    let seed = args.u64("seed", 0)?;
    let out = PathBuf::from(args.get("out", "frames"));
    std::fs::create_dir_all(&out)
        .map_err(|e| runtime_err(format!("cannot create {}: {e}", out.display())))?;

    let dataset = DatasetConfig::for_world(world)
        .with_len(len)
        .with_weather(weather)
        .generate(seed);
    let mut index = String::from("frame,angle\n");
    for (i, frame) in dataset.frames().iter().enumerate() {
        let name = format!("frame_{i:04}.pgm");
        vision::io::save_pgm(&frame.image, out.join(&name))
            .map_err(|e| runtime_err(format!("cannot write {name}: {e}")))?;
        index.push_str(&format!("{name},{:.6}\n", frame.angle));
    }
    std::fs::write(out.join("angles.csv"), index)
        .map_err(|e| runtime_err(format!("cannot write angles.csv: {e}")))?;
    println!(
        "wrote {len} {world} frames ({weather}) and angles.csv to {}",
        out.display()
    );
    Ok(())
}

fn cmd_train(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "world",
        "pipeline",
        "len",
        "seed",
        "cnn-epochs",
        "ae-epochs",
        "out",
        "obs-out",
        "threads",
    ])?;
    let world = parse_world(&args.get("world", "outdoor"))?;
    let pipeline = parse_pipeline(&args.get("pipeline", "vbp+ssim"))?;
    let len = args.usize("len", 200)?;
    let seed = args.u64("seed", 0)?;
    let cnn_epochs = args.usize("cnn-epochs", 8)?;
    let ae_epochs = args.usize("ae-epochs", 60)?;
    let out = args.get("out", "detector.json");
    let (recorder, obs_out) = recorder_for(args);

    println!("generating {len} {world} training frames…");
    let dataset = DatasetConfig::for_world(world).with_len(len).generate(seed);
    println!(
        "training {} pipeline (cnn {cnn_epochs} ep, ae {ae_epochs} ep)…",
        pipeline.name()
    );
    let builder = NoveltyDetectorBuilder::for_kind(pipeline)
        .cnn_epochs(cnn_epochs)
        .ae_epochs(ae_epochs)
        .seed(seed);
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };
    let detector = builder
        .train_recorded(&dataset, dyn_recorder)
        .map_err(|e| runtime_err(format!("training failed: {e}")))?;
    detector
        .save(&out)
        .map_err(|e| runtime_err(format!("cannot save {out}: {e}")))?;
    println!(
        "saved detector to {out} (threshold {:.4}, {} training scores)",
        detector.threshold().value(),
        detector.training_scores().len()
    );
    flush_report(&recorder, &obs_out, "train")
}

fn load_image(path: &str) -> Result<Image, CliError> {
    vision::io::load_pgm(path).map_err(|e| runtime_err(format!("cannot read {path}: {e}")))
}

fn load_detector_file(args: &Args) -> Result<NoveltyDetector, CliError> {
    NoveltyDetector::load(args.required("detector")?)
        .map_err(|e| runtime_err(format!("cannot load detector: {e}")))
}

fn cmd_classify(args: &Args) -> CliResult {
    args.reject_unknown(&["detector", "image", "json", "threads"])?;
    let detector = load_detector_file(args)?;
    let image = load_image(&args.required("image")?)?;
    let verdict = detector
        .classify(&image)
        .map_err(|e| runtime_err(format!("classification failed: {e}")))?;
    if args.is_set("json") {
        let json = serde_json::to_string(&verdict)
            .map_err(|e| runtime_err(format!("cannot serialize verdict: {e}")))?;
        println!("{json}");
    } else {
        println!(
            "{{\"is_novel\": {}, \"score\": {:.6}, \"threshold\": {:.6}, \
             \"percentile_rank\": {:.2}, \"pipeline\": \"{}\", \"metric\": \"{}\"}}",
            verdict.is_novel,
            verdict.score,
            verdict.threshold,
            verdict.percentile_rank,
            verdict.kind.name(),
            detector.classifier().objective().name()
        );
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "detector",
        "target-world",
        "novel-world",
        "len",
        "seed",
        "json",
        "obs-out",
        "threads",
    ])?;
    let detector = load_detector_file(args)?;
    let target_world = parse_world(&args.get("target-world", "outdoor"))?;
    let novel_world = parse_world(&args.get("novel-world", "indoor"))?;
    let len = args.usize("len", 50)?;
    let seed = args.u64("seed", 1)?;
    let (recorder, obs_out) = recorder_for(args);
    let images = |world: World, seed: u64| -> Vec<Image> {
        DatasetConfig::for_world(world)
            .with_len(len)
            .generate(seed)
            .frames()
            .iter()
            .map(|f| f.image.clone())
            .collect()
    };
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };
    let report = evaluate_recorded(
        &detector,
        &images(target_world, seed),
        &images(novel_world, seed + 1),
        dyn_recorder,
    )
    .map_err(|e| runtime_err(format!("evaluation failed: {e}")))?;
    if args.is_set("json") {
        println!(
            "{{\"auroc\": {:.6}, \"novel_detection_rate\": {:.6}, \
             \"false_positive_rate\": {:.6}, \"threshold\": {:.6}, \
             \"target_images\": {}, \"novel_images\": {}}}",
            report.separation.auroc,
            report.novel_detection_rate,
            report.false_positive_rate,
            report.threshold,
            report.target_scores.len(),
            report.novel_scores.len()
        );
    } else {
        println!("{report}");
    }
    flush_report(&recorder, &obs_out, "eval")
}

/// One line of the `stream` alarm log. Only deterministic fields are
/// logged (deadline overruns are deliberately absent), so runs with the
/// same seeds and fault schedule produce byte-identical logs.
#[derive(Serialize)]
struct AlarmLogEntry {
    /// Frame index in the stream.
    frame: u64,
    /// Injected sensor fault, if the injector corrupted this frame.
    injected: Option<String>,
    /// Gate rejection class, if the frame was inadmissible.
    gate: Option<String>,
    /// How the decision was produced (scored / fallback-* / abstained).
    source: String,
    /// The novelty flag; absent under the abstain policy.
    is_novel: Option<bool>,
    /// The backing verdict's score, when one exists.
    score: Option<f32>,
    /// Health state after this frame.
    health: String,
    /// Alarm state after this frame.
    alarm: String,
}

fn alarm_name(state: AlarmState) -> &'static str {
    match state {
        AlarmState::Nominal => "nominal",
        AlarmState::Raised => "raised",
    }
}

/// Parses `--faults` specs like `nan@20+8,freeze@40` (burst length
/// defaults to 1).
fn parse_fault_bursts(spec: &str) -> Result<Vec<FaultBurst>, CliError> {
    let mut bursts = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (kind_s, rest) = part.split_once('@').ok_or_else(|| {
            usage_err(format!(
                "fault burst {part:?} must look like kind@start+len (e.g. nan@20+8)"
            ))
        })?;
        let kind = FaultKind::from_name(kind_s).ok_or_else(|| {
            usage_err(format!(
                "unknown fault kind {kind_s:?} (drop|freeze|nan|spike|truncate)"
            ))
        })?;
        let (start_s, len_s) = rest.split_once('+').unwrap_or((rest, "1"));
        let start: usize = start_s.parse().map_err(|_| {
            usage_err(format!(
                "fault burst start must be an integer, got {start_s:?}"
            ))
        })?;
        let len: usize = len_s.parse().map_err(|_| {
            usage_err(format!(
                "fault burst length must be an integer, got {len_s:?}"
            ))
        })?;
        if len == 0 {
            return Err(usage_err(format!("fault burst {part:?} has zero length")));
        }
        bursts.push(FaultBurst::new(kind, start, len));
    }
    if bursts.is_empty() {
        return Err(usage_err(
            "--faults needs at least one kind@start+len burst",
        ));
    }
    Ok(bursts)
}

fn cmd_stream(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "detector",
        "world",
        "len",
        "seed",
        "window",
        "min-novel",
        "fallback",
        "faults",
        "fault-rate",
        "fault-seed",
        "fault-burst-len",
        "deadline-ms",
        "alarm-log",
        "require-recovery",
        "json",
        "obs-out",
        "threads",
    ])?;
    let detector = load_detector_file(args)?;
    let world = parse_world(&args.get("world", "outdoor"))?;
    let len = args.usize("len", 120)?;
    let seed = args.u64("seed", 0)?;
    let window = args.usize("window", 8)?;
    let min_novel = args.usize("min-novel", 5)?;
    let fallback_name = args.get("fallback", "treat-novel");
    let fallback = FallbackPolicy::from_name(&fallback_name).ok_or_else(|| {
        usage_err(format!(
            "unknown fallback policy {fallback_name:?} (treat-novel|hold-last|abstain)"
        ))
    })?;

    // Assemble the deterministic fault schedule.
    let mut fault_config = FaultConfig::new(args.u64("fault-seed", seed)?);
    if let Some(spec) = args.optional("faults") {
        for burst in parse_fault_bursts(&spec)? {
            fault_config = fault_config.with_burst(burst);
        }
    }
    let rate_s = args.get("fault-rate", "0");
    let rate: f32 = rate_s
        .parse()
        .map_err(|_| usage_err(format!("--fault-rate must be a number, got {rate_s:?}")))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(usage_err(format!(
            "--fault-rate must be in [0, 1], got {rate}"
        )));
    }
    let burst_len = args.usize("fault-burst-len", 4)?;
    if burst_len == 0 {
        return Err(usage_err("--fault-burst-len must be at least 1"));
    }
    if rate > 0.0 {
        fault_config = fault_config.with_random(rate, burst_len);
    }

    let mut config = StreamConfig::for_detector(&detector)
        .with_fallback(fallback)
        .with_alarm_window(window, min_novel);
    let deadline_ms = args.u64("deadline-ms", 0)?;
    if deadline_ms > 0 {
        config = config.with_deadline(Duration::from_millis(deadline_ms));
    }
    let mut runtime = StreamRuntime::new(&detector, config)
        .map_err(|e| usage_err(format!("invalid stream configuration: {e}")))?;

    let (recorder, obs_out) = recorder_for(args);
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };

    // Drive frames are rendered at the detector's input size so the gate
    // checks deployment geometry, whatever the detector was trained on.
    let drive = DriveConfig::new(world)
        .with_len(len)
        .with_size(
            detector.classifier().height(),
            detector.classifier().width(),
        )
        .simulate(seed);
    let mut injector = FaultInjector::new(fault_config);

    let mut log = Vec::with_capacity(len);
    let mut scored = 0u64;
    let mut fallbacks: HashMap<&'static str, u64> = HashMap::new();
    let mut gate_rejections: HashMap<&'static str, u64> = HashMap::new();
    let mut alarm_raised_frames = 0u64;
    for (i, frame) in drive.frames().iter().enumerate() {
        let injected = injector.apply(i, &frame.image);
        let decision = runtime.process_recorded(injected.image.as_ref(), dyn_recorder);
        if decision.source == novelty::DecisionSource::Scored {
            scored += 1;
        } else {
            *fallbacks.entry(decision.source.name()).or_default() += 1;
        }
        if let Some(fault) = &decision.gate_fault {
            *gate_rejections.entry(fault.class()).or_default() += 1;
        }
        if decision.alarm == AlarmState::Raised {
            alarm_raised_frames += 1;
        }
        log.push(AlarmLogEntry {
            frame: decision.frame,
            injected: injected.fault.map(|k| k.name().to_string()),
            gate: decision.gate_fault.as_ref().map(|f| f.class().to_string()),
            source: decision.source.name().to_string(),
            is_novel: decision.is_novel,
            score: decision.verdict.map(|v| v.score),
            health: decision.health.name().to_string(),
            alarm: alarm_name(decision.alarm).to_string(),
        });
    }

    if let Some(path) = args.optional("alarm-log") {
        let json = serde_json::to_string(&log)
            .map_err(|e| runtime_err(format!("cannot serialize alarm log: {e}")))?;
        std::fs::write(&path, json)
            .map_err(|e| runtime_err(format!("cannot write alarm log {path}: {e}")))?;
        eprintln!("wrote alarm log to {path}");
    }

    let health = runtime.health();
    let final_state = health.state();
    let worst = health.worst_state();
    let transitions = health.transitions().len();
    let monitor = runtime.monitor();
    // Sort the breakdown maps so output ordering is stable.
    let sorted = |m: &HashMap<&'static str, u64>| -> Vec<(String, u64)> {
        let mut v: Vec<_> = m.iter().map(|(k, n)| (k.to_string(), *n)).collect();
        v.sort();
        v
    };
    let gate_sorted = sorted(&gate_rejections);
    let fallback_sorted = sorted(&fallbacks);
    let breakdown = |v: &[(String, u64)]| -> String {
        if v.is_empty() {
            "none".to_string()
        } else {
            v.iter()
                .map(|(k, n)| format!("{k} {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    };

    if args.is_set("json") {
        println!(
            "{{\"frames\": {}, \"scored\": {}, \"fallbacks\": {}, \
             \"gate_rejections\": {}, \"health_transitions\": {}, \
             \"worst_health\": \"{}\", \"final_health\": \"{}\", \
             \"alarm_raised_frames\": {}, \"lifetime_novel_rate\": {:.6}}}",
            runtime.frames_processed(),
            scored,
            fallback_sorted.iter().map(|(_, n)| n).sum::<u64>(),
            gate_sorted.iter().map(|(_, n)| n).sum::<u64>(),
            transitions,
            worst.name(),
            final_state.name(),
            alarm_raised_frames,
            monitor.lifetime_novel_rate()
        );
    } else {
        println!(
            "processed {} frames with policy {}: {} scored, {} fallback",
            runtime.frames_processed(),
            fallback.name(),
            scored,
            fallback_sorted.iter().map(|(_, n)| n).sum::<u64>()
        );
        println!("gate rejections:    {}", breakdown(&gate_sorted));
        println!("fallback decisions: {}", breakdown(&fallback_sorted));
        println!(
            "health:             {} transitions, worst {}, final {}",
            transitions,
            worst.name(),
            final_state.name()
        );
        println!(
            "alarm:              raised on {} frames, lifetime novel rate {:.1}%",
            alarm_raised_frames,
            monitor.lifetime_novel_rate() * 100.0
        );
    }
    flush_report(&recorder, &obs_out, "stream")?;

    if args.is_set("require-recovery") {
        if worst == HealthState::Healthy {
            return Err(runtime_err(
                "--require-recovery: health never degraded (no faults took effect)".to_string(),
            ));
        }
        if final_state != HealthState::Healthy {
            return Err(runtime_err(format!(
                "--require-recovery: stream ended {} (worst {}), expected healthy",
                final_state.name(),
                worst.name()
            )));
        }
        println!(
            "recovery check passed: degraded to {} and returned to healthy",
            worst.name()
        );
    }
    Ok(())
}

/// Parses `--domains clear=clear,fog=fog@0.8,...` into grid domains.
fn parse_grid_domains(spec: &str) -> Result<Vec<GridDomain>, CliError> {
    let mut domains = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, stack) = part.split_once('=').ok_or_else(|| {
            usage_err(format!(
                "domain {part:?} must look like name=spec (e.g. fog=fog@0.8)"
            ))
        })?;
        domains.push(GridDomain::new(name, stack));
    }
    if domains.is_empty() {
        return Err(usage_err("--domains needs at least one name=spec entry"));
    }
    Ok(domains)
}

fn cmd_evalgrid(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "domains",
        "quick",
        "train-len",
        "test-len",
        "cnn-epochs",
        "ae-epochs",
        "seed",
        "pipeline",
        "out",
        "json",
        "obs-out",
        "threads",
    ])?;
    let seed = args.u64("seed", 17)?;
    let mut cfg = if args.is_set("quick") {
        GridConfig::quick(seed)
    } else {
        GridConfig::full(seed)
    };
    cfg.train_len = args.usize("train-len", cfg.train_len)?;
    cfg.test_len = args.usize("test-len", cfg.test_len)?;
    cfg.cnn_epochs = args.usize("cnn-epochs", cfg.cnn_epochs)?;
    cfg.ae_epochs = args.usize("ae-epochs", cfg.ae_epochs)?;
    cfg.kind = parse_pipeline(&args.get("pipeline", "vbp+ssim"))?;
    let domains = match args.optional("domains") {
        Some(spec) => parse_grid_domains(&spec)?,
        None => vec![
            GridDomain::new("clear", "clear"),
            GridDomain::new("fog", "fog@0.8"),
            GridDomain::new("night", "night@0.7"),
        ],
    };

    let (recorder, obs_out) = recorder_for(args);
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };
    eprintln!(
        "evalgrid: {} domains, {} train / {} test frames, {}x{}, seed {seed}",
        domains.len(),
        cfg.train_len,
        cfg.test_len,
        cfg.height,
        cfg.width
    );
    let report = run_evalgrid(&domains, &cfg, dyn_recorder)
        .map_err(|e| runtime_err(format!("evalgrid failed: {e}")))?;

    let json = report
        .to_json()
        .map_err(|e| runtime_err(format!("cannot serialize grid: {e}")))?;
    if args.is_set("json") {
        println!("{json}");
    } else {
        print!("{}", report.render_table());
    }
    if let Some(path) = args.optional("out") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| runtime_err(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote grid report to {path}");
    }
    flush_report(&recorder, &obs_out, "evalgrid")
}

fn cmd_info(args: &Args) -> CliResult {
    args.reject_unknown(&["detector"])?;
    let detector = load_detector_file(args)?;
    println!("pipeline:      {}", detector.kind().name());
    println!("preprocessing: {}", detector.preprocessing().name());
    println!(
        "objective:     {}",
        detector.classifier().objective().name()
    );
    println!(
        "input size:    {}x{}",
        detector.classifier().height(),
        detector.classifier().width()
    );
    println!(
        "threshold:     {:.4} ({:?})",
        detector.threshold().value(),
        detector.threshold().direction()
    );
    println!(
        "training set:  {} calibration scores",
        detector.training_scores().len()
    );
    if let Some(cnn) = detector.steering_network() {
        println!(
            "steering CNN:  {} layers, {} parameters",
            cnn.layer_count(),
            cnn.param_count()
        );
    } else {
        println!("steering CNN:  none (raw pipeline)");
    }
    println!(
        "autoencoder:   {} layers, {} parameters",
        detector.classifier().network().layer_count(),
        detector.classifier().network().param_count()
    );
    Ok(())
}

fn cmd_report(args: &Args) -> CliResult {
    args.reject_unknown(&["file", "expect"])?;
    let file = args.required("file")?;
    let report =
        RunReport::load(&file).map_err(|e| runtime_err(format!("cannot load {file}: {e}")))?;
    print!("{report}");
    if let Some(expected) = args.optional("expect") {
        let names: Vec<&str> = expected
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if names.is_empty() {
            return Err(usage_err("--expect needs a comma-separated stage list"));
        }
        let missing = report.missing_stages(&names);
        if !missing.is_empty() {
            return Err(runtime_err(format!(
                "report is missing expected stages (or they have zero time): {}",
                missing.join(", ")
            )));
        }
        println!("all expected stages present: {}", names.join(", "));
    }
    Ok(())
}

fn run() -> CliResult {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    if command == "--help" || command == "help" {
        print!("{USAGE}");
        return Ok(());
    }
    let args = Args::parse(&argv[1..])?;
    args.apply_threads()?;
    match command.as_str() {
        "generate" => cmd_generate(&args),
        "train" => cmd_train(&args),
        "classify" => cmd_classify(&args),
        "eval" => cmd_eval(&args),
        "stream" => cmd_stream(&args),
        "evalgrid" => cmd_evalgrid(&args),
        "info" => cmd_info(&args),
        "report" => cmd_report(&args),
        other => Err(usage_err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
