//! Command-line interface for the saliency-novelty pipeline.
//!
//! ```text
//! saliency-novelty generate --world outdoor --len 20 --out frames/
//! saliency-novelty train    --world outdoor --len 200 --pipeline vbp+ssim --out detector.json
//! saliency-novelty classify --detector detector.json --image frames/frame_0003.pgm
//! saliency-novelty eval     --detector detector.json --novel-world indoor --len 50
//! saliency-novelty info     --detector detector.json
//! ```
//!
//! Flags are `--key value` pairs; `--help` (or no arguments) prints usage.
//! The argument parser is deliberately dependency-free.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use novelty::eval::evaluate;
use novelty::{load_detector, save_detector, NoveltyDetectorBuilder, PipelineKind};
use simdrive::{DatasetConfig, Weather, World};
use vision::Image;

const USAGE: &str = "\
saliency-novelty — novelty detection via network saliency (DSN 2019 reproduction)

USAGE:
  saliency-novelty <command> [--key value]...

COMMANDS:
  generate   render a synthetic driving dataset to PGM files
             --world outdoor|indoor   (default outdoor)
             --weather clear|fog|rain (default clear)
             --len N                  (default 20)
             --seed S                 (default 0)
             --out DIR                (default frames/)
  train      train a detector and save it as JSON
             --world outdoor|indoor   (default outdoor)
             --pipeline vbp+ssim|vbp+mse|raw+mse (default vbp+ssim)
             --len N                  (default 200)
             --seed S                 (default 0)
             --cnn-epochs N           (default 8)
             --ae-epochs N            (default 60)
             --out FILE               (default detector.json)
  classify   score one PGM image with a saved detector
             --detector FILE          (required)
             --image FILE.pgm         (required)
  eval       compare target vs novel synthetic data under a detector
             --detector FILE          (required)
             --target-world outdoor|indoor (default outdoor)
             --novel-world outdoor|indoor  (default indoor)
             --len N                  (default 50)
             --seed S                 (default 1)
  info       print a saved detector's configuration
             --detector FILE          (required)
";

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", raw[i]))?;
            let value = raw
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} is missing its value"))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Args { flags })
    }

    /// Rejects flags this command does not understand — a typo'd flag
    /// silently falling back to a default is worse than an error.
    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown flag --{key} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn required(&self, key: &str) -> Result<String, String> {
        self.flags
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} must be an integer, got {v:?}")),
        }
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} must be an integer, got {v:?}")),
        }
    }
}

fn parse_world(s: &str) -> Result<World, String> {
    match s {
        "outdoor" => Ok(World::Outdoor),
        "indoor" => Ok(World::Indoor),
        other => Err(format!("unknown world {other:?} (outdoor|indoor)")),
    }
}

fn parse_weather(s: &str) -> Result<Weather, String> {
    match s {
        "clear" => Ok(Weather::Clear),
        "fog" => Ok(Weather::Fog),
        "rain" => Ok(Weather::Rain),
        other => Err(format!("unknown weather {other:?} (clear|fog|rain)")),
    }
}

fn parse_pipeline(s: &str) -> Result<PipelineKind, String> {
    match s {
        "vbp+ssim" => Ok(PipelineKind::VbpSsim),
        "vbp+mse" => Ok(PipelineKind::VbpMse),
        "raw+mse" => Ok(PipelineKind::RawMse),
        other => Err(format!(
            "unknown pipeline {other:?} (vbp+ssim|vbp+mse|raw+mse)"
        )),
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["world", "weather", "len", "seed", "out"])?;
    let world = parse_world(&args.get("world", "outdoor"))?;
    let weather = parse_weather(&args.get("weather", "clear"))?;
    let len = args.usize("len", 20)?;
    let seed = args.u64("seed", 0)?;
    let out = PathBuf::from(args.get("out", "frames"));
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;

    let dataset = DatasetConfig::for_world(world)
        .with_len(len)
        .with_weather(weather)
        .generate(seed);
    let mut index = String::from("frame,angle\n");
    for (i, frame) in dataset.frames().iter().enumerate() {
        let name = format!("frame_{i:04}.pgm");
        vision::io::save_pgm(&frame.image, out.join(&name))
            .map_err(|e| format!("cannot write {name}: {e}"))?;
        index.push_str(&format!("{name},{:.6}\n", frame.angle));
    }
    std::fs::write(out.join("angles.csv"), index)
        .map_err(|e| format!("cannot write angles.csv: {e}"))?;
    println!(
        "wrote {len} {world} frames ({weather}) and angles.csv to {}",
        out.display()
    );
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "world",
        "pipeline",
        "len",
        "seed",
        "cnn-epochs",
        "ae-epochs",
        "out",
    ])?;
    let world = parse_world(&args.get("world", "outdoor"))?;
    let pipeline = parse_pipeline(&args.get("pipeline", "vbp+ssim"))?;
    let len = args.usize("len", 200)?;
    let seed = args.u64("seed", 0)?;
    let cnn_epochs = args.usize("cnn-epochs", 8)?;
    let ae_epochs = args.usize("ae-epochs", 60)?;
    let out = args.get("out", "detector.json");

    println!("generating {len} {world} training frames…");
    let dataset = DatasetConfig::for_world(world).with_len(len).generate(seed);
    println!(
        "training {} pipeline (cnn {cnn_epochs} ep, ae {ae_epochs} ep)…",
        pipeline.name()
    );
    let detector = NoveltyDetectorBuilder::for_kind(pipeline)
        .cnn_epochs(cnn_epochs)
        .ae_epochs(ae_epochs)
        .seed(seed)
        .train(&dataset)
        .map_err(|e| format!("training failed: {e}"))?;
    save_detector(&detector, &out).map_err(|e| format!("cannot save {out}: {e}"))?;
    println!(
        "saved detector to {out} (threshold {:.4}, {} training scores)",
        detector.threshold().value(),
        detector.training_scores().len()
    );
    Ok(())
}

fn load_image(path: &str) -> Result<Image, String> {
    vision::io::load_pgm(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["detector", "image"])?;
    let detector = load_detector(args.required("detector")?)
        .map_err(|e| format!("cannot load detector: {e}"))?;
    let image = load_image(&args.required("image")?)?;
    let verdict = detector
        .classify(&image)
        .map_err(|e| format!("classification failed: {e}"))?;
    println!(
        "{{\"is_novel\": {}, \"score\": {:.6}, \"threshold\": {:.6}, \"metric\": \"{}\"}}",
        verdict.is_novel,
        verdict.score,
        verdict.threshold,
        detector.classifier().objective().name()
    );
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["detector", "target-world", "novel-world", "len", "seed"])?;
    let detector = load_detector(args.required("detector")?)
        .map_err(|e| format!("cannot load detector: {e}"))?;
    let target_world = parse_world(&args.get("target-world", "outdoor"))?;
    let novel_world = parse_world(&args.get("novel-world", "indoor"))?;
    let len = args.usize("len", 50)?;
    let seed = args.u64("seed", 1)?;
    let images = |world: World, seed: u64| -> Vec<Image> {
        DatasetConfig::for_world(world)
            .with_len(len)
            .generate(seed)
            .frames()
            .iter()
            .map(|f| f.image.clone())
            .collect()
    };
    let report = evaluate(
        &detector,
        &images(target_world, seed),
        &images(novel_world, seed + 1),
    )
    .map_err(|e| format!("evaluation failed: {e}"))?;
    println!("{report}");
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["detector"])?;
    let detector = load_detector(args.required("detector")?)
        .map_err(|e| format!("cannot load detector: {e}"))?;
    println!("preprocessing: {}", detector.preprocessing().name());
    println!(
        "objective:     {}",
        detector.classifier().objective().name()
    );
    println!(
        "input size:    {}x{}",
        detector.classifier().height(),
        detector.classifier().width()
    );
    println!(
        "threshold:     {:.4} ({:?})",
        detector.threshold().value(),
        detector.threshold().direction()
    );
    println!(
        "training set:  {} calibration scores",
        detector.training_scores().len()
    );
    if let Some(cnn) = detector.steering_network() {
        println!(
            "steering CNN:  {} layers, {} parameters",
            cnn.layer_count(),
            cnn.param_count()
        );
    } else {
        println!("steering CNN:  none (raw pipeline)");
    }
    println!(
        "autoencoder:   {} layers, {} parameters",
        detector.classifier().network().layer_count(),
        detector.classifier().network().param_count()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    if command == "--help" || command == "help" {
        print!("{USAGE}");
        return Ok(());
    }
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&args),
        "train" => cmd_train(&args),
        "classify" => cmd_classify(&args),
        "eval" => cmd_eval(&args),
        "info" => cmd_info(&args),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
