//! Command-line interface for the saliency-novelty pipeline.
//!
//! ```text
//! saliency-novelty generate --world outdoor --len 20 --out frames/
//! saliency-novelty backends
//! saliency-novelty train    --world outdoor --len 200 --backend vbp+ssim --out detector.json
//! saliency-novelty train    --world outdoor --len 200 --ensemble --out ensemble.json
//! saliency-novelty classify --detector detector.json --image frames/frame_0003.pgm
//! saliency-novelty eval     --detector ensemble.json --backend model-char --len 50
//! saliency-novelty stream   --detector detector.json --faults nan@20+8 --alarm-log alarms.json
//! saliency-novelty serve    --detector detector.json --tenants 8 --hostile 3 --log-dir logs/
//! saliency-novelty evalgrid --quick --domains clear=clear,fog=fog@0.8,night=night@0.7
//! saliency-novelty info     --detector detector.json
//! saliency-novelty report   --file report.json --expect cnn-train,vbp
//! ```
//!
//! Flags are `--key value` pairs (`--json` stands alone); `--help` (or no
//! arguments) prints usage. Usage mistakes (unknown flags, unparseable
//! values, missing required flags) exit with code 2; runtime failures
//! (I/O, training, evaluation) exit with code 1. The argument parser is
//! deliberately dependency-free.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use ndtensor::par::{set_thread_config, ThreadConfig};
use novelty::eval::evaluate_recorded;
use novelty::evalgrid::{run_evalgrid, GridConfig, GridDomain};
use novelty::monitor::AlarmState;
use novelty::{
    load_any, AlarmLog, AlarmLogEntry, BackendKind, CostModel, Detector, EnsembleDetector,
    FallbackPolicy, HealthState, LoadedDetector, NoveltyDetector, NoveltyDetectorBuilder,
    QueueConfig, StreamConfig, StreamRuntime, StreamServer, TenantSpec,
};
use obs::{Recorder, RunRecorder, RunReport};
use serde::Serialize;
use simdrive::{
    standard_mix, DatasetConfig, DriveConfig, FaultBurst, FaultConfig, FaultInjector, FaultKind,
    InjectedFrame, Weather, World,
};
use vision::Image;

const USAGE: &str = "\
saliency-novelty — novelty detection via network saliency (DSN 2019 reproduction)

USAGE:
  saliency-novelty <command> [--key value]...

COMMANDS:
  generate   render a synthetic driving dataset to PGM files
             --world outdoor|indoor   (default outdoor)
             --weather clear|fog|rain (default clear)
             --len N                  (default 20)
             --seed S                 (default 0)
             --out DIR                (default frames/)
  backends   list the registered score backends
  train      train a detector (or a fused ensemble) and save it as JSON
             --world outdoor|indoor   (default outdoor)
             --backend ID             score backend: model-char|raw+mse|
                                      vbp+mse|vbp+ssim (default vbp+ssim;
                                      --pipeline is a deprecated alias)
             --ensemble               train every registered backend on a
                                      shared steering CNN and save the
                                      calibrated majority-vote ensemble
             --len N                  (default 200)
             --seed S                 (default 0)
             --cnn-epochs N           (default 8)
             --ae-epochs N            (default 60)
             --out FILE               (default detector.json)
             --obs-out FILE           write an observability report
  classify   score one PGM image with a saved detector or ensemble
             --detector FILE          (required)
             --image FILE.pgm         (required)
             --backend ID             for an ensemble file, score with
                                      this member only
             --ensemble               require the file to hold an ensemble
             --json                   emit the full verdict as JSON
  eval       compare target vs novel synthetic data under a detector
             --detector FILE          (required)
             --backend ID             see classify
             --ensemble               see classify
             --target-world outdoor|indoor (default outdoor)
             --novel-world outdoor|indoor  (default indoor)
             --len N                  (default 50)
             --seed S                 (default 1)
             --json                   emit the summary as JSON
             --obs-out FILE           write an observability report
  stream     run the fault-tolerant streaming monitor over a simulated
             drive, optionally with injected sensor faults
             --detector FILE          (required)
             --backend ID             see classify
             --ensemble               see classify
             --world outdoor|indoor   (default outdoor)
             --len N                  (default 120)
             --seed S                 (default 0)
             --window N               alarm window size (default 8)
             --min-novel N            flags that raise the alarm (default 5)
             --fallback treat-novel|hold-last|abstain (default treat-novel)
             --faults k@s+n,...       scripted fault bursts: kind drop|
                                      freeze|nan|spike|truncate at frame s
                                      for n frames (e.g. nan@20+8)
             --fault-rate P           random burst start probability per
                                      frame (default 0 = off)
             --fault-seed S           fault schedule seed (default --seed)
             --fault-burst-len N      max random burst length (default 4)
             --deadline-ms N          per-frame scoring deadline; overruns
                                      degrade health (default off; leaves
                                      runs byte-reproducible)
             --alarm-log FILE         write the per-frame decision log as
                                      JSON (byte-identical across runs
                                      with the same seeds and schedule)
             --require-recovery       exit 1 unless health degraded during
                                      the run AND ended healthy
             --json                   emit the summary as JSON
             --obs-out FILE           write an observability report
  serve      run the multi-tenant stream server over seeded per-tenant
             simulated traffic: bounded admission queues, deadline-aware
             shedding, one coalesced scoring batch per round
             --detector FILE          (required)
             --backend ID             see classify
             --ensemble               see classify
             --tenants N              tenant count (default 4)
             --len N                  frames per tenant (default 60)
             --seed S                 master traffic seed (default 0)
             --hostile IDX            give tenant IDX a scripted fault
                                      storm (see --hostile-faults)
             --hostile-faults k@s+n,. fault bursts for the hostile tenant
                                      (default: nan + freeze storms
                                      scaled to --len)
             --capacity N             per-tenant queue capacity (default 6)
             --drain N                frames served per tenant per round
                                      (default 2)
             --max-wait N             rounds a frame may queue before it
                                      is shed (default 4)
             --window N               alarm window size (default 8)
             --min-novel N            flags that raise the alarm (default 5)
             --fallback treat-novel|hold-last|abstain (default treat-novel)
             --cost-ms N              virtual per-frame scoring cost; the
                                      deadline clock charges this instead
                                      of wall time (deterministic)
             --cost-jitter-ms N       seeded jitter on the virtual cost
             --deadline-ms N          per-frame scoring deadline; needs
                                      --cost-ms (keeps runs reproducible)
             --log-dir DIR            write one atomic per-tenant alarm
                                      log DIR/<tenant>.json (byte-identical
                                      across runs and thread counts)
             --require-recovery       exit 1 unless the --hostile tenant
                                      degraded AND ended healthy
             --json                   emit the summary as JSON
             --obs-out FILE           write an observability report
  evalgrid   train one detector per scenario domain and score the full
             train-domain x score-domain matrix (AUROC, threshold
             exceedance, mean SSIM per cell)
             --domains name=spec,...  scenario domains as modifier-stack
                                      specs, e.g. clear=clear,fog=fog@0.8,
                                      dusk=night@0.5+rain@0.3
                                      (default clear,fog,night)
             --quick                  smoke-test sizing (seconds; default
                                      is paper geometry, minutes)
             --train-len N            frames per training set (overrides
                                      the sizing preset)
             --test-len N             frames per held-out/score set
             --cnn-epochs N           steering-CNN epochs
             --ae-epochs N            autoencoder epochs
             --seed S                 (default 17)
             --backends id,id,...     score backends to train per domain
                                      (default: preset — vbp+ssim for
                                      --quick, all four otherwise;
                                      --pipeline ID is a deprecated alias)
             --ensemble               train all registered backends and
                                      report the fused verdict per cell
             --out FILE               write the grid as schema-versioned
                                      JSON (BENCH_evalgrid.json format)
             --json                   print the grid JSON to stdout
                                      instead of the table
             --obs-out FILE           write an observability report
  info       print a saved detector's configuration
             --detector FILE          (required)
  report     pretty-print an observability report written by --obs-out
             --file FILE              (required)
             --expect s1,s2,...       fail unless every named pipeline
                                      stage appears with positive time

  All pipeline commands also accept --threads N to fix the worker-pool
  size (overrides the SALIENCY_THREADS environment variable).

EXIT CODES:
  0 success · 1 runtime failure · 2 usage error
";

/// Flags that stand alone instead of consuming a value.
const BOOL_FLAGS: &[&str] = &["json", "require-recovery", "quick", "ensemble"];

/// CLI failure, split so `main` can map the class to an exit code.
enum CliError {
    /// The invocation itself was malformed (exit 2).
    Usage(String),
    /// The invocation was well-formed but the work failed (exit 1).
    Runtime(String),
}

type CliResult = Result<(), CliError>;

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime_err(msg: impl Into<String>) -> CliError {
    CliError::Runtime(msg.into())
}

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, CliError> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| usage_err(format!("expected --flag, got {:?}", raw[i])))?;
            if BOOL_FLAGS.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = raw
                .get(i + 1)
                .ok_or_else(|| usage_err(format!("flag --{key} is missing its value")))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Args { flags })
    }

    /// Rejects flags this command does not understand — a typo'd flag
    /// silently falling back to a default is worse than an error.
    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), CliError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(usage_err(format!(
                    "unknown flag --{key} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn optional(&self, key: &str) -> Option<String> {
        self.flags.get(key).cloned()
    }

    fn is_set(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    fn required(&self, key: &str) -> Result<String, CliError> {
        self.flags
            .get(key)
            .cloned()
            .ok_or_else(|| usage_err(format!("missing required flag --{key}")))
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("--{key} must be an integer, got {v:?}"))),
        }
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("--{key} must be an integer, got {v:?}"))),
        }
    }

    /// Applies `--threads N` to the process-global worker pool.
    fn apply_threads(&self) -> Result<(), CliError> {
        if let Some(v) = self.flags.get("threads") {
            let n: usize = v
                .parse()
                .map_err(|_| usage_err(format!("--threads must be an integer, got {v:?}")))?;
            if n == 0 {
                return Err(usage_err("--threads must be at least 1"));
            }
            set_thread_config(ThreadConfig::new(n));
        }
        Ok(())
    }
}

fn parse_world(s: &str) -> Result<World, CliError> {
    match s {
        "outdoor" => Ok(World::Outdoor),
        "indoor" => Ok(World::Indoor),
        other => Err(usage_err(format!(
            "unknown world {other:?} (outdoor|indoor)"
        ))),
    }
}

fn parse_weather(s: &str) -> Result<Weather, CliError> {
    match s {
        "clear" => Ok(Weather::Clear),
        "fog" => Ok(Weather::Fog),
        "rain" => Ok(Weather::Rain),
        other => Err(usage_err(format!(
            "unknown weather {other:?} (clear|fog|rain)"
        ))),
    }
}

fn parse_backend(s: &str) -> Result<BackendKind, CliError> {
    BackendKind::from_id(s).ok_or_else(|| {
        let known: Vec<&str> = BackendKind::all().iter().map(|k| k.id()).collect();
        usage_err(format!(
            "unknown backend {s:?} (known: {})",
            known.join("|")
        ))
    })
}

/// Parses a comma-separated backend list (`model-char,vbp+ssim`).
fn parse_backend_list(spec: &str) -> Result<Vec<BackendKind>, CliError> {
    let mut kinds = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        kinds.push(parse_backend(part)?);
    }
    if kinds.is_empty() {
        return Err(usage_err("--backends needs at least one backend id"));
    }
    Ok(kinds)
}

/// Picks the recorder for a command: a live [`RunRecorder`] when
/// `--obs-out` is present, the no-op otherwise. Recording never changes
/// results, only what gets written at the end.
fn recorder_for(args: &Args) -> (Option<RunRecorder>, Option<String>) {
    match args.optional("obs-out") {
        Some(path) => (Some(RunRecorder::new()), Some(path)),
        None => (None, None),
    }
}

/// Writes the observability report if `--obs-out` was requested.
fn flush_report(
    recorder: &Option<RunRecorder>,
    obs_out: &Option<String>,
    command: &str,
) -> Result<(), CliError> {
    if let (Some(recorder), Some(path)) = (recorder, obs_out) {
        let report = recorder.report(command);
        report
            .save(path)
            .map_err(|e| runtime_err(format!("cannot write report {path}: {e}")))?;
        eprintln!("wrote observability report to {path}");
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> CliResult {
    args.reject_unknown(&["world", "weather", "len", "seed", "out", "threads"])?;
    let world = parse_world(&args.get("world", "outdoor"))?;
    let weather = parse_weather(&args.get("weather", "clear"))?;
    let len = args.usize("len", 20)?;
    let seed = args.u64("seed", 0)?;
    let out = PathBuf::from(args.get("out", "frames"));
    std::fs::create_dir_all(&out)
        .map_err(|e| runtime_err(format!("cannot create {}: {e}", out.display())))?;

    let dataset = DatasetConfig::for_world(world)
        .with_len(len)
        .with_weather(weather)
        .generate(seed);
    let mut index = String::from("frame,angle\n");
    for (i, frame) in dataset.frames().iter().enumerate() {
        let name = format!("frame_{i:04}.pgm");
        vision::io::save_pgm(&frame.image, out.join(&name))
            .map_err(|e| runtime_err(format!("cannot write {name}: {e}")))?;
        index.push_str(&format!("{name},{:.6}\n", frame.angle));
    }
    std::fs::write(out.join("angles.csv"), index)
        .map_err(|e| runtime_err(format!("cannot write angles.csv: {e}")))?;
    println!(
        "wrote {len} {world} frames ({weather}) and angles.csv to {}",
        out.display()
    );
    Ok(())
}

fn cmd_train(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "world",
        "backend",
        "pipeline",
        "ensemble",
        "len",
        "seed",
        "cnn-epochs",
        "ae-epochs",
        "out",
        "obs-out",
        "threads",
    ])?;
    let world = parse_world(&args.get("world", "outdoor"))?;
    let backend_flag = args
        .optional("backend")
        .or_else(|| args.optional("pipeline"));
    if args.is_set("ensemble") && backend_flag.is_some() {
        return Err(usage_err(
            "--ensemble trains every registered backend; drop --backend",
        ));
    }
    let backend = parse_backend(&backend_flag.unwrap_or_else(|| "vbp+ssim".to_string()))?;
    let len = args.usize("len", 200)?;
    let seed = args.u64("seed", 0)?;
    let cnn_epochs = args.usize("cnn-epochs", 8)?;
    let ae_epochs = args.usize("ae-epochs", 60)?;
    let out = args.get("out", "detector.json");
    let (recorder, obs_out) = recorder_for(args);

    println!("generating {len} {world} training frames…");
    let dataset = DatasetConfig::for_world(world).with_len(len).generate(seed);
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };
    if args.is_set("ensemble") {
        println!(
            "training ensemble over every registered backend \
             (cnn {cnn_epochs} ep, ae {ae_epochs} ep)…"
        );
        let base = NoveltyDetectorBuilder::paper()
            .cnn_epochs(cnn_epochs)
            .ae_epochs(ae_epochs)
            .seed(seed);
        let ensemble =
            EnsembleDetector::train_recorded(&base, &BackendKind::all(), &dataset, dyn_recorder)
                .map_err(|e| runtime_err(format!("training failed: {e}")))?;
        ensemble
            .save(&out)
            .map_err(|e| runtime_err(format!("cannot save {out}: {e}")))?;
        println!(
            "saved {} to {out} (quorum {} of {})",
            ensemble.label(),
            ensemble.quorum(),
            ensemble.members().len()
        );
        return flush_report(&recorder, &obs_out, "train");
    }
    println!(
        "training {} backend (cnn {cnn_epochs} ep, ae {ae_epochs} ep)…",
        backend.id()
    );
    let builder = NoveltyDetectorBuilder::for_kind(backend)
        .cnn_epochs(cnn_epochs)
        .ae_epochs(ae_epochs)
        .seed(seed);
    let detector = builder
        .train_recorded(&dataset, dyn_recorder)
        .map_err(|e| runtime_err(format!("training failed: {e}")))?;
    detector
        .save(&out)
        .map_err(|e| runtime_err(format!("cannot save {out}: {e}")))?;
    println!(
        "saved detector to {out} (threshold {:.4}, {} training scores)",
        detector.threshold().value(),
        detector.training_scores().len()
    );
    flush_report(&recorder, &obs_out, "train")
}

fn load_image(path: &str) -> Result<Image, CliError> {
    vision::io::load_pgm(path).map_err(|e| runtime_err(format!("cannot read {path}: {e}")))
}

fn load_detector_file(args: &Args) -> Result<LoadedDetector, CliError> {
    load_any(args.required("detector")?)
        .map_err(|e| runtime_err(format!("cannot load detector: {e}")))
}

/// Resolves `--backend` / `--ensemble` against whatever the detector
/// file held: `--backend ID` selects one member of an ensemble (or
/// asserts a single file's backend), `--ensemble` requires a fused
/// ensemble file, and no flag uses the file as-is.
fn select_detector<'a>(
    loaded: &'a LoadedDetector,
    args: &Args,
) -> Result<&'a dyn Detector, CliError> {
    if args.is_set("backend") && args.is_set("ensemble") {
        return Err(usage_err("--backend and --ensemble are mutually exclusive"));
    }
    if let Some(id) = args.optional("backend") {
        let kind = parse_backend(&id)?;
        return match loaded {
            LoadedDetector::Single(d) => {
                if d.kind() == kind {
                    Ok(d as &dyn Detector)
                } else {
                    Err(runtime_err(format!(
                        "detector file holds backend {}, not {}",
                        d.kind().id(),
                        kind.id()
                    )))
                }
            }
            LoadedDetector::Ensemble(e) => e
                .members()
                .iter()
                .find(|m| m.kind() == kind)
                .map(|m| m as &dyn Detector)
                .ok_or_else(|| runtime_err(format!("{} has no {} member", e.label(), kind.id()))),
        };
    }
    if args.is_set("ensemble") && loaded.as_ensemble().is_none() {
        return Err(runtime_err(
            "--ensemble: the detector file holds a single backend, not an ensemble",
        ));
    }
    Ok(loaded.as_detector())
}

fn cmd_backends(args: &Args) -> CliResult {
    args.reject_unknown(&[])?;
    println!("{:<12} {:<12} description", "backend", "metric");
    for kind in BackendKind::all() {
        println!(
            "{:<12} {:<12} {}",
            kind.id(),
            kind.metric_name(),
            kind.describe()
        );
    }
    println!("\nensembles fuse every backend above with a majority vote over");
    println!("calibrated percentile ranks (train with: train --ensemble).");
    Ok(())
}

fn cmd_classify(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "detector", "image", "backend", "ensemble", "json", "threads",
    ])?;
    let loaded = load_detector_file(args)?;
    let detector = select_detector(&loaded, args)?;
    let image = load_image(&args.required("image")?)?;
    let verdict = detector
        .classify(&image)
        .map_err(|e| runtime_err(format!("classification failed: {e}")))?;
    if args.is_set("json") {
        let json = serde_json::to_string(&verdict)
            .map_err(|e| runtime_err(format!("cannot serialize verdict: {e}")))?;
        println!("{json}");
    } else {
        println!(
            "{{\"is_novel\": {}, \"score\": {:.6}, \"threshold\": {:.6}, \
             \"percentile_rank\": {:.2}, \"backend\": \"{}\", \"votes\": \"{}/{}\"}}",
            verdict.is_novel,
            verdict.score,
            verdict.threshold,
            verdict.percentile_rank,
            verdict.backend,
            verdict.novel_votes,
            verdict.total_votes
        );
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "detector",
        "backend",
        "ensemble",
        "target-world",
        "novel-world",
        "len",
        "seed",
        "json",
        "obs-out",
        "threads",
    ])?;
    let loaded = load_detector_file(args)?;
    let detector = select_detector(&loaded, args)?;
    let target_world = parse_world(&args.get("target-world", "outdoor"))?;
    let novel_world = parse_world(&args.get("novel-world", "indoor"))?;
    let len = args.usize("len", 50)?;
    let seed = args.u64("seed", 1)?;
    let (recorder, obs_out) = recorder_for(args);
    let images = |world: World, seed: u64| -> Vec<Image> {
        DatasetConfig::for_world(world)
            .with_len(len)
            .generate(seed)
            .frames()
            .iter()
            .map(|f| f.image.clone())
            .collect()
    };
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };
    let report = evaluate_recorded(
        detector,
        &images(target_world, seed),
        &images(novel_world, seed + 1),
        dyn_recorder,
    )
    .map_err(|e| runtime_err(format!("evaluation failed: {e}")))?;
    if args.is_set("json") {
        println!(
            "{{\"auroc\": {:.6}, \"novel_detection_rate\": {:.6}, \
             \"false_positive_rate\": {:.6}, \"threshold\": {:.6}, \
             \"target_images\": {}, \"novel_images\": {}}}",
            report.separation.auroc,
            report.novel_detection_rate,
            report.false_positive_rate,
            report.threshold,
            report.target_scores.len(),
            report.novel_scores.len()
        );
    } else {
        println!("{report}");
    }
    flush_report(&recorder, &obs_out, "eval")
}

/// Parses `--faults` specs like `nan@20+8,freeze@40` (burst length
/// defaults to 1).
fn parse_fault_bursts(spec: &str) -> Result<Vec<FaultBurst>, CliError> {
    let mut bursts = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (kind_s, rest) = part.split_once('@').ok_or_else(|| {
            usage_err(format!(
                "fault burst {part:?} must look like kind@start+len (e.g. nan@20+8)"
            ))
        })?;
        let kind = FaultKind::from_name(kind_s).ok_or_else(|| {
            usage_err(format!(
                "unknown fault kind {kind_s:?} (drop|freeze|nan|spike|truncate)"
            ))
        })?;
        let (start_s, len_s) = rest.split_once('+').unwrap_or((rest, "1"));
        let start: usize = start_s.parse().map_err(|_| {
            usage_err(format!(
                "fault burst start must be an integer, got {start_s:?}"
            ))
        })?;
        let len: usize = len_s.parse().map_err(|_| {
            usage_err(format!(
                "fault burst length must be an integer, got {len_s:?}"
            ))
        })?;
        if len == 0 {
            return Err(usage_err(format!("fault burst {part:?} has zero length")));
        }
        bursts.push(FaultBurst::new(kind, start, len));
    }
    if bursts.is_empty() {
        return Err(usage_err(
            "--faults needs at least one kind@start+len burst",
        ));
    }
    Ok(bursts)
}

fn cmd_stream(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "detector",
        "backend",
        "ensemble",
        "world",
        "len",
        "seed",
        "window",
        "min-novel",
        "fallback",
        "faults",
        "fault-rate",
        "fault-seed",
        "fault-burst-len",
        "deadline-ms",
        "alarm-log",
        "require-recovery",
        "json",
        "obs-out",
        "threads",
    ])?;
    let loaded = load_detector_file(args)?;
    let detector = select_detector(&loaded, args)?;
    let world = parse_world(&args.get("world", "outdoor"))?;
    let len = args.usize("len", 120)?;
    let seed = args.u64("seed", 0)?;
    let window = args.usize("window", 8)?;
    let min_novel = args.usize("min-novel", 5)?;
    let fallback_name = args.get("fallback", "treat-novel");
    let fallback = FallbackPolicy::from_name(&fallback_name).ok_or_else(|| {
        usage_err(format!(
            "unknown fallback policy {fallback_name:?} (treat-novel|hold-last|abstain)"
        ))
    })?;

    // Assemble the deterministic fault schedule.
    let mut fault_config = FaultConfig::new(args.u64("fault-seed", seed)?);
    if let Some(spec) = args.optional("faults") {
        for burst in parse_fault_bursts(&spec)? {
            fault_config = fault_config.with_burst(burst);
        }
    }
    let rate_s = args.get("fault-rate", "0");
    let rate: f32 = rate_s
        .parse()
        .map_err(|_| usage_err(format!("--fault-rate must be a number, got {rate_s:?}")))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(usage_err(format!(
            "--fault-rate must be in [0, 1], got {rate}"
        )));
    }
    let burst_len = args.usize("fault-burst-len", 4)?;
    if burst_len == 0 {
        return Err(usage_err("--fault-burst-len must be at least 1"));
    }
    if rate > 0.0 {
        fault_config = fault_config.with_random(rate, burst_len);
    }

    let mut config = StreamConfig::for_detector(detector)
        .with_fallback(fallback)
        .with_alarm_window(window, min_novel);
    let deadline_ms = args.u64("deadline-ms", 0)?;
    if deadline_ms > 0 {
        config = config.with_deadline(Duration::from_millis(deadline_ms));
    }
    let mut runtime = StreamRuntime::new(detector, config)
        .map_err(|e| usage_err(format!("invalid stream configuration: {e}")))?;

    let (recorder, obs_out) = recorder_for(args);
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };

    // Drive frames are rendered at the detector's input size so the gate
    // checks deployment geometry, whatever the detector was trained on.
    let (height, width) = detector.input_size();
    let drive = DriveConfig::new(world)
        .with_len(len)
        .with_size(height, width)
        .simulate(seed);
    let mut injector = FaultInjector::new(fault_config);

    let mut log = Vec::with_capacity(len);
    let mut scored = 0u64;
    let mut fallbacks: HashMap<&'static str, u64> = HashMap::new();
    let mut gate_rejections: HashMap<&'static str, u64> = HashMap::new();
    let mut alarm_raised_frames = 0u64;
    for (i, frame) in drive.frames().iter().enumerate() {
        let injected = injector.apply(i, &frame.image);
        let decision = runtime.process_recorded(injected.image.as_ref(), dyn_recorder);
        if decision.source == novelty::DecisionSource::Scored {
            scored += 1;
        } else {
            *fallbacks.entry(decision.source.name()).or_default() += 1;
        }
        if let Some(fault) = &decision.gate_fault {
            *gate_rejections.entry(fault.class()).or_default() += 1;
        }
        if decision.alarm == AlarmState::Raised {
            alarm_raised_frames += 1;
        }
        log.push(AlarmLogEntry::from_decision(
            &decision,
            injected.fault.map(|k| k.name()),
        ));
    }

    if let Some(path) = args.optional("alarm-log") {
        let json = serde_json::to_string(&log)
            .map_err(|e| runtime_err(format!("cannot serialize alarm log: {e}")))?;
        std::fs::write(&path, json)
            .map_err(|e| runtime_err(format!("cannot write alarm log {path}: {e}")))?;
        eprintln!("wrote alarm log to {path}");
    }

    let health = runtime.health();
    let final_state = health.state();
    let worst = health.worst_state();
    let transitions = health.transitions().len();
    let monitor = runtime.monitor();
    // Sort the breakdown maps so output ordering is stable.
    let sorted = |m: &HashMap<&'static str, u64>| -> Vec<(String, u64)> {
        let mut v: Vec<_> = m.iter().map(|(k, n)| (k.to_string(), *n)).collect();
        v.sort();
        v
    };
    let gate_sorted = sorted(&gate_rejections);
    let fallback_sorted = sorted(&fallbacks);
    let breakdown = |v: &[(String, u64)]| -> String {
        if v.is_empty() {
            "none".to_string()
        } else {
            v.iter()
                .map(|(k, n)| format!("{k} {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    };

    if args.is_set("json") {
        println!(
            "{{\"frames\": {}, \"scored\": {}, \"fallbacks\": {}, \
             \"gate_rejections\": {}, \"health_transitions\": {}, \
             \"worst_health\": \"{}\", \"final_health\": \"{}\", \
             \"alarm_raised_frames\": {}, \"lifetime_novel_rate\": {:.6}}}",
            runtime.frames_processed(),
            scored,
            fallback_sorted.iter().map(|(_, n)| n).sum::<u64>(),
            gate_sorted.iter().map(|(_, n)| n).sum::<u64>(),
            transitions,
            worst.name(),
            final_state.name(),
            alarm_raised_frames,
            monitor.lifetime_novel_rate()
        );
    } else {
        println!(
            "processed {} frames with policy {}: {} scored, {} fallback",
            runtime.frames_processed(),
            fallback.name(),
            scored,
            fallback_sorted.iter().map(|(_, n)| n).sum::<u64>()
        );
        println!("gate rejections:    {}", breakdown(&gate_sorted));
        println!("fallback decisions: {}", breakdown(&fallback_sorted));
        println!(
            "health:             {} transitions, worst {}, final {}",
            transitions,
            worst.name(),
            final_state.name()
        );
        println!(
            "alarm:              raised on {} frames, lifetime novel rate {:.1}%",
            alarm_raised_frames,
            monitor.lifetime_novel_rate() * 100.0
        );
    }
    flush_report(&recorder, &obs_out, "stream")?;

    if args.is_set("require-recovery") {
        if worst == HealthState::Healthy {
            return Err(runtime_err(
                "--require-recovery: health never degraded (no faults took effect)".to_string(),
            ));
        }
        if final_state != HealthState::Healthy {
            return Err(runtime_err(format!(
                "--require-recovery: stream ended {} (worst {}), expected healthy",
                final_state.name(),
                worst.name()
            )));
        }
        println!(
            "recovery check passed: degraded to {} and returned to healthy",
            worst.name()
        );
    }
    Ok(())
}

/// Per-tenant summary row of the `serve` command.
#[derive(Serialize)]
struct ServeTenantSummary {
    tenant: String,
    offered: u64,
    decisions: u64,
    scored: u64,
    shed_queue_full: u64,
    shed_deadline: u64,
    gate_rejected: u64,
    score_errors: u64,
    alarm_raised_frames: u64,
    worst_health: String,
    final_health: String,
}

fn cmd_serve(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "detector",
        "backend",
        "ensemble",
        "tenants",
        "len",
        "seed",
        "hostile",
        "hostile-faults",
        "capacity",
        "drain",
        "max-wait",
        "window",
        "min-novel",
        "fallback",
        "cost-ms",
        "cost-jitter-ms",
        "deadline-ms",
        "log-dir",
        "require-recovery",
        "json",
        "obs-out",
        "threads",
    ])?;
    let loaded = load_detector_file(args)?;
    let detector = select_detector(&loaded, args)?;
    let tenants = args.usize("tenants", 4)?;
    if tenants == 0 {
        return Err(usage_err("--tenants must be at least 1"));
    }
    let len = args.usize("len", 60)?;
    if len == 0 {
        return Err(usage_err("--len must be at least 1"));
    }
    let seed = args.u64("seed", 0)?;
    let hostile = match args.optional("hostile") {
        Some(s) => {
            let idx: usize = s
                .parse()
                .map_err(|_| usage_err(format!("--hostile must be a tenant index, got {s:?}")))?;
            if idx >= tenants {
                return Err(usage_err(format!(
                    "--hostile {idx} is out of range for {tenants} tenants"
                )));
            }
            Some(idx)
        }
        None => None,
    };
    let window = args.usize("window", 8)?;
    let min_novel = args.usize("min-novel", 5)?;
    let fallback_name = args.get("fallback", "treat-novel");
    let fallback = FallbackPolicy::from_name(&fallback_name).ok_or_else(|| {
        usage_err(format!(
            "unknown fallback policy {fallback_name:?} (treat-novel|hold-last|abstain)"
        ))
    })?;
    let queue = QueueConfig {
        capacity: args.usize("capacity", 6)?,
        drain: args.usize("drain", 2)?,
        max_wait_rounds: args.u64("max-wait", 4)?,
    };
    let cost_ms = args.u64("cost-ms", 0)?;
    let cost_jitter_ms = args.u64("cost-jitter-ms", 0)?;
    let deadline_ms = args.u64("deadline-ms", 0)?;
    if deadline_ms > 0 && cost_ms == 0 {
        return Err(usage_err(
            "serve deadlines use the virtual cost clock; set --cost-ms as well \
             (wall-clock deadlines would make runs irreproducible)",
        ));
    }

    // Seeded per-tenant traffic: each tenant's drive, scenario stack and
    // fault schedule derive from (master seed, tenant index) only, so the
    // arrival streams are independent of each other and of scheduling.
    let (height, width) = detector.input_size();
    let mut configs = standard_mix(tenants, len, None);
    for config in configs.iter_mut() {
        config.height = height;
        config.width = width;
    }
    if let Some(idx) = hostile {
        let bursts = match args.optional("hostile-faults") {
            Some(spec) => parse_fault_bursts(&spec)?,
            None => {
                // Default storm: a NaN burst then a freeze burst, scaled
                // to the stream so the tenant can degrade AND recover.
                let nan_len = (len / 8).max(3);
                let freeze_len = (len / 10).max(2);
                vec![
                    FaultBurst::new(FaultKind::NanBurst, len / 6, nan_len),
                    FaultBurst::new(FaultKind::Freeze, len / 3, freeze_len),
                ]
            }
        };
        for burst in bursts {
            configs[idx].fault_bursts.push(burst);
        }
        // Recovery needs headroom: serve the hostile tenant at a cadence
        // its drain budget can absorb.
        configs[idx].arrivals_per_round = 1;
    } else if args.is_set("hostile-faults") {
        return Err(usage_err("--hostile-faults needs --hostile IDX"));
    }
    let mut traffic = Vec::with_capacity(tenants);
    for (i, config) in configs.iter().enumerate() {
        traffic.push(
            config
                .generate(seed, i)
                .map_err(|e| runtime_err(format!("cannot generate traffic: {e}")))?,
        );
    }

    // One stream runtime per tenant behind a bounded queue; the virtual
    // cost clock (when enabled) keeps deadline accounting deterministic.
    let mut specs = Vec::with_capacity(tenants);
    for (i, t) in traffic.iter().enumerate() {
        let mut stream = StreamConfig::for_detector(detector)
            .with_fallback(fallback)
            .with_alarm_window(window, min_novel);
        if deadline_ms > 0 {
            stream = stream.with_deadline(Duration::from_millis(deadline_ms));
        }
        if cost_ms > 0 {
            stream = stream.with_virtual_cost(CostModel {
                base: Duration::from_millis(cost_ms),
                jitter: Duration::from_millis(cost_jitter_ms),
                seed: seed.wrapping_add(i as u64),
            });
        }
        specs.push(TenantSpec::new(t.name(), stream).with_queue(queue));
    }
    let mut server = StreamServer::new(detector, specs)
        .map_err(|e| usage_err(format!("invalid serve configuration: {e}")))?;

    let (recorder, obs_out) = recorder_for(args);
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };

    // Round loop: offer each tenant's arrivals, then run one scheduling
    // round; after arrivals are exhausted, keep stepping until every
    // queued frame has resolved into a decision.
    let mut logs: Vec<AlarmLog> = traffic.iter().map(|t| AlarmLog::new(t.name())).collect();
    while traffic.iter().any(|t| t.remaining() > 0) || server.pending() > 0 {
        for (t, stream) in traffic.iter_mut().enumerate() {
            let arrivals: Vec<InjectedFrame> = stream.next_round().to_vec();
            for injected in arrivals {
                server
                    .offer(t, injected.image)
                    .map_err(|e| runtime_err(format!("offer failed: {e}")))?;
            }
        }
        for (t, decision) in server.step_recorded(dyn_recorder) {
            let fault = traffic
                .get(t)
                .and_then(|s| s.fault_at(decision.frame as usize));
            if let Some(log) = logs.get_mut(t) {
                log.record(&decision, fault.map(|k| k.name()));
            }
        }
    }

    if let Some(dir) = args.optional("log-dir") {
        std::fs::create_dir_all(&dir)
            .map_err(|e| runtime_err(format!("cannot create {dir}: {e}")))?;
        for log in &logs {
            let path = PathBuf::from(&dir).join(format!("{}.json", log.tenant));
            log.save(&path)
                .map_err(|e| runtime_err(format!("cannot write alarm log: {e}")))?;
        }
        eprintln!("wrote {} per-tenant alarm logs to {dir}/", logs.len());
    }

    let mut summaries = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let (stats, runtime) = match (server.stats(t), server.runtime(t)) {
            (Some(s), Some(r)) => (*s, r),
            _ => return Err(runtime_err(format!("tenant {t} vanished from the server"))),
        };
        summaries.push(ServeTenantSummary {
            tenant: server.tenant_name(t).unwrap_or("?").to_string(),
            offered: stats.offered,
            decisions: stats.decisions,
            scored: stats.scored,
            shed_queue_full: stats.shed_queue_full,
            shed_deadline: stats.shed_deadline,
            gate_rejected: stats.gate_rejected,
            score_errors: stats.score_errors,
            alarm_raised_frames: stats.alarm_raised_frames,
            worst_health: runtime.health().worst_state().name().to_string(),
            final_health: runtime.health().state().name().to_string(),
        });
    }
    // Jain's fairness index over per-tenant scored counts: 1.0 is
    // perfectly even service, 1/n is one tenant monopolizing.
    let scored_sum: f64 = summaries.iter().map(|s| s.scored as f64).sum();
    let scored_sq: f64 = summaries.iter().map(|s| (s.scored as f64).powi(2)).sum();
    let fairness = if scored_sq > 0.0 {
        (scored_sum * scored_sum) / (tenants as f64 * scored_sq)
    } else {
        1.0
    };

    // Captured before the summaries move into the JSON body.
    let recovery = hostile.and_then(|idx| {
        summaries.get(idx).map(|s| {
            (
                s.tenant.clone(),
                s.worst_health.clone(),
                s.final_health.clone(),
            )
        })
    });

    if args.is_set("json") {
        #[derive(Serialize)]
        struct ServeSummary {
            tenants: usize,
            rounds: u64,
            fairness_jain: f64,
            per_tenant: Vec<ServeTenantSummary>,
        }
        let json = serde_json::to_string(&ServeSummary {
            tenants: summaries.len(),
            rounds: server.round(),
            fairness_jain: fairness,
            per_tenant: summaries,
        })
        .map_err(|e| runtime_err(format!("cannot serialize summary: {e}")))?;
        println!("{json}");
    } else {
        println!(
            "served {} tenants for {} rounds (fairness {:.3})",
            tenants,
            server.round(),
            fairness
        );
        println!(
            "{:<12} {:>7} {:>6} {:>5} {:>5} {:>4} {:>4} {:>5}  {:<8} final",
            "tenant", "offered", "scored", "shedQ", "shedD", "gate", "err", "alarm", "worst"
        );
        for s in &summaries {
            println!(
                "{:<12} {:>7} {:>6} {:>5} {:>5} {:>4} {:>4} {:>5}  {:<8} {}",
                s.tenant,
                s.offered,
                s.scored,
                s.shed_queue_full,
                s.shed_deadline,
                s.gate_rejected,
                s.score_errors,
                s.alarm_raised_frames,
                s.worst_health,
                s.final_health
            );
        }
    }
    flush_report(&recorder, &obs_out, "serve")?;

    if args.is_set("require-recovery") {
        let Some((tenant, worst, fin)) = recovery else {
            return Err(usage_err("--require-recovery needs --hostile IDX"));
        };
        if worst == HealthState::Healthy.name() {
            return Err(runtime_err(format!(
                "--require-recovery: tenant {tenant} never degraded (no faults took effect)"
            )));
        }
        if fin != HealthState::Healthy.name() {
            return Err(runtime_err(format!(
                "--require-recovery: tenant {tenant} ended {fin} (worst {worst}), \
                 expected healthy"
            )));
        }
        println!("recovery check passed: {tenant} degraded to {worst} and returned to healthy");
    }
    Ok(())
}

/// Parses `--domains clear=clear,fog=fog@0.8,...` into grid domains.
fn parse_grid_domains(spec: &str) -> Result<Vec<GridDomain>, CliError> {
    let mut domains = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, stack) = part.split_once('=').ok_or_else(|| {
            usage_err(format!(
                "domain {part:?} must look like name=spec (e.g. fog=fog@0.8)"
            ))
        })?;
        domains.push(GridDomain::new(name, stack));
    }
    if domains.is_empty() {
        return Err(usage_err("--domains needs at least one name=spec entry"));
    }
    Ok(domains)
}

fn cmd_evalgrid(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "domains",
        "quick",
        "train-len",
        "test-len",
        "cnn-epochs",
        "ae-epochs",
        "seed",
        "backends",
        "pipeline",
        "ensemble",
        "out",
        "json",
        "obs-out",
        "threads",
    ])?;
    let seed = args.u64("seed", 17)?;
    let mut cfg = if args.is_set("quick") {
        GridConfig::quick(seed)
    } else {
        GridConfig::full(seed)
    };
    cfg.train_len = args.usize("train-len", cfg.train_len)?;
    cfg.test_len = args.usize("test-len", cfg.test_len)?;
    cfg.cnn_epochs = args.usize("cnn-epochs", cfg.cnn_epochs)?;
    cfg.ae_epochs = args.usize("ae-epochs", cfg.ae_epochs)?;
    if args.is_set("ensemble") {
        cfg = cfg.with_ensemble();
    }
    // Explicit backend lists override the preset (and --ensemble's
    // all-backends default); --pipeline remains as a single-backend
    // alias for old scripts.
    let backend_spec = args
        .optional("backends")
        .or_else(|| args.optional("pipeline"));
    if let Some(spec) = backend_spec {
        cfg.backends = parse_backend_list(&spec)?;
    }
    let domains = match args.optional("domains") {
        Some(spec) => parse_grid_domains(&spec)?,
        None => vec![
            GridDomain::new("clear", "clear"),
            GridDomain::new("fog", "fog@0.8"),
            GridDomain::new("night", "night@0.7"),
        ],
    };

    let (recorder, obs_out) = recorder_for(args);
    let dyn_recorder: &dyn Recorder = match &recorder {
        Some(r) => r,
        None => obs::noop(),
    };
    eprintln!(
        "evalgrid: {} domains, {} train / {} test frames, {}x{}, seed {seed}",
        domains.len(),
        cfg.train_len,
        cfg.test_len,
        cfg.height,
        cfg.width
    );
    let report = run_evalgrid(&domains, &cfg, dyn_recorder)
        .map_err(|e| runtime_err(format!("evalgrid failed: {e}")))?;

    let json = report
        .to_json()
        .map_err(|e| runtime_err(format!("cannot serialize grid: {e}")))?;
    if args.is_set("json") {
        println!("{json}");
    } else {
        print!("{}", report.render_table());
    }
    if let Some(path) = args.optional("out") {
        std::fs::write(&path, format!("{json}\n"))
            .map_err(|e| runtime_err(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote grid report to {path}");
    }
    flush_report(&recorder, &obs_out, "evalgrid")
}

fn print_detector_info(detector: &NoveltyDetector, indent: &str) {
    println!("{indent}backend:       {}", detector.kind().id());
    println!(
        "{indent}preprocessing: {}",
        detector
            .preprocessing()
            .map_or("model activations/gradients", |p| p.name())
    );
    println!("{indent}objective:     {}", detector.metric_name());
    let (height, width) = detector.input_size();
    println!("{indent}input size:    {height}x{width}");
    println!(
        "{indent}threshold:     {:.4} ({:?})",
        detector.threshold().value(),
        detector.threshold().direction()
    );
    println!(
        "{indent}training set:  {} calibration scores",
        detector.training_scores().len()
    );
    if let Some(cnn) = detector.steering_network() {
        println!(
            "{indent}steering CNN:  {} layers, {} parameters",
            cnn.layer_count(),
            cnn.param_count()
        );
    } else {
        println!("{indent}steering CNN:  none (raw pipeline)");
    }
    match detector.classifier() {
        Some(classifier) => println!(
            "{indent}autoencoder:   {} layers, {} parameters",
            classifier.network().layer_count(),
            classifier.network().param_count()
        ),
        None => println!(
            "{indent}profile:       {} per-layer statistics",
            detector.backend().stat_profile().map_or(0, |p| p.len())
        ),
    }
}

fn cmd_info(args: &Args) -> CliResult {
    args.reject_unknown(&["detector"])?;
    match load_detector_file(args)? {
        LoadedDetector::Single(detector) => print_detector_info(&detector, ""),
        LoadedDetector::Ensemble(ensemble) => {
            println!("ensemble:      {}", ensemble.label());
            println!(
                "quorum:        {} of {} member votes",
                ensemble.quorum(),
                ensemble.members().len()
            );
            for member in ensemble.members() {
                println!("member {}:", member.kind().id());
                print_detector_info(member, "  ");
            }
        }
    }
    Ok(())
}

fn cmd_report(args: &Args) -> CliResult {
    args.reject_unknown(&["file", "expect"])?;
    let file = args.required("file")?;
    let report =
        RunReport::load(&file).map_err(|e| runtime_err(format!("cannot load {file}: {e}")))?;
    print!("{report}");
    if let Some(expected) = args.optional("expect") {
        let names: Vec<&str> = expected
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if names.is_empty() {
            return Err(usage_err("--expect needs a comma-separated stage list"));
        }
        let missing = report.missing_stages(&names);
        if !missing.is_empty() {
            return Err(runtime_err(format!(
                "report is missing expected stages (or they have zero time): {}",
                missing.join(", ")
            )));
        }
        println!("all expected stages present: {}", names.join(", "));
    }
    Ok(())
}

fn run() -> CliResult {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    if command == "--help" || command == "help" {
        print!("{USAGE}");
        return Ok(());
    }
    let args = Args::parse(&argv[1..])?;
    args.apply_threads()?;
    match command.as_str() {
        "generate" => cmd_generate(&args),
        "backends" => cmd_backends(&args),
        "train" => cmd_train(&args),
        "classify" => cmd_classify(&args),
        "eval" => cmd_eval(&args),
        "stream" => cmd_stream(&args),
        "serve" => cmd_serve(&args),
        "evalgrid" => cmd_evalgrid(&args),
        "info" => cmd_info(&args),
        "report" => cmd_report(&args),
        other => Err(usage_err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
