use ndtensor::Tensor;

use crate::layer::{Layer, ParamGrad};
use crate::{NeuralError, Result};

/// A sequential feed-forward network.
///
/// Layers execute in insertion order. The network supports three forward
/// modes: inference ([`Network::forward`]), training with caches
/// ([`Network::forward_train`]), and activation collection
/// ([`Network::forward_collect`]) used by the saliency methods, which need
/// every intermediate feature map.
///
/// # Example
///
/// ```
/// use neural::{layer::{Dense, Tanh}, Network};
/// use ndtensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), neural::NeuralError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Network::new()
///     .with(Dense::new(2, 4, &mut rng)?)
///     .with(Tanh::new())
///     .with(Dense::new(4, 1, &mut rng)?);
/// assert_eq!(net.layer_count(), 3);
/// assert_eq!(net.forward(&Tensor::zeros([3, 2]))?.shape().dims(), &[3, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network { layers: Vec::new() }
    }

    /// Appends a layer (consuming builder style).
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer (used by deserialization).
    pub fn with_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn require_nonempty(&self, op: &'static str) -> Result<()> {
        if self.layers.is_empty() {
            return Err(NeuralError::invalid(op, "network has no layers"));
        }
        Ok(())
    }

    /// Inference forward pass.
    ///
    /// # Errors
    ///
    /// Fails when the network is empty or any layer rejects its input.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let mut layers = self.layers.iter();
        let first = layers
            .next()
            .ok_or_else(|| NeuralError::invalid("Network::forward", "network has no layers"))?;
        let mut x = first.forward(input)?;
        for layer in layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Batch-parallel inference forward pass.
    ///
    /// Splits the leading (batch) dimension into contiguous chunks and
    /// runs each chunk through the layer stack on the work pool configured
    /// in [`ndtensor::par`]. Every layer treats batch samples
    /// independently, so the concatenated result is bit-identical to
    /// [`Network::forward`] on the full batch for any thread count
    /// (enforced by `tests/parallel_parity.rs` at the workspace root).
    ///
    /// # Errors
    ///
    /// Fails when the network is empty, the input has no batch dimension,
    /// or any layer rejects its input.
    pub fn forward_batch(&self, input: &Tensor) -> Result<Tensor> {
        self.require_nonempty("Network::forward_batch")?;
        let dims = input.shape().dims();
        let n = *dims.first().ok_or_else(|| {
            NeuralError::invalid(
                "Network::forward_batch",
                "input must have a batch dimension",
            )
        })?;
        if n <= 1 {
            return self.forward(input);
        }
        let sample_dims = dims[1..].to_vec(); // sncheck:allow(hot-path-transitive-alloc): rank-length shape header, copied once per batch call
        let sample_len = input.len() / n;
        let chunks = ndtensor::thread_config().threads().clamp(1, n);
        let per = n.div_ceil(chunks);
        let ranges: Vec<(usize, usize)> = (0..chunks)
            .map(|i| (i * per, ((i + 1) * per).min(n)))
            .filter(|(start, end)| start < end)
            .collect();
        // Work estimate: parameters touched once per sample.
        let work = self.param_count().saturating_mul(n);
        let outputs = ndtensor::par::try_parallel_map(ranges.len(), work, |i| {
            let (start, end) = ranges[i];
            let mut shape = vec![end - start]; // sncheck:allow(hot-path-transitive-alloc): rank-length chunk shape, one per worker chunk (not per sample)
            shape.extend_from_slice(&sample_dims);
            let chunk = Tensor::from_slice(
                shape,
                &input.as_slice()[start * sample_len..end * sample_len],
            )?;
            self.forward(&chunk)
        })?;
        let mut out_sample_dims: Option<Vec<usize>> = None;
        let total: usize = outputs.iter().map(|o| o.len()).sum();
        let mut data = ndtensor::scratch::take(total);
        for (output, &(start, end)) in outputs.iter().zip(&ranges) {
            let odims = output.shape().dims();
            if odims.first() != Some(&(end - start)) {
                return Err(NeuralError::invalid(
                    "Network::forward_batch",
                    "layer stack did not preserve the batch dimension",
                ));
            }
            match &out_sample_dims {
                None => out_sample_dims = Some(odims[1..].to_vec()), // sncheck:allow(hot-path-transitive-alloc): rank-length shape header, captured once per batch call
                Some(expect) if expect.as_slice() == &odims[1..] => {}
                Some(_) => {
                    return Err(NeuralError::invalid(
                        "Network::forward_batch",
                        "inconsistent per-sample output shapes across chunks",
                    ))
                }
            }
            data.extend_from_slice(output.as_slice());
        }
        let mut out_shape = vec![n]; // sncheck:allow(hot-path-transitive-alloc): rank-length output shape, one per batch call
        out_shape.extend(out_sample_dims.unwrap_or_default());
        Ok(Tensor::from_vec(out_shape, data)?)
    }

    /// Inference forward pass that returns the activation *after every
    /// layer* (index 0 = output of the first layer). Saliency methods use
    /// this to reach the conv feature maps.
    ///
    /// # Errors
    ///
    /// Fails when the network is empty or any layer rejects its input.
    pub fn forward_collect(&self, input: &Tensor) -> Result<Vec<Tensor>> {
        let mut acts = Vec::with_capacity(self.layers.len()); // sncheck:allow(hot-path-transitive-alloc): per-layer activation list is this API's return value; callers on the hot path reuse forward_collect_into instead
        self.forward_collect_into(input, &mut acts)?;
        Ok(acts)
    }

    /// Like [`Network::forward_collect`], but reuses `acts` (cleared
    /// first), so a warmed caller performs no per-call allocation: the
    /// vector keeps its capacity and every activation tensor draws its
    /// storage from the [`ndtensor::scratch`] pool.
    ///
    /// # Errors
    ///
    /// Fails when the network is empty or any layer rejects its input.
    pub fn forward_collect_into(&self, input: &Tensor, acts: &mut Vec<Tensor>) -> Result<()> {
        self.require_nonempty("Network::forward_collect")?;
        acts.clear();
        for layer in &self.layers {
            let x = match acts.last() {
                Some(prev) => layer.forward(prev)?,
                None => layer.forward(input)?,
            };
            acts.push(x);
        }
        Ok(())
    }

    /// Training forward pass (caches per-layer state for
    /// [`Network::backward`]).
    ///
    /// # Errors
    ///
    /// Fails when the network is empty or any layer rejects its input.
    pub fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut layers = self.layers.iter_mut();
        let first = layers.next().ok_or_else(|| {
            NeuralError::invalid("Network::forward_train", "network has no layers")
        })?;
        let mut x = first.forward_train(input)?;
        for layer in layers {
            x = layer.forward_train(&x)?;
        }
        Ok(x)
    }

    /// Backpropagates `∂L/∂output`, accumulating parameter gradients, and
    /// returns `∂L/∂input`.
    ///
    /// # Errors
    ///
    /// Fails when a layer is missing its forward cache (i.e.
    /// [`Network::forward_train`] was not called immediately before).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut layers = self.layers.iter_mut().rev();
        let first = layers
            .next()
            .ok_or_else(|| NeuralError::invalid("Network::backward", "network has no layers"))?;
        let mut g = first.backward(grad_output)?;
        for layer in layers {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// All parameters paired with their gradients, across layers.
    pub fn params_and_grads(&mut self) -> Vec<ParamGrad<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// A one-line-per-layer structural summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, layer) in self.layers.iter().enumerate() {
            out.push_str(&format!(
                "{i:>3}: {:<10} params={}\n",
                layer.kind().name(),
                layer.param_count()
            ));
        }
        out.push_str(&format!("total params: {}", self.param_count()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, ReLU, Sigmoid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new()
            .with(Dense::new(3, 5, &mut rng).unwrap())
            .with(ReLU::new())
            .with(Dense::new(5, 2, &mut rng).unwrap())
            .with(Sigmoid::new())
    }

    #[test]
    fn empty_network_errors() {
        let net = Network::new();
        assert!(net.forward(&Tensor::zeros([1, 1])).is_err());
        let mut net = Network::new();
        assert!(net.forward_train(&Tensor::zeros([1, 1])).is_err());
        assert!(net.backward(&Tensor::zeros([1, 1])).is_err());
    }

    #[test]
    fn forward_shapes_flow_through() {
        let net = small_net(1);
        let y = net.forward(&Tensor::zeros([7, 3])).unwrap();
        assert_eq!(y.shape().dims(), &[7, 2]);
        // Sigmoid output in (0, 1).
        assert!(y.as_slice().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut net = small_net(2);
        let x = Tensor::from_fn([4, 3], |i| (i[0] + i[1]) as f32 * 0.1);
        let a = net.forward(&x).unwrap();
        let b = net.forward_train(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn forward_batch_matches_forward_bitwise() {
        let net = small_net(9);
        let x = Tensor::from_fn([13, 3], |i| ((i[0] * 3 + i[1]) as f32).sin());
        let serial = net.forward(&x).unwrap();
        for threads in [1, 2, 4] {
            ndtensor::set_thread_config(ndtensor::ThreadConfig::new(threads));
            let batched = net.forward_batch(&x).unwrap();
            assert_eq!(serial, batched, "threads={threads}");
        }
        ndtensor::set_thread_config(ndtensor::ThreadConfig::from_env());
    }

    #[test]
    fn forward_batch_handles_single_sample_and_empty_net() {
        let net = small_net(10);
        let x = Tensor::from_fn([1, 3], |i| i[1] as f32);
        assert_eq!(net.forward(&x).unwrap(), net.forward_batch(&x).unwrap());
        assert!(Network::new().forward_batch(&x).is_err());
    }

    #[test]
    fn forward_collect_returns_all_activations() {
        let net = small_net(3);
        let acts = net.forward_collect(&Tensor::zeros([2, 3])).unwrap();
        assert_eq!(acts.len(), 4);
        assert_eq!(acts[0].shape().dims(), &[2, 5]);
        assert_eq!(acts[3].shape().dims(), &[2, 2]);
        // Last activation equals forward output.
        assert_eq!(acts[3], net.forward(&Tensor::zeros([2, 3])).unwrap());
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut net = small_net(4);
        let x = Tensor::from_fn([2, 3], |i| (i[1] as f32 - 1.0) * 0.5);
        let y = net.forward_train(&x).unwrap();
        let gin = net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(gin.shape(), x.shape());

        // Finite-difference spot check.
        let eps = 1e-3f32;
        for probe in [0usize, 3, 5] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let numeric =
                (net.forward(&xp).unwrap().sum() - net.forward(&xm).unwrap().sum()) / (2.0 * eps);
            assert!(
                (numeric - gin.as_slice()[probe]).abs() < 1e-2,
                "input grad {probe}"
            );
        }
    }

    #[test]
    fn params_and_grads_cover_all_layers() {
        let mut net = small_net(5);
        assert_eq!(net.params_and_grads().len(), 4); // two Dense layers × (W, b)
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn zero_grads_resets_accumulation() {
        let mut net = small_net(6);
        let x = Tensor::ones([1, 3]);
        let y = net.forward_train(&x).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let any_nonzero = net
            .params_and_grads()
            .iter()
            .any(|pg| pg.grad.as_slice().iter().any(|&v| v != 0.0));
        assert!(any_nonzero);
        net.zero_grads();
        let all_zero = net
            .params_and_grads()
            .iter()
            .all(|pg| pg.grad.as_slice().iter().all(|&v| v == 0.0));
        assert!(all_zero);
    }

    #[test]
    fn summary_mentions_layers() {
        let net = small_net(7);
        let s = net.summary();
        assert!(s.contains("Dense"));
        assert!(s.contains("ReLU"));
        assert!(s.contains("total params"));
    }
}
