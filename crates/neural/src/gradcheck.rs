//! Finite-difference gradient checking.
//!
//! Used throughout the test suites to validate every analytic backward
//! pass against a central-difference approximation. Exposed publicly so
//! downstream crates (and users extending the layer set) can verify their
//! own derivatives.

use ndtensor::Tensor;

use crate::loss::Loss;
use crate::{Network, NeuralError, Result};

/// Central-difference gradient of a scalar function `f` at `at`.
///
/// # Errors
///
/// Propagates errors from `f` and rejects non-positive `eps`.
pub fn numeric_gradient(
    mut f: impl FnMut(&Tensor) -> Result<f32>,
    at: &Tensor,
    eps: f32,
) -> Result<Tensor> {
    if !eps.is_finite() || eps <= 0.0 {
        return Err(NeuralError::invalid(
            "numeric_gradient",
            format!("eps must be positive and finite, got {eps}"),
        ));
    }
    let mut grad = Tensor::zeros(at.shape().clone());
    let mut probe = at.clone();
    for i in 0..at.len() {
        let orig = probe.as_slice()[i];
        probe.as_mut_slice()[i] = orig + eps;
        let plus = f(&probe)?;
        probe.as_mut_slice()[i] = orig - eps;
        let minus = f(&probe)?;
        probe.as_mut_slice()[i] = orig;
        grad.as_mut_slice()[i] = (plus - minus) / (2.0 * eps);
    }
    Ok(grad)
}

/// Summary of one gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric entries.
    pub max_abs_diff: f32,
    /// Maximum relative difference (`|a − n| / (1 + |n|)`).
    pub max_rel_diff: f32,
}

impl GradCheckReport {
    /// `true` when both difference measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_diff < tol && self.max_rel_diff < tol
    }
}

fn compare(analytic: &Tensor, numeric: &Tensor) -> GradCheckReport {
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (&a, &n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        let abs = (a - n).abs();
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(abs / (1.0 + n.abs()));
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
    }
}

/// Checks a network's *input* gradient (`∂L/∂x` from backprop) against
/// finite differences of `loss(net(x), target)`.
///
/// # Errors
///
/// Propagates forward/backward and loss errors.
pub fn check_input_gradient(
    network: &mut Network,
    loss: &dyn Loss,
    input: &Tensor,
    target: &Tensor,
    eps: f32,
) -> Result<GradCheckReport> {
    let pred = network.forward_train(input)?;
    let g = loss.grad(&pred, target)?;
    network.zero_grads();
    let analytic = network.backward(&g)?;
    let numeric = numeric_gradient(
        |x| {
            let p = network.forward(x)?;
            loss.loss(&p, target)
        },
        input,
        eps,
    )?;
    Ok(compare(&analytic, &numeric))
}

/// Checks every *parameter* gradient of the network against finite
/// differences of `loss(net(x), target)`.
///
/// # Errors
///
/// Propagates forward/backward and loss errors.
pub fn check_parameter_gradients(
    network: &mut Network,
    loss: &dyn Loss,
    input: &Tensor,
    target: &Tensor,
    eps: f32,
) -> Result<GradCheckReport> {
    let pred = network.forward_train(input)?;
    let g = loss.grad(&pred, target)?;
    network.zero_grads();
    network.backward(&g)?;
    let analytic: Vec<Tensor> = network
        .params_and_grads()
        .iter()
        .map(|pg| pg.grad.clone())
        .collect();

    let mut worst = GradCheckReport {
        max_abs_diff: 0.0,
        max_rel_diff: 0.0,
    };
    let param_count = analytic.len();
    for pi in 0..param_count {
        let shape = {
            let pgs = network.params_and_grads();
            pgs[pi].param.shape().clone()
        };
        let mut numeric = Tensor::zeros(shape);
        for i in 0..numeric.len() {
            let eval = |net: &mut Network, delta: f32| -> Result<f32> {
                {
                    let mut pgs = net.params_and_grads();
                    pgs[pi].param.as_mut_slice()[i] += delta;
                }
                let p = net.forward(input)?;
                let l = loss.loss(&p, target)?;
                {
                    let mut pgs = net.params_and_grads();
                    pgs[pi].param.as_mut_slice()[i] -= delta;
                }
                Ok(l)
            };
            let plus = eval(network, eps)?;
            let minus = eval(network, -eps)?;
            numeric.as_mut_slice()[i] = (plus - minus) / (2.0 * eps);
        }
        let report = compare(&analytic[pi], &numeric);
        worst.max_abs_diff = worst.max_abs_diff.max(report.max_abs_diff);
        worst.max_rel_diff = worst.max_rel_diff.max(report.max_rel_diff);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, Dense, Flatten, ReLU, Sigmoid, Tanh};
    use crate::loss::{HuberLoss, MseLoss};
    use ndtensor::Conv2dSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn numeric_gradient_of_quadratic_is_linear() {
        let at = Tensor::from_vec([3], vec![1.0, -2.0, 0.5]).unwrap();
        // f(x) = ½‖x‖² → ∇f = x.
        let g = numeric_gradient(
            |x| Ok(0.5 * x.dot(x).map_err(NeuralError::from)?),
            &at,
            1e-3,
        )
        .unwrap();
        for (a, b) in g.as_slice().iter().zip(at.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
        assert!(numeric_gradient(|_| Ok(0.0), &at, 0.0).is_err());
    }

    #[test]
    fn mlp_gradients_pass_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Network::new()
            .with(Dense::new(4, 6, &mut rng).unwrap())
            .with(Tanh::new())
            .with(Dense::new(6, 3, &mut rng).unwrap())
            .with(Sigmoid::new());
        let mut x = Tensor::zeros([2, 4]);
        ndtensor::fill_uniform(&mut x, &mut rng, -1.0, 1.0).unwrap();
        let target = Tensor::full([2, 3], 0.3);

        let input_report =
            check_input_gradient(&mut net, &MseLoss::new(), &x, &target, 1e-3).unwrap();
        assert!(input_report.passes(1e-2), "{input_report:?}");

        let param_report =
            check_parameter_gradients(&mut net, &MseLoss::new(), &x, &target, 1e-2).unwrap();
        assert!(param_report.passes(1e-2), "{param_report:?}");
    }

    #[test]
    fn convnet_gradients_pass_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::new()
            .with(Conv2d::new(1, 2, (3, 3), Conv2dSpec::new((2, 2), (1, 1)), &mut rng).unwrap())
            .with(ReLU::new())
            .with(Flatten::new())
            .with(Dense::new(2 * 4 * 4, 2, &mut rng).unwrap())
            .with(Tanh::new());
        let mut x = Tensor::zeros([1, 1, 7, 7]);
        ndtensor::fill_uniform(&mut x, &mut rng, -1.0, 1.0).unwrap();
        let target = Tensor::zeros([1, 2]);

        let report =
            check_parameter_gradients(&mut net, &HuberLoss::new(1.0).unwrap(), &x, &target, 1e-2)
                .unwrap();
        assert!(report.passes(2e-2), "{report:?}");

        let input_report =
            check_input_gradient(&mut net, &HuberLoss::new(1.0).unwrap(), &x, &target, 1e-2)
                .unwrap();
        assert!(input_report.passes(2e-2), "{input_report:?}");
    }

    #[test]
    fn report_pass_threshold() {
        let r = GradCheckReport {
            max_abs_diff: 0.5,
            max_rel_diff: 0.001,
        };
        assert!(!r.passes(0.01));
        assert!(r.passes(0.6));
    }
}
