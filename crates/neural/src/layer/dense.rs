use ndtensor::{matmul, matmul_a_bt, matmul_at_b, Tensor};
use rand::Rng;

use crate::layer::{Layer, LayerKind, ParamGrad};
use crate::{NeuralError, Result};

/// A fully-connected layer computing `y = x·Wᵀ + b`.
///
/// * weights `W`: `[out_features, in_features]`, He-normal initialised
/// * bias `b`: `[out_features]`, zero initialised
/// * input: `[N, in_features]`, output: `[N, out_features]`
///
/// # Example
///
/// ```
/// use neural::layer::{Dense, Layer};
/// use ndtensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), neural::NeuralError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let layer = Dense::new(3, 2, &mut rng)?;
/// let y = layer.forward(&Tensor::zeros([4, 3]))?;
/// assert_eq!(y.shape().dims(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a He-normal-initialised dense layer.
    ///
    /// # Errors
    ///
    /// Fails when either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NeuralError::invalid(
                "Dense::new",
                "feature counts must be non-zero",
            ));
        }
        let mut weight = Tensor::zeros([out_features, in_features]);
        ndtensor::fill_he_normal(&mut weight, rng, in_features)?;
        Ok(Dense {
            weight,
            bias: Tensor::zeros([out_features]),
            grad_weight: Tensor::zeros([out_features, in_features]),
            grad_bias: Tensor::zeros([out_features]),
            cached_input: None,
        })
    }

    /// Creates a layer with explicit weights (used by deserialization and
    /// tests).
    ///
    /// # Errors
    ///
    /// Fails when `weight` is not rank 2 or `bias` does not match its
    /// leading dimension.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.rank() != 2 {
            return Err(NeuralError::invalid(
                "Dense::from_parts",
                format!("weight must be rank 2, got {}", weight.shape()),
            ));
        }
        let out = weight.shape().dims()[0];
        if bias.shape().dims() != [out] {
            return Err(NeuralError::invalid(
                "Dense::from_parts",
                format!("bias shape {} does not match out={out}", bias.shape()),
            ));
        }
        let gw = Tensor::zeros(weight.shape().clone());
        let gb = Tensor::zeros(bias.shape().clone());
        Ok(Dense {
            weight,
            bias,
            grad_weight: gw,
            grad_bias: gb,
            cached_input: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape().dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape().dims()[0]
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.rank() != 2 || input.shape().dims()[1] != self.in_features() {
            return Err(NeuralError::invalid(
                "Dense::forward",
                format!(
                    "expected input [N, {}], got {}",
                    self.in_features(),
                    input.shape()
                ),
            ));
        }
        Ok(())
    }

    fn compute(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        let mut out = matmul_a_bt(input, &self.weight)?;
        let (n, f) = (out.shape().dims()[0], out.shape().dims()[1]);
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for i in 0..n {
            for j in 0..f {
                data[i * f + j] += bias[j];
            }
        }
        Ok(out)
    }
}

impl Layer for Dense {
    fn kind(&self) -> LayerKind {
        LayerKind::Dense {
            in_features: self.in_features(),
            out_features: self.out_features(),
        }
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.compute(input)
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.compute(input)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or(NeuralError::MissingCache { layer: "Dense" })?;
        let n = input.shape().dims()[0];
        if grad_output.shape().dims() != [n, self.out_features()] {
            return Err(NeuralError::invalid(
                "Dense::backward",
                format!(
                    "expected grad [{n}, {}], got {}",
                    self.out_features(),
                    grad_output.shape()
                ),
            ));
        }
        // dW += gᵀ·x, db += column sums of g, dx = g·W.
        let dw = matmul_at_b(grad_output, &input)?;
        self.grad_weight.axpy(1.0, &dw)?;
        let f = self.out_features();
        let g = grad_output.as_slice();
        let gb = self.grad_bias.as_mut_slice();
        for row in g.chunks(f) {
            for (acc, &v) in gb.iter_mut().zip(row) {
                *acc += v;
            }
        }
        Ok(matmul(grad_output, &self.weight)?)
    }

    fn params_and_grads(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                param: &mut self.weight,
                grad: &mut self.grad_weight,
            },
            ParamGrad {
                param: &mut self.bias,
                grad: &mut self.grad_bias,
            },
        ]
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias] // sncheck:allow(hot-path-transitive-alloc): two-element parameter list, built once per characterization profile, never per frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_with(w: Vec<f32>, b: Vec<f32>, out: usize, inp: usize) -> Dense {
        Dense::from_parts(
            Tensor::from_vec([out, inp], w).unwrap(),
            Tensor::from_vec([out], b).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn forward_computes_affine_map() {
        // y = x·Wᵀ + b with W = [[1, 2], [3, 4]], b = [10, 20].
        let layer = layer_with(vec![1., 2., 3., 4.], vec![10., 20.], 2, 2);
        let x = Tensor::from_vec([1, 2], vec![1., 1.]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[13., 27.]);
    }

    #[test]
    fn construction_validates() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Dense::new(0, 2, &mut rng).is_err());
        assert!(Dense::new(2, 0, &mut rng).is_err());
        assert!(Dense::from_parts(Tensor::zeros([2, 3]), Tensor::zeros([3])).is_err());
        assert!(Dense::from_parts(Tensor::zeros([2]), Tensor::zeros([2])).is_err());
    }

    #[test]
    fn forward_rejects_bad_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(3, 2, &mut rng).unwrap();
        assert!(layer.forward(&Tensor::zeros([2, 4])).is_err());
        assert!(layer.forward(&Tensor::zeros([3])).is_err());
    }

    #[test]
    fn backward_without_cache_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(2, 2, &mut rng).unwrap();
        assert!(matches!(
            layer.backward(&Tensor::zeros([1, 2])),
            Err(NeuralError::MissingCache { .. })
        ));
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Dense::new(3, 2, &mut rng).unwrap();
        let x = Tensor::from_vec([2, 3], vec![0.5, -0.2, 0.8, 0.1, 0.4, -0.6]).unwrap();

        // Loss = sum of outputs.
        let out = layer.forward_train(&x).unwrap();
        let gin = layer.backward(&Tensor::ones(out.shape().clone())).unwrap();

        let eps = 1e-3f32;
        // Input gradient.
        for probe in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let numeric = (layer.forward(&xp).unwrap().sum() - layer.forward(&xm).unwrap().sum())
                / (2.0 * eps);
            let analytic = gin.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input grad {probe}: {numeric} vs {analytic}"
            );
        }
        // Weight gradient: dL/dW[o][i] = Σ_batch x[n][i].
        let pgs = layer.params_and_grads();
        let gw = pgs[0].grad.clone();
        for o in 0..2 {
            for i in 0..3 {
                let expect = x.at(&[0, i]).unwrap() + x.at(&[1, i]).unwrap();
                assert!((gw.at(&[o, i]).unwrap() - expect).abs() < 1e-5);
            }
        }
        // Bias gradient: batch size.
        let gb = pgs[1].grad.clone();
        assert!(gb.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        drop(pgs);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(2, 1, &mut rng).unwrap();
        let x = Tensor::ones([1, 2]);
        for _ in 0..2 {
            let out = layer.forward_train(&x).unwrap();
            layer.backward(&Tensor::ones(out.shape().clone())).unwrap();
        }
        {
            let pgs = layer.params_and_grads();
            assert!((pgs[1].grad.as_slice()[0] - 2.0).abs() < 1e-6);
        }
        layer.zero_grads();
        let pgs = layer.params_and_grads();
        assert_eq!(pgs[1].grad.as_slice()[0], 0.0);
    }

    #[test]
    fn param_count_and_set_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(4, 3, &mut rng).unwrap();
        assert_eq!(layer.param_count(), 4 * 3 + 3);
        let new_w = Tensor::ones([3, 4]);
        let new_b = Tensor::ones([3]);
        layer.set_params(&[new_w.clone(), new_b]).unwrap();
        assert_eq!(layer.params()[0], &new_w);
        assert!(layer.set_params(&[Tensor::zeros([2, 2])]).is_err());
    }
}
