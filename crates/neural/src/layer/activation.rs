//! Elementwise activation layers: ReLU, Sigmoid, Tanh.
//!
//! All three are shape-preserving and parameter-free. Their backward
//! passes use the cheapest sufficient cache: ReLU keeps the input sign,
//! Sigmoid and Tanh keep the *output* (their derivatives are functions of
//! the output).

use ndtensor::Tensor;

use crate::layer::{Layer, LayerKind};
use crate::{NeuralError, Result};

fn check_grad_shape(layer: &'static str, cached: &Tensor, grad_output: &Tensor) -> Result<()> {
    if cached.shape() != grad_output.shape() {
        return Err(NeuralError::invalid(
            "activation::backward",
            format!(
                "{layer}: grad shape {} does not match cached shape {}",
                grad_output.shape(),
                cached.shape()
            ),
        ));
    }
    Ok(())
}

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Default)]
pub struct ReLU {
    cached_input: Option<Tensor>,
}

impl ReLU {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn kind(&self) -> LayerKind {
        LayerKind::ReLU
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.map(|v| v.max(0.0)))
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.forward(input)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or(NeuralError::MissingCache { layer: "ReLU" })?;
        check_grad_shape("ReLU", &input, grad_output)?;
        Ok(input.zip_map(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })?)
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^{−x})`. The paper's autoencoder uses
/// a sigmoid output layer so reconstructions live in `[0, 1]`.
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn kind(&self) -> LayerKind {
        LayerKind::Sigmoid
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.map(|v| 1.0 / (1.0 + (-v).exp())))
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.forward(input)?;
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let output = self
            .cached_output
            .take()
            .ok_or(NeuralError::MissingCache { layer: "Sigmoid" })?;
        check_grad_shape("Sigmoid", &output, grad_output)?;
        Ok(output.zip_map(grad_output, |y, g| g * y * (1.0 - y))?)
    }
}

/// Hyperbolic tangent: `y = tanh(x)`. Used by the steering head so the
/// predicted angle lands in `[-1, 1]`.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn kind(&self) -> LayerKind {
        LayerKind::Tanh
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.map(f32::tanh))
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.forward(input)?;
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let output = self
            .cached_output
            .take()
            .ok_or(NeuralError::MissingCache { layer: "Tanh" })?;
        check_grad_shape("Tanh", &output, grad_output)?;
        Ok(output.zip_map(grad_output, |y, g| g * (1.0 - y * y))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec([1, n], v).unwrap()
    }

    #[test]
    fn relu_clips_negatives() {
        let y = ReLU::new().forward(&t(vec![-1.0, 0.0, 2.0])).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut l = ReLU::new();
        l.forward_train(&t(vec![-1.0, 0.5, 0.0])).unwrap();
        let g = l.backward(&t(vec![10.0, 10.0, 10.0])).unwrap();
        // Gradient flows only where input was strictly positive.
        assert_eq!(g.as_slice(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn sigmoid_values_and_gradient() {
        let mut l = Sigmoid::new();
        let y = l.forward_train(&t(vec![0.0, 100.0, -100.0])).unwrap();
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[1] > 0.999);
        assert!(y.as_slice()[2] < 0.001);
        let g = l.backward(&t(vec![1.0, 1.0, 1.0])).unwrap();
        // σ'(0) = 0.25; saturated ends ≈ 0.
        assert!((g.as_slice()[0] - 0.25).abs() < 1e-6);
        assert!(g.as_slice()[1] < 1e-3);
    }

    #[test]
    fn tanh_values_and_gradient() {
        let mut l = Tanh::new();
        let y = l.forward_train(&t(vec![0.0, 1.0])).unwrap();
        assert_eq!(y.as_slice()[0], 0.0);
        assert!((y.as_slice()[1] - 0.7616).abs() < 1e-3);
        let g = l.backward(&t(vec![1.0, 1.0])).unwrap();
        assert!((g.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!((g.as_slice()[1] - (1.0 - 0.7616f32 * 0.7616)).abs() < 1e-3);
    }

    #[test]
    fn activation_gradients_match_finite_differences() {
        let x = t(vec![-0.7, -0.1, 0.0, 0.3, 1.2]);
        let eps = 1e-3f32;
        let layers: Vec<Box<dyn Layer>> = vec![Box::new(Sigmoid::new()), Box::new(Tanh::new())];
        for mut layer in layers {
            let out = layer.forward_train(&x).unwrap();
            let analytic = layer.backward(&Tensor::ones(out.shape().clone())).unwrap();
            for i in 0..x.len() {
                let mut xp = x.clone();
                xp.as_mut_slice()[i] += eps;
                let mut xm = x.clone();
                xm.as_mut_slice()[i] -= eps;
                let numeric = (layer.forward(&xp).unwrap().sum()
                    - layer.forward(&xm).unwrap().sum())
                    / (2.0 * eps);
                assert!(
                    (numeric - analytic.as_slice()[i]).abs() < 1e-3,
                    "{}: grad at {i}",
                    layer.kind().name()
                );
            }
        }
    }

    #[test]
    fn backward_without_cache_errors() {
        assert!(ReLU::new().backward(&t(vec![1.0])).is_err());
        assert!(Sigmoid::new().backward(&t(vec![1.0])).is_err());
        assert!(Tanh::new().backward(&t(vec![1.0])).is_err());
    }

    #[test]
    fn backward_rejects_mismatched_grad() {
        let mut l = ReLU::new();
        l.forward_train(&t(vec![1.0, 2.0])).unwrap();
        assert!(l.backward(&t(vec![1.0])).is_err());
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(ReLU::new().param_count(), 0);
        assert!(Sigmoid::new().params_and_grads().is_empty());
    }
}
