use ndtensor::{conv2d, conv2d_backward, Conv2dSpec, Tensor};
use rand::Rng;

use crate::layer::{Layer, LayerKind, ParamGrad};
use crate::{NeuralError, Result};

/// A 2-D convolution layer over `[N, C, H, W]` inputs.
///
/// Weights are `[F, C, KH, KW]`, He-normal initialised with
/// `fan_in = C·KH·KW`; biases start at zero. Stride and padding follow the
/// provided [`Conv2dSpec`].
///
/// # Example
///
/// ```
/// use neural::layer::{Conv2d, Layer};
/// use ndtensor::{Conv2dSpec, Tensor};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), neural::NeuralError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let conv = Conv2d::new(1, 8, (5, 5), Conv2dSpec::new((2, 2), (0, 0)), &mut rng)?;
/// let y = conv.forward(&Tensor::zeros([2, 1, 60, 160]))?;
/// assert_eq!(y.shape().dims(), &[2, 8, 28, 78]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    spec: Conv2dSpec,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a He-normal-initialised convolution layer.
    ///
    /// # Errors
    ///
    /// Fails when any of the channel or kernel dimensions is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        spec: Conv2dSpec,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel.0 == 0 || kernel.1 == 0 {
            return Err(NeuralError::invalid(
                "Conv2d::new",
                "channels and kernel dimensions must be non-zero",
            ));
        }
        let mut weight = Tensor::zeros([out_channels, in_channels, kernel.0, kernel.1]);
        ndtensor::fill_he_normal(&mut weight, rng, in_channels * kernel.0 * kernel.1)?;
        Ok(Conv2d {
            weight,
            bias: Tensor::zeros([out_channels]),
            grad_weight: Tensor::zeros([out_channels, in_channels, kernel.0, kernel.1]),
            grad_bias: Tensor::zeros([out_channels]),
            spec,
            cached_input: None,
        })
    }

    /// Creates a layer with explicit weights (used by deserialization).
    ///
    /// # Errors
    ///
    /// Fails when `weight` is not rank 4 or `bias` does not match its
    /// leading dimension.
    pub fn from_parts(weight: Tensor, bias: Tensor, spec: Conv2dSpec) -> Result<Self> {
        if weight.rank() != 4 {
            return Err(NeuralError::invalid(
                "Conv2d::from_parts",
                format!("weight must be rank 4, got {}", weight.shape()),
            ));
        }
        let f = weight.shape().dims()[0];
        if bias.shape().dims() != [f] {
            return Err(NeuralError::invalid(
                "Conv2d::from_parts",
                format!("bias shape {} does not match filters={f}", bias.shape()),
            ));
        }
        let gw = Tensor::zeros(weight.shape().clone());
        let gb = Tensor::zeros(bias.shape().clone());
        Ok(Conv2d {
            weight,
            bias,
            grad_weight: gw,
            grad_bias: gb,
            spec,
            cached_input: None,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.shape().dims()[1]
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.weight.shape().dims()[0]
    }

    /// Kernel height and width.
    pub fn kernel(&self) -> (usize, usize) {
        (self.weight.shape().dims()[2], self.weight.shape().dims()[3])
    }

    /// The stride/padding spec.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }
}

impl Layer for Conv2d {
    fn kind(&self) -> LayerKind {
        LayerKind::Conv2d {
            in_channels: self.in_channels(),
            out_channels: self.out_channels(),
            kernel: self.kernel(),
            spec: self.spec,
        }
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(conv2d(input, &self.weight, Some(&self.bias), self.spec)?)
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.forward(input)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or(NeuralError::MissingCache { layer: "Conv2d" })?;
        let grads = conv2d_backward(&input, &self.weight, grad_output, self.spec)?;
        self.grad_weight.axpy(1.0, &grads.grad_weight)?;
        self.grad_bias.axpy(1.0, &grads.grad_bias)?;
        Ok(grads.grad_input)
    }

    fn params_and_grads(&mut self) -> Vec<ParamGrad<'_>> {
        vec![
            ParamGrad {
                param: &mut self.weight,
                grad: &mut self.grad_weight,
            },
            ParamGrad {
                param: &mut self.bias,
                grad: &mut self.grad_bias,
            },
        ]
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias] // sncheck:allow(hot-path-transitive-alloc): two-element parameter list, built once per characterization profile, never per frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Conv2d::new(0, 1, (3, 3), Conv2dSpec::unit(), &mut rng).is_err());
        assert!(Conv2d::new(1, 1, (0, 3), Conv2dSpec::unit(), &mut rng).is_err());
        assert!(Conv2d::from_parts(
            Tensor::zeros([2, 1, 3, 3]),
            Tensor::zeros([3]),
            Conv2dSpec::unit()
        )
        .is_err());
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A 1×1 kernel with weight 1 and bias 0 is the identity.
        let conv = Conv2d::from_parts(
            Tensor::ones([1, 1, 1, 1]),
            Tensor::zeros([1]),
            Conv2dSpec::unit(),
        )
        .unwrap();
        let x = Tensor::from_fn([1, 1, 3, 4], |i| (i[2] * 4 + i[3]) as f32);
        assert_eq!(conv.forward(&x).unwrap(), x);
    }

    #[test]
    fn pilotnet_geometry() {
        let mut rng = StdRng::seed_from_u64(1);
        // First PilotNet conv: 5×5 stride 2 on 60×160.
        let conv = Conv2d::new(1, 24, (5, 5), Conv2dSpec::new((2, 2), (0, 0)), &mut rng).unwrap();
        let y = conv.forward(&Tensor::zeros([1, 1, 60, 160])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 24, 28, 78]);
        assert_eq!(conv.kernel(), (5, 5));
        assert_eq!(conv.in_channels(), 1);
        assert_eq!(conv.out_channels(), 24);
    }

    #[test]
    fn backward_accumulates_and_returns_input_grad() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new(2, 3, (3, 3), Conv2dSpec::unit(), &mut rng).unwrap();
        let x = {
            let mut t = Tensor::zeros([1, 2, 6, 6]);
            ndtensor::fill_uniform(&mut t, &mut rng, -1.0, 1.0).unwrap();
            t
        };
        let out = conv.forward_train(&x).unwrap();
        let gin = conv.backward(&Tensor::ones(out.shape().clone())).unwrap();
        assert_eq!(gin.shape(), x.shape());

        // Finite-difference check on one weight.
        let eps = 1e-2;
        let analytic = {
            let pgs = conv.params_and_grads();
            pgs[0].grad.as_slice()[0]
        };
        let loss = |c: &Conv2d| c.forward(&x).unwrap().sum();
        let mut wp = conv.params()[0].clone();
        wp.as_mut_slice()[0] += eps;
        let mut wm = conv.params()[0].clone();
        wm.as_mut_slice()[0] -= eps;
        let b = conv.params()[1].clone();
        let cp = Conv2d::from_parts(wp, b.clone(), conv.spec()).unwrap();
        let cm = Conv2d::from_parts(wm, b, conv.spec()).unwrap();
        let numeric = (loss(&cp) - loss(&cm)) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
            "{numeric} vs {analytic}"
        );
    }

    #[test]
    fn backward_without_cache_errors() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, (3, 3), Conv2dSpec::unit(), &mut rng).unwrap();
        assert!(matches!(
            conv.backward(&Tensor::zeros([1, 1, 2, 2])),
            Err(NeuralError::MissingCache { .. })
        ));
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(3, 8, (5, 5), Conv2dSpec::unit(), &mut rng).unwrap();
        assert_eq!(conv.param_count(), 8 * 3 * 5 * 5 + 8);
    }
}
