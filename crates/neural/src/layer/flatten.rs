use ndtensor::{Shape, Tensor};

use crate::layer::{Layer, LayerKind};
use crate::{NeuralError, Result};

/// Collapses all dimensions after the batch dimension:
/// `[N, d1, d2, …] → [N, d1·d2·…]`. Bridges the convolutional stack and
/// the dense head of the steering CNN.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn flat_shape(input: &Tensor) -> Result<Shape> {
        if input.rank() < 2 {
            return Err(NeuralError::invalid(
                "Flatten::forward",
                format!("input must have a batch dimension, got {}", input.shape()),
            ));
        }
        let n = input.shape().dims()[0];
        let rest: usize = input.shape().dims()[1..].iter().product();
        Ok(Shape::new([n, rest]))
    }
}

impl Layer for Flatten {
    fn kind(&self) -> LayerKind {
        LayerKind::Flatten
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let shape = Self::flat_shape(input)?;
        Ok(input.reshape(shape)?)
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.forward(input)?;
        self.cached_shape = Some(input.shape().clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .take()
            .ok_or(NeuralError::MissingCache { layer: "Flatten" })?;
        if grad_output.len() != shape.volume() {
            return Err(NeuralError::invalid(
                "Flatten::backward",
                format!(
                    "grad has {} elements, cached shape {} has {}",
                    grad_output.len(),
                    shape,
                    shape.volume()
                ),
            ));
        }
        Ok(grad_output.reshape(shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_trailing_dimensions() {
        let x = Tensor::from_fn([2, 3, 4, 5], |i| {
            (i[0] * 60 + i[1] * 20 + i[2] * 5 + i[3]) as f32
        });
        let y = Flatten::new().forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 60]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn backward_restores_shape() {
        let mut l = Flatten::new();
        let x = Tensor::zeros([2, 3, 4]);
        l.forward_train(&x).unwrap();
        let g = l.backward(&Tensor::ones([2, 12])).unwrap();
        assert_eq!(g.shape().dims(), &[2, 3, 4]);
    }

    #[test]
    fn rejects_rank1_input_and_missing_cache() {
        assert!(Flatten::new().forward(&Tensor::zeros([5])).is_err());
        assert!(Flatten::new().backward(&Tensor::zeros([1, 1])).is_err());
        let mut l = Flatten::new();
        l.forward_train(&Tensor::zeros([2, 2, 2])).unwrap();
        assert!(l.backward(&Tensor::zeros([2, 9])).is_err());
    }

    #[test]
    fn already_flat_input_is_identity() {
        let x = Tensor::from_vec([3, 4], (0..12).map(|i| i as f32).collect()).unwrap();
        let y = Flatten::new().forward(&x).unwrap();
        assert_eq!(y, x);
    }
}
