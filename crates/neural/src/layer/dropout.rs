use ndtensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::{Layer, LayerKind};
use crate::{NeuralError, Result};

/// Inverted dropout: during training each element is zeroed with
/// probability `rate` and survivors are scaled by `1/(1−rate)`, so the
/// expected activation is unchanged; at inference the layer is the
/// identity.
///
/// Not used by the paper's architectures; provided for regularisation
/// ablations (the autoencoder overfits small mask datasets without it).
/// Randomness comes from an internal seeded RNG, so training remains
/// deterministic per construction seed.
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    rng: StdRng,
    seed: u64,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `rate ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Fails when `rate` is not finite or outside `[0, 1)`.
    pub fn new(rate: f32, seed: u64) -> Result<Self> {
        if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
            return Err(NeuralError::invalid(
                "Dropout::new",
                format!("rate must be in [0, 1), got {rate}"),
            ));
        }
        Ok(Dropout {
            rate,
            rng: StdRng::seed_from_u64(seed),
            seed,
            cached_mask: None,
        })
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// The construction seed (persisted so reloaded models keep their
    /// training-time randomness stream).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Layer for Dropout {
    fn kind(&self) -> LayerKind {
        LayerKind::Dropout {
            rate_milli: (self.rate * 1000.0).round() as u32,
        }
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        // Inference: identity (inverted dropout needs no rescale here).
        Ok(input.clone())
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        // sncheck:allow(no-float-eq): exact-zero fast path; any nonzero
        // rate takes the general branch correctly.
        if self.rate == 0.0 {
            self.cached_mask = Some(Tensor::ones(input.shape().clone()));
            return Ok(input.clone());
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(input.shape().clone());
        for m in mask.as_mut_slice() {
            *m = if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            };
        }
        let out = input.zip_map(&mask, |x, m| x * m)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .take()
            .ok_or(NeuralError::MissingCache { layer: "Dropout" })?;
        if mask.shape() != grad_output.shape() {
            return Err(NeuralError::invalid(
                "Dropout::backward",
                format!(
                    "grad shape {} does not match cached mask {}",
                    grad_output.shape(),
                    mask.shape()
                ),
            ));
        }
        Ok(grad_output.zip_map(&mask, |g, m| g * m)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_rate() {
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(f32::NAN, 0).is_err());
        assert!(Dropout::new(0.0, 0).is_ok());
        assert!(Dropout::new(0.99, 0).is_ok());
    }

    #[test]
    fn inference_is_identity() {
        let d = Dropout::new(0.5, 1).unwrap();
        let x = Tensor::from_fn([4, 8], |i| (i[0] + i[1]) as f32);
        assert_eq!(d.forward(&x).unwrap(), x);
    }

    #[test]
    fn training_zeroes_roughly_rate_fraction_and_preserves_mean() {
        let mut d = Dropout::new(0.3, 2).unwrap();
        let x = Tensor::ones([100, 100]);
        let y = d.forward_train(&x).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count() as f32;
        let frac = zeros / y.len() as f32;
        assert!((frac - 0.3).abs() < 0.02, "dropped fraction {frac}");
        // Inverted scaling keeps the expected value ≈ 1.
        assert!((y.mean() - 1.0).abs() < 0.03, "mean {}", y.mean());
    }

    #[test]
    fn backward_applies_the_same_mask() {
        let mut d = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::ones([1, 64]);
        let y = d.forward_train(&x).unwrap();
        let g = d.backward(&Tensor::ones([1, 64])).unwrap();
        // Gradient passes exactly where activations passed.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv == &0.0, gv == &0.0);
        }
        assert!(
            d.backward(&Tensor::ones([1, 64])).is_err(),
            "cache consumed"
        );
    }

    #[test]
    fn zero_rate_is_identity_in_training_too() {
        let mut d = Dropout::new(0.0, 4).unwrap();
        let x = Tensor::from_fn([2, 3], |i| i[1] as f32);
        assert_eq!(d.forward_train(&x).unwrap(), x);
        let g = d.backward(&Tensor::ones([2, 3])).unwrap();
        assert!(g.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut d = Dropout::new(0.5, seed).unwrap();
            d.forward_train(&Tensor::ones([1, 32])).unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn has_no_parameters() {
        let mut d = Dropout::new(0.2, 0).unwrap();
        assert_eq!(d.param_count(), 0);
        assert!(d.params_and_grads().is_empty());
        assert_eq!(d.kind(), LayerKind::Dropout { rate_milli: 200 });
    }
}
