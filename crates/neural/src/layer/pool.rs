use ndtensor::Tensor;

use crate::layer::{Layer, LayerKind};
use crate::{NeuralError, Result};

/// Non-overlapping max pooling over `[N, C, H, W]` inputs with window
/// `(PH, PW)` and stride equal to the window. Input height/width must be
/// divisible by the window.
///
/// Not part of the paper's architectures (PilotNet uses strided
/// convolutions), but provided for the architecture-ablation benches.
#[derive(Debug)]
pub struct MaxPool2d {
    window: (usize, usize),
    /// For each output element, the linear input index that won the max.
    cached_argmax: Option<(Vec<usize>, ndtensor::Shape)>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Fails when either window dimension is zero.
    pub fn new(window: (usize, usize)) -> Result<Self> {
        if window.0 == 0 || window.1 == 0 {
            return Err(NeuralError::invalid(
                "MaxPool2d::new",
                "window must be non-zero",
            ));
        }
        Ok(MaxPool2d {
            window,
            cached_argmax: None,
        })
    }

    fn pool(&self, input: &Tensor) -> Result<(Tensor, Vec<usize>)> {
        if input.rank() != 4 {
            return Err(NeuralError::invalid(
                "MaxPool2d::forward",
                format!("expected [N, C, H, W], got {}", input.shape()),
            ));
        }
        let [n, c, h, w] = [
            input.shape().dims()[0],
            input.shape().dims()[1],
            input.shape().dims()[2],
            input.shape().dims()[3],
        ];
        let (ph, pw) = self.window;
        if h % ph != 0 || w % pw != 0 {
            return Err(NeuralError::invalid(
                "MaxPool2d::forward",
                format!("input {h}x{w} not divisible by window {ph}x{pw}"),
            ));
        }
        let (oh, ow) = (h / ph, w / pw);
        let data = input.as_slice();
        let mut out = Vec::with_capacity(n * c * oh * ow); // sncheck:allow(hot-path-transitive-alloc): the pooled activation is the layer's output; one exact-size buffer per forward call
        let mut argmax = Vec::with_capacity(n * c * oh * ow); // sncheck:allow(hot-path-transitive-alloc): argmax routing table sized with the output; needed for the backward pass
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..ph {
                            for dx in 0..pw {
                                let idx = plane + (oy * ph + dy) * w + (ox * pw + dx);
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.push(best);
                        argmax.push(best_idx);
                    }
                }
            }
        }
        Ok((Tensor::from_vec([n, c, oh, ow], out)?, argmax))
    }
}

impl Layer for MaxPool2d {
    fn kind(&self) -> LayerKind {
        LayerKind::MaxPool2d {
            window: self.window,
        }
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(self.pool(input)?.0)
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let (out, argmax) = self.pool(input)?;
        self.cached_argmax = Some((argmax, input.shape().clone()));
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (argmax, in_shape) = self
            .cached_argmax
            .take()
            .ok_or(NeuralError::MissingCache { layer: "MaxPool2d" })?;
        if grad_output.len() != argmax.len() {
            return Err(NeuralError::invalid(
                "MaxPool2d::backward",
                format!(
                    "grad has {} elements, cache expects {}",
                    grad_output.len(),
                    argmax.len()
                ),
            ));
        }
        let mut grad_in = vec![0.0f32; in_shape.volume()]; // sncheck:allow(hot-path-transitive-alloc): the gradient plane is the backward pass's output; zero-filled scatter target, one per call
        for (&idx, &g) in argmax.iter().zip(grad_output.as_slice()) {
            grad_in[idx] += g;
        }
        Ok(Tensor::from_vec(in_shape, grad_in)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maxima() {
        let x = Tensor::from_vec([1, 1, 2, 4], vec![1., 5., 2., 0., 3., 4., 8., 6.]).unwrap();
        let pool = MaxPool2d::new((2, 2)).unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 1, 2]);
        assert_eq!(y.as_slice(), &[5., 8.]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 9., 3., 2.]).unwrap();
        let mut pool = MaxPool2d::new((2, 2)).unwrap();
        pool.forward_train(&x).unwrap();
        let g = pool
            .backward(&Tensor::from_vec([1, 1, 1, 1], vec![7.0]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0., 7., 0., 0.]);
    }

    #[test]
    fn validates_inputs() {
        assert!(MaxPool2d::new((0, 2)).is_err());
        let pool = MaxPool2d::new((2, 2)).unwrap();
        assert!(pool.forward(&Tensor::zeros([1, 1, 3, 4])).is_err()); // 3 % 2 != 0
        assert!(pool.forward(&Tensor::zeros([2, 4])).is_err());
        let mut p = MaxPool2d::new((2, 2)).unwrap();
        assert!(p.backward(&Tensor::zeros([1, 1, 1, 1])).is_err());
    }

    #[test]
    fn multi_channel_pooling_is_independent() {
        let x = Tensor::from_fn([1, 2, 2, 2], |i| if i[1] == 0 { 1.0 } else { 10.0 });
        let y = MaxPool2d::new((2, 2)).unwrap().forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 10.0]);
    }
}
