//! Network layers.
//!
//! Every layer implements [`Layer`]: a pure inference [`Layer::forward`],
//! a caching [`Layer::forward_train`], and a [`Layer::backward`] that
//! consumes the cache, accumulates parameter gradients and returns the
//! gradient with respect to its input. Layers are `Send` so networks can
//! be trained or evaluated from worker threads.

mod activation;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activation::{ReLU, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::MaxPool2d;

use ndtensor::{Conv2dSpec, Tensor};

use crate::Result;

/// Structural description of a layer, used for introspection (the
/// saliency crate walks the CNN's conv stack through this) and for
/// serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerKind {
    /// Fully-connected layer: `[N, in] → [N, out]`.
    Dense {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
    },
    /// 2-D convolution: `[N, C, H, W] → [N, F, OH, OW]`.
    Conv2d {
        /// Input channel count `C`.
        in_channels: usize,
        /// Output channel (filter) count `F`.
        out_channels: usize,
        /// Kernel size `(KH, KW)`.
        kernel: (usize, usize),
        /// Stride and padding.
        spec: Conv2dSpec,
    },
    /// Rectified linear activation.
    ReLU,
    /// Logistic sigmoid activation.
    Sigmoid,
    /// Hyperbolic tangent activation.
    Tanh,
    /// Collapses all but the batch dimension.
    Flatten,
    /// Non-overlapping max pooling with window `(PH, PW)`.
    MaxPool2d {
        /// Pooling window `(PH, PW)`; stride equals the window.
        window: (usize, usize),
    },
    /// Inverted dropout (identity at inference).
    Dropout {
        /// Drop probability in thousandths (kind must be `Eq`, so the
        /// f32 rate is stored quantised; 300 = rate 0.3).
        rate_milli: u32,
    },
}

impl LayerKind {
    /// Short display name of the layer kind.
    pub fn name(&self) -> &'static str {
        match self {
            LayerKind::Dense { .. } => "Dense",
            LayerKind::Conv2d { .. } => "Conv2d",
            LayerKind::ReLU => "ReLU",
            LayerKind::Sigmoid => "Sigmoid",
            LayerKind::Tanh => "Tanh",
            LayerKind::Flatten => "Flatten",
            LayerKind::MaxPool2d { .. } => "MaxPool2d",
            LayerKind::Dropout { .. } => "Dropout",
        }
    }
}

/// A mutable view of one parameter tensor paired with its accumulated
/// gradient, handed to optimizers.
#[derive(Debug)]
pub struct ParamGrad<'a> {
    /// The parameter to update.
    pub param: &'a mut Tensor,
    /// Its gradient, accumulated by `backward` since the last zeroing.
    pub grad: &'a mut Tensor,
}

/// A differentiable network layer.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// The layer's structural description.
    fn kind(&self) -> LayerKind;

    /// Inference forward pass (no caching, `&self`).
    ///
    /// # Errors
    ///
    /// Fails when the input shape is incompatible with the layer.
    fn forward(&self, input: &Tensor) -> Result<Tensor>;

    /// Training forward pass: like [`Layer::forward`] but caches whatever
    /// the backward pass needs.
    ///
    /// # Errors
    ///
    /// Fails when the input shape is incompatible with the layer.
    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Backward pass: given `∂L/∂output`, accumulates parameter gradients
    /// and returns `∂L/∂input`. Consumes the cache of the most recent
    /// [`Layer::forward_train`].
    ///
    /// # Errors
    ///
    /// Fails when no cache is present or `grad_output` has the wrong
    /// shape.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// The layer's parameters paired with their gradients (empty for
    /// parameter-free layers).
    fn params_and_grads(&mut self) -> Vec<ParamGrad<'_>> {
        Vec::new()
    }

    /// Immutable access to parameter tensors, in the same order as
    /// [`Layer::params_and_grads`].
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Resets all accumulated gradients to zero.
    fn zero_grads(&mut self) {
        for pg in self.params_and_grads() {
            pg.grad.map_inplace(|_| 0.0);
        }
    }

    /// Replaces the layer's parameters with `values`, in
    /// [`Layer::params_and_grads`] order.
    ///
    /// # Errors
    ///
    /// Fails when the number of tensors or any shape differs.
    fn set_params(&mut self, values: &[Tensor]) -> Result<()> {
        let mut pgs = self.params_and_grads();
        if pgs.len() != values.len() {
            return Err(crate::NeuralError::invalid(
                "set_params",
                format!("expected {} tensors, got {}", pgs.len(), values.len()),
            ));
        }
        for (pg, v) in pgs.iter_mut().zip(values) {
            if pg.param.shape() != v.shape() {
                return Err(crate::NeuralError::invalid(
                    "set_params",
                    format!("shape mismatch: {} vs {}", pg.param.shape(), v.shape()),
                ));
            }
            *pg.param = v.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(LayerKind::ReLU.name(), "ReLU");
        assert_eq!(
            LayerKind::Dense {
                in_features: 1,
                out_features: 2
            }
            .name(),
            "Dense"
        );
        assert_eq!(LayerKind::MaxPool2d { window: (2, 2) }.name(), "MaxPool2d");
    }
}
