//! Ready-made builders for the paper's two architectures.
//!
//! * [`pilotnet`] — the steering-angle CNN, modelled on Bojarski et al.'s
//!   PilotNet (five conv layers: three 5×5 stride-2, two 3×3 stride-1,
//!   then a dense head). Channel widths are configurable so experiments
//!   can trade fidelity for CPU time; [`PilotNetConfig::paper`] matches
//!   the published 24/36/48/64/64, [`PilotNetConfig::compact`] is the
//!   laptop-scale default used by the reproduction.
//! * [`autoencoder`] — the one-class classifier: a feed-forward
//!   autoencoder with ReLU hidden layers and a sigmoid output
//!   (paper: 9600 → 64 → 16 → 64 → 9600 on 60×160 grayscale inputs).

use ndtensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::layer::{Conv2d, Dense, Flatten, ReLU, Sigmoid, Tanh};
use crate::{Network, NeuralError, Result};

/// Channel/width configuration for [`pilotnet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PilotNetConfig {
    /// Input image height.
    pub height: usize,
    /// Input image width.
    pub width: usize,
    /// Output channels of the five conv layers.
    pub conv_channels: [usize; 5],
    /// Widths of the dense head (a final 1-unit tanh layer is appended).
    pub dense_widths: Vec<usize>,
}

impl PilotNetConfig {
    /// The published PilotNet widths (24/36/48/64/64 conv channels,
    /// 100/50/10 dense) on the paper's 60×160 input.
    pub fn paper() -> Self {
        PilotNetConfig {
            height: 60,
            width: 160,
            conv_channels: [24, 36, 48, 64, 64],
            dense_widths: vec![100, 50, 10],
        }
    }

    /// A reduced-width variant that keeps the five-conv-layer structure
    /// (which is what VisualBackProp exercises) but trains in minutes on
    /// a CPU.
    pub fn compact() -> Self {
        PilotNetConfig {
            height: 60,
            width: 160,
            conv_channels: [8, 12, 16, 20, 20],
            dense_widths: vec![64, 16],
        }
    }

    /// Overrides the input size.
    pub fn with_input(mut self, height: usize, width: usize) -> Self {
        self.height = height;
        self.width = width;
        self
    }
}

/// Builds a PilotNet-style steering regressor: grayscale `[N, 1, H, W]`
/// in, `[N, 1]` steering angle (tanh, `[-1, 1]`) out.
///
/// # Errors
///
/// Fails when the input is too small for the conv stack or any width is
/// zero.
///
/// # Example
///
/// ```
/// use neural::models::{pilotnet, PilotNetConfig};
/// use ndtensor::Tensor;
///
/// # fn main() -> Result<(), neural::NeuralError> {
/// let net = pilotnet(&PilotNetConfig::compact(), 42)?;
/// let angles = net.forward(&Tensor::zeros([2, 1, 60, 160]))?;
/// assert_eq!(angles.shape().dims(), &[2, 1]);
/// # Ok(())
/// # }
/// ```
pub fn pilotnet(config: &PilotNetConfig, seed: u64) -> Result<Network> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    let strided = Conv2dSpec::new((2, 2), (0, 0));
    // The published PilotNet runs its two 3×3 layers unpadded on a 66×200
    // input; at the paper's 60×160 the height collapses below 3 pixels, so
    // the 3×3 layers here keep their resolution with unit padding.
    let padded = Conv2dSpec::new((1, 1), (1, 1));

    let mut channels = 1usize;
    let mut h = config.height;
    let mut w = config.width;
    for (i, &out_ch) in config.conv_channels.iter().enumerate() {
        let (kernel, spec) = if i < 3 {
            ((5, 5), strided)
        } else {
            ((3, 3), padded)
        };
        let (oh, ow) = spec.output_hw(h, w, kernel.0, kernel.1).map_err(|e| {
            NeuralError::invalid(
                "pilotnet",
                format!(
                    "input {}x{} too small at conv {i}: {e}",
                    config.height, config.width
                ),
            )
        })?;
        net.push(Conv2d::new(channels, out_ch, kernel, spec, &mut rng)?);
        net.push(ReLU::new());
        channels = out_ch;
        h = oh;
        w = ow;
    }
    net.push(Flatten::new());
    let mut features = channels * h * w;
    for &width in &config.dense_widths {
        net.push(Dense::new(features, width, &mut rng)?);
        net.push(ReLU::new());
        features = width;
    }
    net.push(Dense::new(features, 1, &mut rng)?);
    net.push(Tanh::new());
    Ok(net)
}

/// Builds the paper's one-class autoencoder: `input_dim` → hidden widths
/// (ReLU) → `input_dim` (sigmoid). The paper uses hidden widths
/// `[64, 16, 64]` on 9600-dimensional flattened 60×160 images.
///
/// # Errors
///
/// Fails when `input_dim` is zero or `hidden` is empty / contains a zero.
///
/// # Example
///
/// ```
/// use neural::models::autoencoder;
/// use ndtensor::Tensor;
///
/// # fn main() -> Result<(), neural::NeuralError> {
/// let ae = autoencoder(9600, &[64, 16, 64], 7)?;
/// let recon = ae.forward(&Tensor::zeros([1, 9600]))?;
/// assert_eq!(recon.shape().dims(), &[1, 9600]);
/// # Ok(())
/// # }
/// ```
pub fn autoencoder(input_dim: usize, hidden: &[usize], seed: u64) -> Result<Network> {
    if input_dim == 0 {
        return Err(NeuralError::invalid(
            "autoencoder",
            "input_dim must be non-zero",
        ));
    }
    if hidden.is_empty() || hidden.contains(&0) {
        return Err(NeuralError::invalid(
            "autoencoder",
            "hidden widths must be non-empty and non-zero",
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    let mut features = input_dim;
    for &width in hidden {
        net.push(Dense::new(features, width, &mut rng)?);
        net.push(ReLU::new());
        features = width;
    }
    net.push(Dense::new(features, input_dim, &mut rng)?);
    net.push(Sigmoid::new());
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use ndtensor::Tensor;

    #[test]
    fn compact_pilotnet_shapes() {
        let net = pilotnet(&PilotNetConfig::compact(), 1).unwrap();
        let y = net.forward(&Tensor::zeros([3, 1, 60, 160])).unwrap();
        assert_eq!(y.shape().dims(), &[3, 1]);
        // Tanh head keeps angles in [−1, 1].
        assert!(y.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        // Five conv layers present.
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), LayerKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 5);
    }

    #[test]
    fn paper_pilotnet_builds_and_has_more_parameters() {
        let compact = pilotnet(&PilotNetConfig::compact(), 1).unwrap();
        let paper = pilotnet(&PilotNetConfig::paper(), 1).unwrap();
        assert!(paper.param_count() > compact.param_count());
        let y = paper.forward(&Tensor::zeros([1, 1, 60, 160])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1]);
    }

    #[test]
    fn pilotnet_rejects_tiny_input() {
        let cfg = PilotNetConfig::compact().with_input(8, 8);
        assert!(pilotnet(&cfg, 0).is_err());
    }

    #[test]
    fn pilotnet_is_deterministic_per_seed() {
        let a = pilotnet(&PilotNetConfig::compact(), 5).unwrap();
        let b = pilotnet(&PilotNetConfig::compact(), 5).unwrap();
        let x = Tensor::from_fn([1, 1, 60, 160], |i| ((i[2] + i[3]) % 7) as f32 / 6.0);
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
        let c = pilotnet(&PilotNetConfig::compact(), 6).unwrap();
        assert_ne!(a.forward(&x).unwrap(), c.forward(&x).unwrap());
    }

    #[test]
    fn autoencoder_matches_paper_architecture() {
        let ae = autoencoder(9600, &[64, 16, 64], 0).unwrap();
        // Dense(9600→64) ReLU Dense(64→16) ReLU Dense(16→64) ReLU
        // Dense(64→9600) Sigmoid = 8 layers.
        assert_eq!(ae.layer_count(), 8);
        assert!(matches!(
            ae.layers().last().unwrap().kind(),
            LayerKind::Sigmoid
        ));
        let expected_params = 9600 * 64 + 64 + 64 * 16 + 16 + 16 * 64 + 64 + 64 * 9600 + 9600;
        assert_eq!(ae.param_count(), expected_params);
    }

    #[test]
    fn autoencoder_output_is_unit_range() {
        let ae = autoencoder(50, &[8], 3).unwrap();
        let mut x = Tensor::zeros([2, 50]);
        ndtensor::fill_uniform(
            &mut x,
            &mut <StdRng as SeedableRng>::seed_from_u64(1),
            -10.0,
            10.0,
        )
        .unwrap();
        let y = ae.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn autoencoder_validates() {
        assert!(autoencoder(0, &[8], 0).is_err());
        assert!(autoencoder(10, &[], 0).is_err());
        assert!(autoencoder(10, &[4, 0, 4], 0).is_err());
    }
}
