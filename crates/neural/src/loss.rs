//! Training objectives.
//!
//! Every loss returns the scalar loss and its gradient with respect to the
//! prediction, already averaged over the batch so optimizer step sizes are
//! batch-size independent.
//!
//! [`SsimDissimilarityLoss`] is the paper's contribution-enabling piece:
//! it trains the autoencoder to *maximise* SSIM by minimising
//! `1 − mean-SSIM`, using the analytic gradient from
//! [`metrics::ssim_with_grad`].

use metrics::SsimConfig;
use ndtensor::Tensor;
use vision::Image;

use crate::{NeuralError, Result};

/// A differentiable training objective.
pub trait Loss: std::fmt::Debug + Send {
    /// Scalar loss for a batch.
    ///
    /// # Errors
    ///
    /// Fails when prediction and target shapes differ or are incompatible
    /// with the loss.
    fn loss(&self, prediction: &Tensor, target: &Tensor) -> Result<f32>;

    /// `∂loss/∂prediction`, same shape as the prediction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Loss::loss`].
    fn grad(&self, prediction: &Tensor, target: &Tensor) -> Result<Tensor>;

    /// Short display name for reports.
    fn name(&self) -> &'static str;
}

fn check_same_shape(op: &'static str, prediction: &Tensor, target: &Tensor) -> Result<()> {
    if prediction.shape() != target.shape() {
        return Err(NeuralError::invalid(
            op,
            format!(
                "prediction shape {} does not match target shape {}",
                prediction.shape(),
                target.shape()
            ),
        ));
    }
    if prediction.is_empty() {
        return Err(NeuralError::invalid(op, "empty batch"));
    }
    Ok(())
}

/// Mean squared error over all elements: `L = (1/K) Σ (p − t)²`.
#[derive(Debug, Default, Clone, Copy)]
pub struct MseLoss;

impl MseLoss {
    /// Creates an MSE loss.
    pub fn new() -> Self {
        MseLoss
    }
}

impl Loss for MseLoss {
    fn loss(&self, prediction: &Tensor, target: &Tensor) -> Result<f32> {
        check_same_shape("MseLoss", prediction, target)?;
        let mut acc = 0.0f64;
        for (&p, &t) in prediction.as_slice().iter().zip(target.as_slice()) {
            let d = (p - t) as f64;
            acc += d * d;
        }
        Ok((acc / prediction.len() as f64) as f32)
    }

    fn grad(&self, prediction: &Tensor, target: &Tensor) -> Result<Tensor> {
        check_same_shape("MseLoss", prediction, target)?;
        let scale = 2.0 / prediction.len() as f32;
        Ok(prediction.zip_map(target, |p, t| scale * (p - t))?)
    }

    fn name(&self) -> &'static str {
        "mse"
    }
}

/// Huber (smooth-L1) loss with transition point `delta`; quadratic near
/// zero, linear in the tails. More robust to steering-label outliers than
/// plain MSE.
#[derive(Debug, Clone, Copy)]
pub struct HuberLoss {
    delta: f32,
}

impl HuberLoss {
    /// Creates a Huber loss.
    ///
    /// # Errors
    ///
    /// Fails when `delta` is not finite or not positive.
    pub fn new(delta: f32) -> Result<Self> {
        if !delta.is_finite() || delta <= 0.0 {
            return Err(NeuralError::invalid(
                "HuberLoss::new",
                format!("delta must be positive and finite, got {delta}"),
            ));
        }
        Ok(HuberLoss { delta })
    }
}

impl Loss for HuberLoss {
    fn loss(&self, prediction: &Tensor, target: &Tensor) -> Result<f32> {
        check_same_shape("HuberLoss", prediction, target)?;
        let d = self.delta;
        let mut acc = 0.0f64;
        for (&p, &t) in prediction.as_slice().iter().zip(target.as_slice()) {
            let r = (p - t).abs();
            acc += if r <= d {
                0.5 * (r * r) as f64
            } else {
                (d * (r - 0.5 * d)) as f64
            };
        }
        Ok((acc / prediction.len() as f64) as f32)
    }

    fn grad(&self, prediction: &Tensor, target: &Tensor) -> Result<Tensor> {
        check_same_shape("HuberLoss", prediction, target)?;
        let d = self.delta;
        let scale = 1.0 / prediction.len() as f32;
        Ok(prediction.zip_map(target, |p, t| {
            let r = p - t;
            scale * if r.abs() <= d { r } else { d * r.signum() }
        })?)
    }

    fn name(&self) -> &'static str {
        "huber"
    }
}

/// SSIM dissimilarity loss for image reconstruction:
/// `L = (1/N) Σ_batch (1 − SSIM(target_i, prediction_i))`.
///
/// Predictions and targets are flattened images `[N, H·W]`; the
/// constructor pins the image geometry so rows can be reshaped.
#[derive(Debug, Clone)]
pub struct SsimDissimilarityLoss {
    height: usize,
    width: usize,
    config: SsimConfig,
}

impl SsimDissimilarityLoss {
    /// Creates the loss for `height × width` images with the given SSIM
    /// configuration.
    ///
    /// # Errors
    ///
    /// Fails when the window does not fit the image geometry.
    pub fn new(height: usize, width: usize, config: SsimConfig) -> Result<Self> {
        if height == 0 || width == 0 {
            return Err(NeuralError::invalid(
                "SsimDissimilarityLoss::new",
                "image dimensions must be non-zero",
            ));
        }
        if config.window == 0 || config.window > height || config.window > width {
            return Err(NeuralError::invalid(
                "SsimDissimilarityLoss::new",
                format!(
                    "window {} incompatible with image {height}x{width}",
                    config.window
                ),
            ));
        }
        Ok(SsimDissimilarityLoss {
            height,
            width,
            config,
        })
    }

    /// The SSIM configuration in use.
    pub fn config(&self) -> &SsimConfig {
        &self.config
    }

    fn rows<'t>(&self, op: &'static str, t: &'t Tensor) -> Result<Vec<&'t [f32]>> {
        let hw = self.height * self.width;
        if t.rank() != 2 || t.shape().dims()[1] != hw {
            return Err(NeuralError::invalid(
                op,
                format!("expected [N, {hw}] tensor, got {}", t.shape()),
            ));
        }
        Ok(t.as_slice().chunks(hw).collect())
    }

    fn to_image(&self, row: &[f32]) -> Result<Image> {
        Image::from_tensor(Tensor::from_vec([self.height, self.width], row.to_vec())?)
            .map_err(|e| NeuralError::invalid("SsimDissimilarityLoss", e.to_string()))
    }
}

impl Loss for SsimDissimilarityLoss {
    fn loss(&self, prediction: &Tensor, target: &Tensor) -> Result<f32> {
        check_same_shape("SsimDissimilarityLoss", prediction, target)?;
        let preds = self.rows("SsimDissimilarityLoss", prediction)?;
        let tgts = self.rows("SsimDissimilarityLoss", target)?;
        let mut acc = 0.0f64;
        for (p, t) in preds.iter().zip(&tgts) {
            let xi = self.to_image(t)?;
            let yi = self.to_image(p)?;
            let s = metrics::ssim(&xi, &yi, &self.config)
                .map_err(|e| NeuralError::invalid("SsimDissimilarityLoss", e.to_string()))?;
            acc += 1.0 - s as f64;
        }
        Ok((acc / preds.len() as f64) as f32)
    }

    fn grad(&self, prediction: &Tensor, target: &Tensor) -> Result<Tensor> {
        check_same_shape("SsimDissimilarityLoss", prediction, target)?;
        let preds = self.rows("SsimDissimilarityLoss", prediction)?;
        let tgts = self.rows("SsimDissimilarityLoss", target)?;
        let n = preds.len();
        let hw = self.height * self.width;
        let mut grad = vec![0.0f32; n * hw];
        for (i, (p, t)) in preds.iter().zip(&tgts).enumerate() {
            let xi = self.to_image(t)?;
            let yi = self.to_image(p)?;
            let (_, g) = metrics::ssim_with_grad(&xi, &yi, &self.config)
                .map_err(|e| NeuralError::invalid("SsimDissimilarityLoss", e.to_string()))?;
            // L = 1 − SSIM, so ∂L/∂y = −∂SSIM/∂y; batch-mean divides by N.
            for (dst, &gv) in grad[i * hw..(i + 1) * hw].iter_mut().zip(g.as_slice()) {
                *dst = -gv / n as f32;
            }
        }
        Ok(Tensor::from_vec(prediction.shape().clone(), grad)?)
    }

    fn name(&self) -> &'static str {
        "ssim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(p: Vec<f32>, t: Vec<f32>) -> (Tensor, Tensor) {
        let n = p.len();
        (
            Tensor::from_vec([1, n], p).unwrap(),
            Tensor::from_vec([1, n], t).unwrap(),
        )
    }

    #[test]
    fn mse_known_values() {
        let (p, t) = pair(vec![1.0, 2.0], vec![0.0, 0.0]);
        let l = MseLoss::new();
        assert!((l.loss(&p, &t).unwrap() - 2.5).abs() < 1e-6);
        let g = l.grad(&p, &t).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 2.0]); // 2(p−t)/2
        assert_eq!(l.name(), "mse");
    }

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let (p, t) = pair(vec![0.3, 0.7], vec![0.3, 0.7]);
        let l = MseLoss::new();
        assert_eq!(l.loss(&p, &t).unwrap(), 0.0);
        assert!(l.grad(&p, &t).unwrap().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn losses_validate_shapes() {
        let p = Tensor::zeros([1, 2]);
        let t = Tensor::zeros([1, 3]);
        assert!(MseLoss::new().loss(&p, &t).is_err());
        assert!(HuberLoss::new(1.0).unwrap().grad(&p, &t).is_err());
        let empty = Tensor::zeros([0, 2]);
        assert!(MseLoss::new().loss(&empty, &empty).is_err());
    }

    #[test]
    fn huber_transitions_at_delta() {
        let l = HuberLoss::new(1.0).unwrap();
        // |r| = 0.5 < delta → quadratic: 0.5·0.25 = 0.125
        let (p, t) = pair(vec![0.5], vec![0.0]);
        assert!((l.loss(&p, &t).unwrap() - 0.125).abs() < 1e-6);
        // |r| = 3 > delta → linear: 1·(3 − 0.5) = 2.5
        let (p, t) = pair(vec![3.0], vec![0.0]);
        assert!((l.loss(&p, &t).unwrap() - 2.5).abs() < 1e-6);
        // Gradient saturates at ±delta/len.
        let g = l.grad(&p, &t).unwrap();
        assert_eq!(g.as_slice(), &[1.0]);
        assert!(HuberLoss::new(0.0).is_err());
        assert!(HuberLoss::new(-1.0).is_err());
    }

    #[test]
    fn huber_gradient_matches_finite_differences() {
        let l = HuberLoss::new(0.7).unwrap();
        let (p, t) = pair(vec![0.2, -1.5, 0.9], vec![0.0, 0.0, 0.0]);
        let g = l.grad(&p, &t).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= eps;
            let numeric = (l.loss(&pp, &t).unwrap() - l.loss(&pm, &t).unwrap()) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-3, "at {i}");
        }
    }

    fn ssim_fixture() -> (SsimDissimilarityLoss, Tensor, Tensor) {
        let loss = SsimDissimilarityLoss::new(8, 10, SsimConfig::with_window(5)).unwrap();
        let target = Tensor::from_fn([2, 80], |i| {
            0.3 + 0.4 * (((i[1] / 10 + i[1] % 10) % 5) as f32 / 4.0) + i[0] as f32 * 0.05
        });
        let pred = target.map(|v| (v + 0.1).min(1.0));
        (loss, pred, target)
    }

    #[test]
    fn ssim_loss_zero_at_identity() {
        let (loss, _, target) = ssim_fixture();
        let l = loss.loss(&target, &target).unwrap();
        assert!(l.abs() < 1e-6, "loss at identity: {l}");
    }

    #[test]
    fn ssim_loss_positive_otherwise_and_bounded() {
        let (loss, pred, target) = ssim_fixture();
        let l = loss.loss(&pred, &target).unwrap();
        assert!(l > 0.0 && l <= 2.0);
        assert_eq!(loss.name(), "ssim");
    }

    #[test]
    fn ssim_loss_gradient_matches_finite_differences() {
        let (loss, pred, target) = ssim_fixture();
        let g = loss.grad(&pred, &target).unwrap();
        let eps = 1e-3;
        for probe in [0usize, 37, 80, 159] {
            let mut pp = pred.clone();
            pp.as_mut_slice()[probe] += eps;
            let mut pm = pred.clone();
            pm.as_mut_slice()[probe] -= eps;
            let numeric =
                (loss.loss(&pp, &target).unwrap() - loss.loss(&pm, &target).unwrap()) / (2.0 * eps);
            let analytic = g.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-3 + 0.05 * numeric.abs(),
                "grad at {probe}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn ssim_loss_validates_construction_and_shapes() {
        assert!(SsimDissimilarityLoss::new(0, 5, SsimConfig::default()).is_err());
        assert!(SsimDissimilarityLoss::new(5, 5, SsimConfig::with_window(7)).is_err());
        let loss = SsimDissimilarityLoss::new(4, 4, SsimConfig::with_window(3)).unwrap();
        let bad = Tensor::zeros([1, 15]);
        assert!(loss.loss(&bad, &bad).is_err());
        let not2d = Tensor::zeros([16]);
        assert!(loss.loss(&not2d, &not2d).is_err());
    }
}
