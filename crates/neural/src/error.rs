use std::fmt;

use ndtensor::TensorError;

/// Error type for network construction, training and serialization.
#[derive(Debug)]
pub enum NeuralError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A network- or layer-level invariant was violated.
    Invalid {
        /// Short name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// `backward` was called without a preceding `forward_train`.
    MissingCache {
        /// Name of the layer missing its forward cache.
        layer: &'static str,
    },
    /// Weight (de)serialization failed.
    Serde(String),
    /// File I/O failed while saving or loading a model.
    Io(std::io::Error),
}

impl NeuralError {
    /// Builds an [`NeuralError::Invalid`].
    pub fn invalid(op: &'static str, reason: impl Into<String>) -> Self {
        NeuralError::Invalid {
            op,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NeuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuralError::Tensor(e) => write!(f, "tensor error: {e}"),
            NeuralError::Invalid { op, reason } => write!(f, "{op}: {reason}"),
            NeuralError::MissingCache { layer } => {
                write!(f, "{layer}: backward called without forward_train")
            }
            NeuralError::Serde(msg) => write!(f, "serialization error: {msg}"),
            NeuralError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NeuralError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NeuralError::Tensor(e) => Some(e),
            NeuralError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NeuralError {
    fn from(e: TensorError) -> Self {
        NeuralError::Tensor(e)
    }
}

impl From<std::io::Error> for NeuralError {
    fn from(e: std::io::Error) -> Self {
        NeuralError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NeuralError::invalid("fit", "empty dataset")
            .to_string()
            .contains("fit"));
        assert!(NeuralError::MissingCache { layer: "Dense" }
            .to_string()
            .contains("Dense"));
        assert!(NeuralError::Serde("bad json".into())
            .to_string()
            .contains("bad json"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeuralError>();
    }
}
