//! First-order optimizers: SGD (with momentum) and Adam.
//!
//! Optimizer state is keyed positionally on the parameter list, which is
//! stable because a [`crate::Network`]'s layer structure is fixed after
//! construction. Both optimizers validate that the parameter list keeps
//! the same length and shapes across steps.

use ndtensor::Tensor;

use crate::layer::ParamGrad;
use crate::{NeuralError, Result};

/// A first-order optimizer over a fixed parameter list.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update step given parameters and accumulated gradients.
    /// Gradients are left untouched (callers zero them explicitly).
    ///
    /// # Errors
    ///
    /// Fails when the parameter list changes shape between calls.
    fn step(&mut self, params: &mut [ParamGrad<'_>]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

fn validate_lr(op: &'static str, lr: f32) -> Result<()> {
    if !lr.is_finite() || lr <= 0.0 {
        return Err(NeuralError::invalid(
            op,
            format!("learning rate must be positive and finite, got {lr}"),
        ));
    }
    Ok(())
}

fn check_state(op: &'static str, state: &[Tensor], params: &[ParamGrad<'_>]) -> Result<()> {
    if state.len() != params.len() {
        return Err(NeuralError::invalid(
            op,
            format!(
                "parameter count changed: optimizer saw {}, now {}",
                state.len(),
                params.len()
            ),
        ));
    }
    for (s, pg) in state.iter().zip(params) {
        if s.shape() != pg.param.shape() {
            return Err(NeuralError::invalid(
                op,
                format!(
                    "parameter shape changed: {} vs {}",
                    s.shape(),
                    pg.param.shape()
                ),
            ));
        }
    }
    Ok(())
}

/// Stochastic gradient descent with classical momentum:
/// `v ← μ·v − lr·g`, `θ ← θ + v`.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD without momentum.
    ///
    /// # Errors
    ///
    /// Fails when `lr` is not positive and finite.
    pub fn new(lr: f32) -> Result<Self> {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `μ ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Fails when `lr` is invalid or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Result<Self> {
        validate_lr("Sgd::new", lr)?;
        if !momentum.is_finite() || !(0.0..1.0).contains(&momentum) {
            return Err(NeuralError::invalid(
                "Sgd::new",
                format!("momentum must be in [0, 1), got {momentum}"),
            ));
        }
        Ok(Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        })
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamGrad<'_>]) -> Result<()> {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|pg| Tensor::zeros(pg.param.shape().clone()))
                .collect();
        }
        check_state("Sgd::step", &self.velocity, params)?;
        for (v, pg) in self.velocity.iter_mut().zip(params.iter_mut()) {
            if self.momentum > 0.0 {
                for (vi, &gi) in v.as_mut_slice().iter_mut().zip(pg.grad.as_slice()) {
                    *vi = self.momentum * *vi - self.lr * gi;
                }
                pg.param.axpy(1.0, v)?;
            } else {
                pg.param.axpy(-self.lr, pg.grad)?;
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard hyper-parameters `β1 = 0.9`, `β2 = 0.999`,
    /// `ε = 1e-8`.
    ///
    /// # Errors
    ///
    /// Fails when `lr` is not positive and finite.
    pub fn new(lr: f32) -> Result<Self> {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with custom moment decays.
    ///
    /// # Errors
    ///
    /// Fails when `lr` is invalid or either beta is outside `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Result<Self> {
        validate_lr("Adam::new", lr)?;
        for (name, b) in [("beta1", beta1), ("beta2", beta2)] {
            if !b.is_finite() || !(0.0..1.0).contains(&b) {
                return Err(NeuralError::invalid(
                    "Adam::new",
                    format!("{name} must be in [0, 1), got {b}"),
                ));
            }
        }
        Ok(Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamGrad<'_>]) -> Result<()> {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|pg| Tensor::zeros(pg.param.shape().clone()))
                .collect();
            self.v = self.m.clone();
        }
        check_state("Adam::step", &self.m, params)?;
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((m, v), pg) in self.m.iter_mut().zip(&mut self.v).zip(params.iter_mut()) {
            let g = pg.grad.as_slice();
            let p = pg.param.as_mut_slice();
            for i in 0..g.len() {
                let gi = g[i];
                let mi = &mut m.as_mut_slice()[i];
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                let vi = &mut v.as_mut_slice()[i];
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_step(opt: &mut dyn Optimizer, theta: &mut Tensor) {
        // Minimise f(θ) = ½‖θ‖²; ∇f = θ.
        let mut grad = theta.clone();
        let mut pgs = vec![ParamGrad {
            param: theta,
            grad: &mut grad,
        }];
        opt.step(&mut pgs).unwrap();
    }

    #[test]
    fn construction_validates() {
        assert!(Sgd::new(0.0).is_err());
        assert!(Sgd::new(-1.0).is_err());
        assert!(Sgd::with_momentum(0.1, 1.0).is_err());
        assert!(Adam::new(f32::NAN).is_err());
        assert!(Adam::with_betas(0.1, 0.9, 1.5).is_err());
    }

    #[test]
    fn sgd_shrinks_quadratic() {
        let mut theta = Tensor::from_vec([3], vec![1.0, -2.0, 0.5]).unwrap();
        let mut opt = Sgd::new(0.1).unwrap();
        let before = theta.norm_l2();
        for _ in 0..50 {
            quadratic_step(&mut opt, &mut theta);
        }
        assert!(theta.norm_l2() < before * 0.01);
    }

    #[test]
    fn sgd_with_momentum_converges_on_quadratic() {
        let mut theta = Tensor::from_vec([2], vec![5.0, -5.0]).unwrap();
        let mut opt = Sgd::with_momentum(0.05, 0.9).unwrap();
        for _ in 0..200 {
            quadratic_step(&mut opt, &mut theta);
        }
        assert!(theta.norm_l2() < 0.05, "‖θ‖ = {}", theta.norm_l2());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut theta = Tensor::from_vec([4], vec![3.0, -1.0, 2.0, -4.0]).unwrap();
        let mut opt = Adam::new(0.2).unwrap();
        for _ in 0..200 {
            quadratic_step(&mut opt, &mut theta);
        }
        assert!(theta.norm_l2() < 0.05, "‖θ‖ = {}", theta.norm_l2());
    }

    #[test]
    fn plain_sgd_is_exact_update() {
        let mut theta = Tensor::from_vec([1], vec![1.0]).unwrap();
        let mut opt = Sgd::new(0.25).unwrap();
        quadratic_step(&mut opt, &mut theta);
        assert!((theta.as_slice()[0] - 0.75).abs() < 1e-7);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01).unwrap();
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn optimizer_rejects_changed_parameter_list() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer_a = Dense::new(2, 2, &mut rng).unwrap();
        let mut layer_b = Dense::new(3, 3, &mut rng).unwrap();
        let mut opt = Sgd::new(0.1).unwrap();
        opt.step(&mut layer_a.params_and_grads()).unwrap();
        assert!(opt.step(&mut layer_b.params_and_grads()).is_err());
        let mut opt2 = Adam::new(0.1).unwrap();
        opt2.step(&mut layer_a.params_and_grads()).unwrap();
        let mut one = layer_a.params_and_grads();
        let mut partial = one.drain(..1).collect::<Vec<_>>();
        assert!(opt2.step(&mut partial).is_err());
    }
}
