//! JSON (de)serialization of trained networks.
//!
//! A [`crate::Network`] round-trips through [`NetworkSpec`], a plain data
//! description (layer kinds + weights) that serde can handle. JSON keeps
//! saved models human-inspectable; weights are exact because `f32` values
//! survive the decimal round-trip performed by `serde_json`.

use std::path::Path;

use ndtensor::{Conv2dSpec, Tensor};
use serde::{Deserialize, Serialize};

use crate::layer::{
    Conv2d, Dense, Dropout, Flatten, Layer, LayerKind, MaxPool2d, ReLU, Sigmoid, Tanh,
};
use crate::{Network, NeuralError, Result};

/// A shape + flat data pair, the serialized form of a [`Tensor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorData {
    /// Dimension list, outermost first.
    pub shape: Vec<usize>,
    /// Row-major element data.
    pub data: Vec<f32>,
}

impl TensorData {
    fn from_tensor(t: &Tensor) -> Self {
        TensorData {
            shape: t.shape().dims().to_vec(), // sncheck:allow(hot-path-transitive-alloc): snapshot serialization owns its bytes by design; reached from scoring only when a recorder requests a weight snapshot
            data: t.as_slice().to_vec(), // sncheck:allow(hot-path-transitive-alloc): same — the serialized copy must outlive the tensor it snapshots
        }
    }

    fn into_tensor(self) -> Result<Tensor> {
        Ok(Tensor::from_vec(self.shape, self.data)?)
    }
}

/// Serialized form of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully-connected layer.
    Dense {
        /// Weight matrix `[out, in]`.
        weight: TensorData,
        /// Bias vector `[out]`.
        bias: TensorData,
    },
    /// 2-D convolution.
    Conv2d {
        /// Kernel bank `[F, C, KH, KW]`.
        weight: TensorData,
        /// Bias vector `[F]`.
        bias: TensorData,
        /// `(stride_h, stride_w)`.
        stride: (usize, usize),
        /// `(pad_h, pad_w)`.
        padding: (usize, usize),
    },
    /// Rectified linear activation.
    ReLU,
    /// Logistic sigmoid activation.
    Sigmoid,
    /// Hyperbolic tangent activation.
    Tanh,
    /// Batch-preserving flatten.
    Flatten,
    /// Non-overlapping max pooling.
    MaxPool2d {
        /// Pooling window.
        window: (usize, usize),
    },
    /// Inverted dropout.
    Dropout {
        /// Drop probability in thousandths (300 = 0.3).
        rate_milli: u32,
    },
}

/// Serialized form of a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

/// Extracts a serializable spec from a network.
///
/// # Errors
///
/// Currently infallible for all built-in layers; returns an error if a
/// layer reports parameters inconsistent with its kind.
pub fn to_spec(network: &Network) -> Result<NetworkSpec> {
    let mut layers = Vec::with_capacity(network.layer_count()); // sncheck:allow(hot-path-transitive-alloc): spec construction is a serialization step, run when recording snapshots, not per frame
    for layer in network.layers() {
        let params = layer.params();
        let spec = match layer.kind() {
            LayerKind::Dense { .. } => {
                let [w, b] = two_params("Dense", &params)?;
                LayerSpec::Dense {
                    weight: TensorData::from_tensor(w),
                    bias: TensorData::from_tensor(b),
                }
            }
            LayerKind::Conv2d { spec, .. } => {
                let [w, b] = two_params("Conv2d", &params)?;
                LayerSpec::Conv2d {
                    weight: TensorData::from_tensor(w),
                    bias: TensorData::from_tensor(b),
                    stride: spec.stride,
                    padding: spec.padding,
                }
            }
            LayerKind::ReLU => LayerSpec::ReLU,
            LayerKind::Sigmoid => LayerSpec::Sigmoid,
            LayerKind::Tanh => LayerSpec::Tanh,
            LayerKind::Flatten => LayerSpec::Flatten,
            LayerKind::MaxPool2d { window } => LayerSpec::MaxPool2d { window },
            LayerKind::Dropout { rate_milli } => LayerSpec::Dropout { rate_milli },
        };
        layers.push(spec);
    }
    Ok(NetworkSpec { layers })
}

fn two_params<'a>(kind: &'static str, params: &[&'a Tensor]) -> Result<[&'a Tensor; 2]> {
    match params {
        [w, b] => Ok([w, b]),
        _ => Err(NeuralError::invalid(
            "to_spec",
            format!(
                "{kind} layer reported {} parameter tensors, expected 2",
                params.len()
            ),
        )),
    }
}

/// Reconstructs a network from its spec.
///
/// # Errors
///
/// Fails when any stored tensor is malformed (shape/data mismatch) or a
/// layer rejects its weights.
pub fn from_spec(spec: NetworkSpec) -> Result<Network> {
    let mut net = Network::new();
    for layer in spec.layers {
        let boxed: Box<dyn Layer> = match layer {
            LayerSpec::Dense { weight, bias } => Box::new(Dense::from_parts(
                weight.into_tensor()?,
                bias.into_tensor()?,
            )?),
            LayerSpec::Conv2d {
                weight,
                bias,
                stride,
                padding,
            } => Box::new(Conv2d::from_parts(
                weight.into_tensor()?,
                bias.into_tensor()?,
                Conv2dSpec::new(stride, padding),
            )?),
            LayerSpec::ReLU => Box::new(ReLU::new()),
            LayerSpec::Sigmoid => Box::new(Sigmoid::new()),
            LayerSpec::Tanh => Box::new(Tanh::new()),
            LayerSpec::Flatten => Box::new(Flatten::new()),
            LayerSpec::MaxPool2d { window } => Box::new(MaxPool2d::new(window)?),
            // The training RNG stream is not part of the persisted state;
            // reloaded models are inference artifacts.
            LayerSpec::Dropout { rate_milli } => {
                Box::new(Dropout::new(rate_milli as f32 / 1000.0, 0)?)
            }
        };
        net = net.with_boxed(boxed);
    }
    Ok(net)
}

/// Deep-copies a network by round-tripping its spec. `Network` holds
/// boxed trait objects and is deliberately not `Clone`; this is the
/// supported way to duplicate one (e.g. to share a trained CNN across
/// several pipelines).
///
/// # Errors
///
/// Propagates spec-extraction errors.
pub fn clone_network(network: &Network) -> Result<Network> {
    from_spec(to_spec(network)?)
}

/// Serializes a network to a JSON string.
///
/// # Errors
///
/// Propagates spec-extraction and JSON errors.
pub fn to_json(network: &Network) -> Result<String> {
    let spec = to_spec(network)?;
    serde_json::to_string(&spec).map_err(|e| NeuralError::Serde(e.to_string()))
}

/// Deserializes a network from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON or invalid layer data.
pub fn from_json(json: &str) -> Result<Network> {
    let spec: NetworkSpec =
        serde_json::from_str(json).map_err(|e| NeuralError::Serde(e.to_string()))?;
    from_spec(spec)
}

/// Saves a network to a JSON file.
///
/// # Errors
///
/// Propagates serialization and I/O errors.
pub fn save_json(network: &Network, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, to_json(network)?)?;
    Ok(())
}

/// Loads a network from a JSON file.
///
/// # Errors
///
/// Propagates I/O and deserialization errors.
pub fn load_json(path: impl AsRef<Path>) -> Result<Network> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{autoencoder, pilotnet, PilotNetConfig};

    #[test]
    fn autoencoder_roundtrips_exactly() {
        let net = autoencoder(40, &[8, 4, 8], 3).unwrap();
        let x = Tensor::from_fn([2, 40], |i| ((i[0] * 40 + i[1]) % 13) as f32 / 12.0);
        let before = net.forward(&x).unwrap();
        let back = from_json(&to_json(&net).unwrap()).unwrap();
        let after = back.forward(&x).unwrap();
        assert_eq!(before, after);
        assert_eq!(back.layer_count(), net.layer_count());
    }

    #[test]
    fn pilotnet_roundtrips_exactly() {
        let cfg = PilotNetConfig {
            height: 40,
            width: 60,
            conv_channels: [2, 3, 4, 4, 4],
            dense_widths: vec![8],
        };
        let net = pilotnet(&cfg, 9).unwrap();
        let x = Tensor::from_fn([1, 1, 40, 60], |i| ((i[2] * 7 + i[3]) % 5) as f32 / 4.0);
        let before = net.forward(&x).unwrap();
        let back = from_json(&to_json(&net).unwrap()).unwrap();
        assert_eq!(back.forward(&x).unwrap(), before);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("saliency_novelty_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.json");
        let net = autoencoder(10, &[4], 1).unwrap();
        save_json(&net, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(back.param_count(), net.param_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"layers\": [{\"Dense\": {\"weight\": {\"shape\": [2, 2], \"data\": [1.0]}, \"bias\": {\"shape\": [2], \"data\": [0.0, 0.0]}}}]}").is_err());
    }

    #[test]
    fn dropout_roundtrips_as_identity_at_inference() {
        let net = Network::new()
            .with(Dropout::new(0.25, 9).unwrap())
            .with(crate::layer::ReLU::new());
        let x = Tensor::from_fn([2, 5], |i| i[1] as f32 - 2.0);
        let back = from_json(&to_json(&net).unwrap()).unwrap();
        assert_eq!(back.forward(&x).unwrap(), net.forward(&x).unwrap());
        assert!(matches!(
            to_spec(&back).unwrap().layers[0],
            LayerSpec::Dropout { rate_milli: 250 }
        ));
    }

    #[test]
    fn spec_preserves_structure() {
        let net = autoencoder(6, &[3], 0).unwrap();
        let spec = to_spec(&net).unwrap();
        assert_eq!(spec.layers.len(), 4);
        assert!(matches!(spec.layers[0], LayerSpec::Dense { .. }));
        assert!(matches!(spec.layers[1], LayerSpec::ReLU));
        assert!(matches!(spec.layers[3], LayerSpec::Sigmoid));
    }
}
