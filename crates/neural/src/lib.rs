#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! A from-scratch CPU deep-learning library.
//!
//! The paper's pipeline needs two trained models — a PilotNet-style
//! steering CNN and a small fully-connected autoencoder — plus access to
//! every intermediate feature map (for VisualBackProp) and a custom SSIM
//! training objective. Rather than binding a heavyweight framework, this
//! crate implements exactly what is required, on top of [`ndtensor`]:
//!
//! * [`layer`] — Dense, Conv2d, ReLU, Sigmoid, Tanh, Flatten, MaxPool2d,
//!   each with a cached forward pass and an exact backward pass,
//! * [`Network`] — a sequential container with training/inference forward,
//!   backpropagation, activation collection and introspection,
//! * [`loss`] — MSE, Huber and the paper's SSIM dissimilarity objective,
//! * [`optim`] — SGD (with momentum) and Adam,
//! * [`train`] — a mini-batch trainer with shuffling, gradient clipping
//!   and per-epoch reporting,
//! * [`models`] — ready-made builders for the paper's two architectures,
//! * [`serialize`] — JSON save/load of trained networks,
//! * [`gradcheck`] — finite-difference utilities used heavily in tests.
//!
//! Everything is deterministic given a seed; batches always lead the
//! shape (`[N, features]` or `[N, C, H, W]`).
//!
//! # Example
//!
//! ```
//! use neural::{layer::Dense, layer::ReLU, Network};
//! use ndtensor::Tensor;
//!
//! # fn main() -> Result<(), neural::NeuralError> {
//! let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
//! let net = Network::new()
//!     .with(Dense::new(4, 8, &mut rng)?)
//!     .with(ReLU::new())
//!     .with(Dense::new(8, 1, &mut rng)?);
//! let out = net.forward(&Tensor::zeros([2, 4]))?;
//! assert_eq!(out.shape().dims(), &[2, 1]);
//! # Ok(())
//! # }
//! ```

pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod models;
pub mod optim;
pub mod serialize;
pub mod train;

mod error;
mod network;

pub use error::NeuralError;
pub use layer::{Layer, LayerKind, ParamGrad};
pub use network::Network;
pub use train::{fit, fit_recorded, LrSchedule, TrainConfig, TrainReport};

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NeuralError>;
