//! Mini-batch training loop.
//!
//! The paper trains both of its models the same way: shuffled mini-batches
//! of 32, plain first-order optimization. [`fit`] implements that loop
//! generically over any [`crate::Network`], [`Loss`] and [`Optimizer`],
//! with optional global-norm gradient clipping (which keeps early SSIM
//! training stable).

use ndtensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::loss::Loss;
use crate::optim::Optimizer;
use crate::{Network, NeuralError, Result};

/// Learning-rate schedule applied at the start of each epoch, as a
/// multiple of the optimizer's learning rate at the start of training.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Keep the base learning rate throughout.
    Constant,
    /// Multiply the rate by `factor` every `every_epochs` epochs.
    StepDecay {
        /// Epoch interval between decays (must be non-zero).
        every_epochs: usize,
        /// Multiplicative decay per step (in `(0, 1]`).
        factor: f32,
    },
    /// Cosine annealing from the base rate down to `min_fraction` of it
    /// over the whole run.
    Cosine {
        /// Final rate as a fraction of the base rate (in `[0, 1]`).
        min_fraction: f32,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier for `epoch` (0-based) of
    /// `total_epochs`.
    pub fn multiplier(&self, epoch: usize, total_epochs: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay {
                every_epochs,
                factor,
            } => factor.powi((epoch / every_epochs.max(1)) as i32),
            LrSchedule::Cosine { min_fraction } => {
                let t = if total_epochs <= 1 {
                    0.0
                } else {
                    epoch as f32 / (total_epochs - 1) as f32
                };
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                min_fraction + (1.0 - min_fraction) * cos
            }
        }
    }

    fn validate(&self) -> Result<()> {
        match *self {
            LrSchedule::Constant => Ok(()),
            LrSchedule::StepDecay {
                every_epochs,
                factor,
            } => {
                if every_epochs == 0 || !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                    return Err(NeuralError::invalid(
                        "LrSchedule",
                        format!("step decay needs every_epochs > 0 and factor in (0, 1], got {every_epochs}, {factor}"),
                    ));
                }
                Ok(())
            }
            LrSchedule::Cosine { min_fraction } => {
                if !min_fraction.is_finite() || !(0.0..=1.0).contains(&min_fraction) {
                    return Err(NeuralError::invalid(
                        "LrSchedule",
                        format!("cosine min_fraction must be in [0, 1], got {min_fraction}"),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Configuration for [`fit`].
///
/// # Example
///
/// ```
/// use neural::TrainConfig;
///
/// let cfg = TrainConfig::new(10, 32).with_seed(7).with_grad_clip(5.0);
/// assert_eq!(cfg.epochs, 10);
/// assert_eq!(cfg.batch_size, 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 32).
    pub batch_size: usize,
    /// Seed for the per-epoch shuffle.
    pub shuffle_seed: u64,
    /// Optional global-norm gradient clip.
    pub grad_clip: Option<f32>,
    /// Print a progress line per epoch when `true`.
    pub verbose: bool,
    /// Per-epoch learning-rate schedule.
    pub lr_schedule: LrSchedule,
}

impl TrainConfig {
    /// Creates a config with the given epoch count and batch size.
    pub fn new(epochs: usize, batch_size: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size,
            shuffle_seed: 0,
            grad_clip: None,
            verbose: false,
            lr_schedule: LrSchedule::Constant,
        }
    }

    /// Sets the shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.shuffle_seed = seed;
        self
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        self.grad_clip = Some(max_norm);
        self
    }

    /// Enables per-epoch progress printing.
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Sets the learning-rate schedule.
    pub fn with_lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr_schedule = schedule;
        self
    }

    fn validate(&self, n: usize) -> Result<()> {
        if self.epochs == 0 {
            return Err(NeuralError::invalid("fit", "epochs must be non-zero"));
        }
        if self.batch_size == 0 {
            return Err(NeuralError::invalid("fit", "batch_size must be non-zero"));
        }
        if n == 0 {
            return Err(NeuralError::invalid("fit", "training set is empty"));
        }
        if let Some(c) = self.grad_clip {
            if !c.is_finite() || c <= 0.0 {
                return Err(NeuralError::invalid(
                    "fit",
                    format!("grad_clip must be positive and finite, got {c}"),
                ));
            }
        }
        self.lr_schedule.validate()?;
        Ok(())
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// The final epoch's mean loss.
    ///
    /// # Panics
    ///
    /// Panics when the report is empty (cannot happen for reports produced
    /// by [`fit`], which validates `epochs > 0`).
    pub fn final_loss(&self) -> f32 {
        *self
            .epoch_losses
            .last()
            .expect("fit always records at least one epoch") // sncheck:allow(no-panic-in-lib): documented under # Panics; fit validates epochs > 0
    }

    /// `true` when the last epoch improved on the first.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

/// Copies the rows of `t` (first axis) selected by `indices` into a new
/// tensor of shape `[indices.len(), rest…]`.
///
/// # Errors
///
/// Fails when `t` has no batch axis or an index is out of range.
pub fn gather_rows(t: &Tensor, indices: &[usize]) -> Result<Tensor> {
    if t.rank() == 0 {
        return Err(NeuralError::invalid(
            "gather_rows",
            "tensor has no batch axis",
        ));
    }
    let n = t.shape().dims()[0];
    let row_len: usize = t.shape().dims()[1..].iter().product();
    let mut out = Vec::with_capacity(indices.len() * row_len);
    for &i in indices {
        if i >= n {
            return Err(NeuralError::invalid(
                "gather_rows",
                format!("row index {i} out of range for batch of {n}"),
            ));
        }
        out.extend_from_slice(&t.as_slice()[i * row_len..(i + 1) * row_len]);
    }
    let mut dims = vec![indices.len()];
    dims.extend_from_slice(&t.shape().dims()[1..]);
    Ok(Tensor::from_vec(Shape::from(dims), out)?)
}

fn clip_gradients(network: &mut Network, max_norm: f32) {
    let mut sq = 0.0f64;
    for pg in network.params_and_grads() {
        for &g in pg.grad.as_slice() {
            sq += (g as f64) * (g as f64);
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for pg in network.params_and_grads() {
            pg.grad.map_inplace(|g| g * scale);
        }
    }
}

/// Trains `network` on `(inputs, targets)` (both batch-first, same leading
/// dimension) and returns per-epoch mean losses.
///
/// # Errors
///
/// Fails on invalid config, mismatched batch dimensions, or any layer /
/// loss / optimizer error. Training aborts with an error if the loss
/// becomes non-finite (diverged run) rather than continuing silently.
pub fn fit(
    network: &mut Network,
    loss: &dyn Loss,
    optimizer: &mut dyn Optimizer,
    inputs: &Tensor,
    targets: &Tensor,
    config: &TrainConfig,
) -> Result<TrainReport> {
    fit_recorded(
        network,
        loss,
        optimizer,
        inputs,
        targets,
        config,
        obs::noop(),
    )
}

/// [`fit`] with observability: per-epoch mean loss and wall time are
/// pushed into `recorder` as the `epoch_loss` / `epoch_secs` series, and
/// the `epochs` / `batches` counters track the run's totals. Callers
/// namespace these via [`obs::Scoped`] (e.g. `cnn-train.epoch_loss`).
///
/// Recording never changes what is trained: with [`obs::noop`] this is
/// exactly [`fit`], and with any recorder the parameter updates and
/// returned losses are bit-identical.
///
/// # Errors
///
/// Same conditions as [`fit`].
pub fn fit_recorded(
    network: &mut Network,
    loss: &dyn Loss,
    optimizer: &mut dyn Optimizer,
    inputs: &Tensor,
    targets: &Tensor,
    config: &TrainConfig,
    recorder: &dyn obs::Recorder,
) -> Result<TrainReport> {
    if inputs.rank() == 0 || targets.rank() == 0 {
        return Err(NeuralError::invalid(
            "fit",
            "inputs and targets need a batch axis",
        ));
    }
    let n = inputs.shape().dims()[0];
    if targets.shape().dims()[0] != n {
        return Err(NeuralError::invalid(
            "fit",
            format!(
                "inputs have {n} rows but targets have {}",
                targets.shape().dims()[0]
            ),
        ));
    }
    config.validate(n)?;

    let mut rng = StdRng::seed_from_u64(config.shuffle_seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let base_lr = optimizer.learning_rate();

    let mut total_batches = 0u64;
    for epoch in 0..config.epochs {
        let epoch_timer = obs::Stopwatch::started_if(recorder.enabled());
        optimizer.set_learning_rate(base_lr * config.lr_schedule.multiplier(epoch, config.epochs));
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for batch_idx in order.chunks(config.batch_size) {
            let x = gather_rows(inputs, batch_idx)?;
            let t = gather_rows(targets, batch_idx)?;
            let pred = network.forward_train(&x)?;
            let l = loss.loss(&pred, &t)?;
            if !l.is_finite() {
                return Err(NeuralError::invalid(
                    "fit",
                    format!("loss diverged to {l} at epoch {epoch}"),
                ));
            }
            total += l as f64;
            batches += 1;
            let g = loss.grad(&pred, &t)?;
            network.zero_grads();
            network.backward(&g)?;
            if let Some(max_norm) = config.grad_clip {
                clip_gradients(network, max_norm);
            }
            optimizer.step(&mut network.params_and_grads())?;
        }
        let mean = (total / batches as f64) as f32;
        if config.verbose {
            println!("epoch {epoch:>3}: {} loss {mean:.6}", loss.name()); // sncheck:allow(no-stdout-in-lib): opt-in progress output behind config.verbose
        }
        total_batches += batches as u64;
        recorder.push("epoch_loss", mean as f64);
        if let Some(secs) = epoch_timer.elapsed_secs() {
            recorder.push("epoch_secs", secs);
        }
        epoch_losses.push(mean);
    }
    recorder.add("epochs", config.epochs as u64);
    recorder.add("batches", total_batches);
    Ok(TrainReport { epoch_losses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Tanh};
    use crate::loss::MseLoss;
    use crate::optim::{Adam, Sgd};
    use rand::rngs::StdRng;

    fn linear_dataset(n: usize, seed: u64) -> (Tensor, Tensor) {
        // y = 2x₀ − x₁ + 0.5, learnable exactly by one Dense layer.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            xs.push(a);
            xs.push(b);
            ys.push(2.0 * a - b + 0.5);
        }
        (
            Tensor::from_vec([n, 2], xs).unwrap(),
            Tensor::from_vec([n, 1], ys).unwrap(),
        )
    }

    #[test]
    fn gather_rows_selects_and_validates() {
        let t = Tensor::from_fn([4, 3], |i| (i[0] * 10 + i[1]) as f32);
        let g = gather_rows(&t, &[2, 0]).unwrap();
        assert_eq!(g.shape().dims(), &[2, 3]);
        assert_eq!(g.as_slice(), &[20., 21., 22., 0., 1., 2.]);
        assert!(gather_rows(&t, &[4]).is_err());
        assert!(gather_rows(&Tensor::scalar(1.0), &[0]).is_err());
    }

    #[test]
    fn fit_learns_linear_function() {
        let (x, y) = linear_dataset(256, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::new().with(Dense::new(2, 1, &mut rng).unwrap());
        let mut opt = Sgd::new(0.2).unwrap();
        let report = fit(
            &mut net,
            &MseLoss::new(),
            &mut opt,
            &x,
            &y,
            &TrainConfig::new(30, 32).with_seed(3),
        )
        .unwrap();
        assert!(report.improved());
        assert!(
            report.final_loss() < 1e-3,
            "final loss {}",
            report.final_loss()
        );
        // Recovered weights ≈ [2, −1], bias ≈ 0.5.
        let params = net.layers()[0].params();
        let w = params[0].as_slice();
        let b = params[1].as_slice();
        assert!((w[0] - 2.0).abs() < 0.05, "w0 = {}", w[0]);
        assert!((w[1] + 1.0).abs() < 0.05, "w1 = {}", w[1]);
        assert!((b[0] - 0.5).abs() < 0.05, "b = {}", b[0]);
    }

    #[test]
    fn fit_with_adam_and_nonlinearity() {
        // y = sin-ish nonlinear target via tanh features.
        let (x, y) = linear_dataset(200, 5);
        let y = y.map(|v| v.tanh());
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Network::new()
            .with(Dense::new(2, 16, &mut rng).unwrap())
            .with(Tanh::new())
            .with(Dense::new(16, 1, &mut rng).unwrap());
        let mut opt = Adam::new(0.01).unwrap();
        let report = fit(
            &mut net,
            &MseLoss::new(),
            &mut opt,
            &x,
            &y,
            &TrainConfig::new(40, 32).with_seed(7).with_grad_clip(10.0),
        )
        .unwrap();
        assert!(report.final_loss() < 0.01, "loss {}", report.final_loss());
    }

    #[test]
    fn fit_is_deterministic_given_seeds() {
        let (x, y) = linear_dataset(64, 9);
        let run = || {
            let mut rng = StdRng::seed_from_u64(10);
            let mut net = Network::new().with(Dense::new(2, 1, &mut rng).unwrap());
            let mut opt = Sgd::new(0.1).unwrap();
            fit(
                &mut net,
                &MseLoss::new(),
                &mut opt,
                &x,
                &y,
                &TrainConfig::new(5, 16).with_seed(11),
            )
            .unwrap()
            .epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fit_recorded_matches_fit_and_records_series() {
        let (x, y) = linear_dataset(64, 9);
        let train = |recorder: &dyn obs::Recorder| {
            let mut rng = StdRng::seed_from_u64(10);
            let mut net = Network::new().with(Dense::new(2, 1, &mut rng).unwrap());
            let mut opt = Sgd::new(0.1).unwrap();
            let report = fit_recorded(
                &mut net,
                &MseLoss::new(),
                &mut opt,
                &x,
                &y,
                &TrainConfig::new(5, 16).with_seed(11),
                recorder,
            )
            .unwrap();
            let weights: Vec<f32> = net.layers()[0].params()[0].as_slice().to_vec();
            (report.epoch_losses, weights)
        };
        let rec = obs::RunRecorder::new();
        let recorded = train(&rec);
        let plain = train(obs::noop());
        // Observation must not perturb training.
        assert_eq!(recorded, plain);
        let report = rec.report("fit");
        let losses = &report.series("epoch_loss").unwrap().values;
        assert_eq!(losses.len(), 5);
        for (s, &l) in losses.iter().zip(&recorded.0) {
            assert_eq!(*s, l as f64);
        }
        assert_eq!(report.series("epoch_secs").unwrap().values.len(), 5);
        assert_eq!(report.counter("epochs"), Some(5));
        assert_eq!(report.counter("batches"), Some(5 * 4));
    }

    #[test]
    fn fit_validates_inputs() {
        let (x, y) = linear_dataset(8, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Network::new().with(Dense::new(2, 1, &mut rng).unwrap());
        let mut opt = Sgd::new(0.1).unwrap();
        let bad_targets = Tensor::zeros([7, 1]);
        assert!(fit(
            &mut net,
            &MseLoss::new(),
            &mut opt,
            &x,
            &bad_targets,
            &TrainConfig::new(1, 4)
        )
        .is_err());
        assert!(fit(
            &mut net,
            &MseLoss::new(),
            &mut opt,
            &x,
            &y,
            &TrainConfig::new(0, 4)
        )
        .is_err());
        assert!(fit(
            &mut net,
            &MseLoss::new(),
            &mut opt,
            &x,
            &y,
            &TrainConfig::new(1, 0)
        )
        .is_err());
        let cfg = TrainConfig::new(1, 4).with_grad_clip(-1.0);
        assert!(fit(&mut net, &MseLoss::new(), &mut opt, &x, &y, &cfg).is_err());
    }

    #[test]
    fn lr_schedule_multipliers() {
        assert_eq!(LrSchedule::Constant.multiplier(5, 10), 1.0);
        let step = LrSchedule::StepDecay {
            every_epochs: 3,
            factor: 0.5,
        };
        assert_eq!(step.multiplier(0, 10), 1.0);
        assert_eq!(step.multiplier(2, 10), 1.0);
        assert_eq!(step.multiplier(3, 10), 0.5);
        assert_eq!(step.multiplier(6, 10), 0.25);
        let cos = LrSchedule::Cosine { min_fraction: 0.1 };
        assert!((cos.multiplier(0, 11) - 1.0).abs() < 1e-6);
        assert!((cos.multiplier(10, 11) - 0.1).abs() < 1e-6);
        // Mid-run lies strictly between the endpoints.
        let mid = cos.multiplier(5, 11);
        assert!(mid > 0.1 && mid < 1.0);
        // Degenerate one-epoch run keeps the base rate.
        assert_eq!(cos.multiplier(0, 1), 1.0);
    }

    #[test]
    fn fit_validates_schedules_and_applies_decay() {
        let (x, y) = linear_dataset(32, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Network::new().with(Dense::new(2, 1, &mut rng).unwrap());
        let mut opt = Sgd::new(0.1).unwrap();
        let bad = TrainConfig::new(2, 8).with_lr_schedule(LrSchedule::StepDecay {
            every_epochs: 0,
            factor: 0.5,
        });
        assert!(fit(&mut net, &MseLoss::new(), &mut opt, &x, &y, &bad).is_err());
        let bad2 =
            TrainConfig::new(2, 8).with_lr_schedule(LrSchedule::Cosine { min_fraction: 2.0 });
        assert!(fit(&mut net, &MseLoss::new(), &mut opt, &x, &y, &bad2).is_err());

        // After a run with step decay, the optimizer holds the decayed rate.
        let cfg = TrainConfig::new(4, 8).with_lr_schedule(LrSchedule::StepDecay {
            every_epochs: 2,
            factor: 0.1,
        });
        fit(&mut net, &MseLoss::new(), &mut opt, &x, &y, &cfg).unwrap();
        assert!(
            (opt.learning_rate() - 0.01).abs() < 1e-7,
            "{}",
            opt.learning_rate()
        );
    }

    #[test]
    fn gradient_clipping_caps_update_magnitude() {
        // With a huge LR and tiny clip, weights move by at most lr·clip.
        let (x, y) = linear_dataset(32, 3);
        let y = y.scale(1000.0); // enormous targets → enormous raw gradients
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Network::new().with(Dense::new(2, 1, &mut rng).unwrap());
        let before: Vec<f32> = net.layers()[0].params()[0].as_slice().to_vec();
        let mut opt = Sgd::new(0.01).unwrap();
        fit(
            &mut net,
            &MseLoss::new(),
            &mut opt,
            &x,
            &y,
            &TrainConfig::new(1, 32).with_grad_clip(1.0),
        )
        .unwrap();
        let after: Vec<f32> = net.layers()[0].params()[0].as_slice().to_vec();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() <= 0.01 + 1e-6, "update too large: {b} → {a}");
        }
    }
}
