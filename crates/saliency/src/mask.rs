//! Saliency-mask utilities: overlays and agreement scores.
//!
//! Experiment E1 (Fig. 2) needs a way to *quantify* "the VBP mask lands on
//! road features": [`mass_fraction_on`] measures the fraction of total
//! saliency mass that falls on ground-truth lane pixels, and
//! [`overlay`] reproduces the paper's qualitative mask-on-image figures.

use vision::{Image, RgbImage};

use crate::{Result, SaliencyError};

fn check_same_size(op: &'static str, a: &Image, b: &Image) -> Result<()> {
    if a.height() != b.height() || a.width() != b.width() {
        return Err(SaliencyError::invalid(
            op,
            format!(
                "sizes differ: {}x{} vs {}x{}",
                a.height(),
                a.width(),
                b.height(),
                b.width()
            ),
        ));
    }
    Ok(())
}

/// Renders a red-tinted overlay of `mask` on the grayscale `frame`
/// (mask 0 → original pixel, mask 1 → strong red), like the bottom row of
/// the paper's Fig. 4.
///
/// # Errors
///
/// Fails when the images differ in size.
pub fn overlay(frame: &Image, mask: &Image) -> Result<RgbImage> {
    check_same_size("overlay", frame, mask)?;
    let mut out = RgbImage::new(frame.height(), frame.width()).map_err(SaliencyError::from)?;
    for y in 0..frame.height() {
        for x in 0..frame.width() {
            let g = frame.get(y, x).clamp(0.0, 1.0);
            let m = mask.get(y, x).clamp(0.0, 1.0);
            out.put(
                y,
                x,
                [
                    g + (1.0 - g) * m, // pull red channel up with mask
                    g * (1.0 - 0.6 * m),
                    g * (1.0 - 0.6 * m),
                ],
            );
        }
    }
    Ok(out.clamp_unit())
}

/// Fraction of the mask's total mass that lies on pixels where
/// `ground_truth > threshold`. 1.0 = all saliency on the ground-truth
/// region; the region's own area fraction is the chance level.
///
/// # Errors
///
/// Fails when the images differ in size or the mask has no mass.
pub fn mass_fraction_on(mask: &Image, ground_truth: &Image, threshold: f32) -> Result<f32> {
    check_same_size("mass_fraction_on", mask, ground_truth)?;
    let mut on = 0.0f64;
    let mut total = 0.0f64;
    for (m, g) in mask.as_slice().iter().zip(ground_truth.as_slice()) {
        total += *m as f64;
        if *g > threshold {
            on += *m as f64;
        }
    }
    if total <= 0.0 {
        return Err(SaliencyError::invalid(
            "mass_fraction_on",
            "mask has no mass",
        ));
    }
    Ok((on / total) as f32)
}

/// Area fraction of the region where `ground_truth > threshold` — the
/// chance level for [`mass_fraction_on`].
pub fn area_fraction(ground_truth: &Image, threshold: f32) -> f32 {
    let on = ground_truth
        .as_slice()
        .iter()
        .filter(|&&g| g > threshold)
        .count();
    on as f32 / ground_truth.len() as f32
}

/// The ratio of saliency mass on the ground-truth region to its chance
/// level (`> 1` means the mask concentrates on the region). Used as the
/// quantitative statement of Fig. 2.
///
/// # Errors
///
/// Fails when sizes differ, the mask has no mass, or the ground-truth
/// region is empty.
pub fn concentration_ratio(mask: &Image, ground_truth: &Image, threshold: f32) -> Result<f32> {
    let area = area_fraction(ground_truth, threshold);
    // sncheck:allow(no-float-eq): exact-zero emptiness sentinel from
    // area_fraction.
    if area == 0.0 {
        return Err(SaliencyError::invalid(
            "concentration_ratio",
            "ground-truth region is empty",
        ));
    }
    Ok(mass_fraction_on(mask, ground_truth, threshold)? / area)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_mask() -> (Image, Image) {
        // Ground truth: left half. Mask: all mass on the left half.
        let gt = Image::from_fn(4, 8, |_, x| if x < 4 { 1.0 } else { 0.0 }).unwrap();
        let mask = Image::from_fn(4, 8, |_, x| if x < 4 { 0.5 } else { 0.0 }).unwrap();
        (gt, mask)
    }

    #[test]
    fn mass_fraction_extremes() {
        let (gt, mask) = half_mask();
        assert_eq!(mass_fraction_on(&mask, &gt, 0.5).unwrap(), 1.0);
        // Uniform mask: fraction equals the area fraction.
        let uniform = Image::filled(4, 8, 0.3).unwrap();
        assert!((mass_fraction_on(&uniform, &gt, 0.5).unwrap() - 0.5).abs() < 1e-6);
        // Empty mask errors.
        let empty = Image::new(4, 8).unwrap();
        assert!(mass_fraction_on(&empty, &gt, 0.5).is_err());
    }

    #[test]
    fn concentration_ratio_reads_as_lift() {
        let (gt, mask) = half_mask();
        assert!((concentration_ratio(&mask, &gt, 0.5).unwrap() - 2.0).abs() < 1e-6);
        let uniform = Image::filled(4, 8, 0.3).unwrap();
        assert!((concentration_ratio(&uniform, &gt, 0.5).unwrap() - 1.0).abs() < 1e-6);
        let no_region = Image::new(4, 8).unwrap();
        assert!(concentration_ratio(&mask, &no_region, 0.5).is_err());
    }

    #[test]
    fn area_fraction_counts_pixels() {
        let gt = Image::from_fn(2, 4, |_, x| if x == 0 { 1.0 } else { 0.0 }).unwrap();
        assert!((area_fraction(&gt, 0.5) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn overlay_reddens_masked_pixels() {
        let frame = Image::filled(2, 2, 0.4).unwrap();
        let mut mask = Image::new(2, 2).unwrap();
        mask.put(0, 0, 1.0);
        let rgb = overlay(&frame, &mask).unwrap();
        let masked = rgb.get(0, 0);
        let unmasked = rgb.get(1, 1);
        assert!(
            masked[0] > masked[1],
            "masked pixel not reddened: {masked:?}"
        );
        assert!((unmasked[0] - 0.4).abs() < 1e-6);
        assert_eq!(unmasked[0], unmasked[1]);
    }

    #[test]
    fn size_mismatch_errors() {
        let a = Image::new(2, 2).unwrap();
        let b = Image::new(2, 3).unwrap();
        assert!(overlay(&a, &b).is_err());
        assert!(mass_fraction_on(&a, &b, 0.5).is_err());
    }
}
