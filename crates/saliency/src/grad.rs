//! Vanilla input-gradient saliency: `|∂ output / ∂ input|`.

use ndtensor::Tensor;
use neural::Network;
use vision::Image;

use crate::vbp::image_to_batch;
use crate::{Result, SaliencyError};

/// Computes input-gradient saliency: the absolute gradient of the
/// network's (summed) output with respect to each input pixel, normalised
/// to `[0, 1]`.
///
/// Needs `&mut Network` because it reuses the training-time backward pass
/// (layer caches are written and consumed); the network's *parameters*
/// are untouched — accumulated gradients are zeroed before returning.
///
/// # Errors
///
/// Fails when the network is empty or rejects the image's dimensions.
pub fn gradient_saliency(network: &mut Network, image: &Image) -> Result<Image> {
    let input = image_to_batch(image)?;
    let output = network.forward_train(&input)?;
    network.zero_grads();
    let grad = network.backward(&Tensor::ones(output.shape().clone()))?;
    // Parameter gradients accumulated during this pass are an artefact of
    // the probe, not training signal — clear them.
    network.zero_grads();
    if grad.shape().dims() != [1, 1, image.height(), image.width()] {
        return Err(SaliencyError::invalid(
            "gradient_saliency",
            format!("unexpected input-gradient shape {}", grad.shape()),
        ));
    }
    let map = grad
        .map(f32::abs)
        .reshape([image.height(), image.width()])?
        .normalize_minmax();
    Ok(Image::from_tensor(map)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndtensor::Conv2dSpec;
    use neural::layer::{Conv2d, Dense, Flatten, ReLU};
    use neural::models::{pilotnet, PilotNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mask_is_input_sized_and_normalised() {
        let mut net = pilotnet(&PilotNetConfig::compact(), 2).unwrap();
        let img = Image::from_fn(60, 160, |y, x| ((y + 2 * x) % 13) as f32 / 12.0).unwrap();
        let mask = gradient_saliency(&mut net, &img).unwrap();
        assert_eq!((mask.height(), mask.width()), (60, 160));
        assert!(mask.tensor().min_value() >= 0.0);
        assert!(mask.tensor().max_value() <= 1.0);
    }

    #[test]
    fn does_not_perturb_parameters_or_pending_grads() {
        let mut net = pilotnet(&PilotNetConfig::compact(), 4).unwrap();
        let img = Image::from_fn(60, 160, |y, x| ((y * x) % 7) as f32 / 6.0).unwrap();
        let before: Vec<f32> = net
            .layers()
            .iter()
            .flat_map(|l| l.params())
            .flat_map(|p| p.as_slice().to_vec())
            .collect();
        gradient_saliency(&mut net, &img).unwrap();
        let after: Vec<f32> = net
            .layers()
            .iter()
            .flat_map(|l| l.params())
            .flat_map(|p| p.as_slice().to_vec())
            .collect();
        assert_eq!(before, after);
        assert!(net.params_and_grads().iter().all(|pg| pg
            .grad
            .as_slice()
            .iter()
            .all(|&g| g == 0.0)));
    }

    #[test]
    fn gradient_reflects_receptive_weighting() {
        // A linear "network": flatten + dense whose weights are zero except
        // for one pixel — saliency must be exactly that pixel.
        let mut w = Tensor::zeros([1, 12]);
        w.as_mut_slice()[5] = 3.0;
        let dense = Dense::from_parts(w, Tensor::zeros([1])).unwrap();
        let mut net = Network::new().with(Flatten::new()).with(dense);
        let img = Image::from_fn(3, 4, |_, _| 0.5).unwrap();
        let mask = gradient_saliency(&mut net, &img).unwrap();
        assert_eq!(mask.get(1, 1), 1.0); // pixel 5 = (1, 1) in 3×4
        let total: f32 = mask.as_slice().iter().sum();
        assert_eq!(total, 1.0);
    }

    #[test]
    fn works_on_conv_relu_stacks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Network::new()
            .with(Conv2d::new(1, 3, (3, 3), Conv2dSpec::unit(), &mut rng).unwrap())
            .with(ReLU::new())
            .with(Flatten::new())
            .with(Dense::new(3 * 4 * 4, 1, &mut rng).unwrap());
        let img = Image::from_fn(6, 6, |y, x| (y * 6 + x) as f32 / 35.0).unwrap();
        let mask = gradient_saliency(&mut net, &img).unwrap();
        assert_eq!((mask.height(), mask.width()), (6, 6));
        assert!(!mask.tensor().has_non_finite());
    }
}
