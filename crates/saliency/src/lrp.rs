//! ε-rule Layer-wise Relevance Propagation (Bach et al., 2015 — the
//! paper's reference 11, cited as the slower alternative VBP is benchmarked
//! against).
//!
//! Relevance starts at the network output and is redistributed backwards,
//! layer by layer, proportionally to each input's contribution to the
//! pre-activation, with an ε stabiliser on the denominators:
//!
//! ```text
//! R_i = x_i · Σ_j  w_ji · R_j / (z_j + ε·sign(z_j))
//! ```
//!
//! Activations (ReLU/Sigmoid/Tanh) pass relevance through unchanged;
//! Flatten reshapes; MaxPool routes relevance to the winning input.

use ndtensor::{col2im, matmul, matmul_at_b, Conv2dSpec, Tensor};
use neural::{LayerKind, Network};
use vision::Image;

use crate::vbp::image_to_batch;
use crate::{Result, SaliencyError};

/// Configuration for [`lrp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrpConfig {
    /// Stabiliser ε added (sign-matched) to pre-activation denominators.
    pub epsilon: f32,
}

impl Default for LrpConfig {
    fn default() -> Self {
        LrpConfig { epsilon: 1e-2 }
    }
}

fn stabilized_ratio(relevance: &Tensor, z: &Tensor, epsilon: f32) -> Result<Tensor> {
    Ok(relevance.zip_map(z, |r, zv| {
        let denom = zv + epsilon * if zv >= 0.0 { 1.0 } else { -1.0 };
        r / denom
    })?)
}

fn lrp_dense(
    relevance: &Tensor,
    weight: &Tensor,
    z: &Tensor,
    input: &Tensor,
    epsilon: f32,
) -> Result<Tensor> {
    // s = R / (z + ε·sign z);  c = s · W;  R_prev = x ⊙ c.
    let s = stabilized_ratio(relevance, z, epsilon)?;
    let c = matmul(&s, weight)?;
    Ok(&c * input)
}

fn lrp_conv(
    relevance: &Tensor,
    weight: &Tensor,
    spec: Conv2dSpec,
    z: &Tensor,
    input: &Tensor,
    epsilon: f32,
) -> Result<Tensor> {
    let s = stabilized_ratio(relevance, z, epsilon)?;
    // Backproject s through the convolution (input-gradient of conv at s):
    // per sample, dcols = Wᵀ·s, then col2im.
    let [n, c, h, w] = [
        input.shape().dims()[0],
        input.shape().dims()[1],
        input.shape().dims()[2],
        input.shape().dims()[3],
    ];
    let [f, _, kh, kw] = [
        weight.shape().dims()[0],
        weight.shape().dims()[1],
        weight.shape().dims()[2],
        weight.shape().dims()[3],
    ];
    let (oh, ow) = (z.shape().dims()[2], z.shape().dims()[3]);
    let w2 = weight.reshape([f, c * kh * kw])?;
    let mut back = vec![0.0f32; n * c * h * w]; // sncheck:allow(hot-path-transitive-alloc): the relevance map being computed IS the output buffer; one per LRP layer pass
    let sample_in = c * h * w;
    let sample_out = f * oh * ow;
    for ni in 0..n {
        let srow = Tensor::from_vec(
            [f, oh * ow],
            s.as_slice()[ni * sample_out..(ni + 1) * sample_out].to_vec(), // sncheck:allow(hot-path-transitive-alloc): per-sample relevance row lifted into a Tensor for the matmul; Tensor construction takes ownership
        )?;
        let dcols = matmul_at_b(&w2, &srow)?;
        let sample = col2im(&dcols, c, h, w, kh, kw, spec)?;
        back[ni * sample_in..(ni + 1) * sample_in].copy_from_slice(&sample);
    }
    let c_tensor = Tensor::from_vec(input.shape().clone(), back)?;
    Ok(&c_tensor * input)
}

fn lrp_maxpool(relevance: &Tensor, window: (usize, usize), input: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = [
        input.shape().dims()[0],
        input.shape().dims()[1],
        input.shape().dims()[2],
        input.shape().dims()[3],
    ];
    let (ph, pw) = window;
    let (oh, ow) = (h / ph, w / pw);
    let data = input.as_slice();
    let rel = relevance.as_slice();
    let mut out = vec![0.0f32; n * c * h * w]; // sncheck:allow(hot-path-transitive-alloc): winner-routed relevance output buffer, one per pool layer pass
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            let rplane = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..ph {
                        for dx in 0..pw {
                            let idx = plane + (oy * ph + dy) * w + (ox * pw + dx);
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[best_idx] += rel[rplane + oy * ow + ox];
                }
            }
        }
    }
    Ok(Tensor::from_vec(input.shape().clone(), out)?)
}

/// Computes the ε-LRP relevance map of `image` under `network`,
/// normalised to `[0, 1]` at input resolution. Relevance is seeded with
/// the network's raw output (for the steering regressor: the predicted
/// angle).
///
/// # Errors
///
/// Fails when the network is empty, rejects the image's dimensions, or
/// `epsilon` is not positive and finite.
pub fn lrp(network: &Network, image: &Image, config: &LrpConfig) -> Result<Image> {
    if !config.epsilon.is_finite() || config.epsilon <= 0.0 {
        return Err(SaliencyError::invalid(
            "lrp",
            format!(
                "epsilon must be positive and finite, got {}",
                config.epsilon
            ),
        ));
    }
    let input = image_to_batch(image)?;
    let acts = network.forward_collect(&input)?;
    let layers = network.layers();

    // Seed relevance with the output itself.
    let mut relevance = acts
        .last()
        .cloned()
        .ok_or_else(|| SaliencyError::invalid("lrp", "network produced no activations"))?;

    for (i, layer) in layers.iter().enumerate().rev() {
        let layer_input = if i == 0 { &input } else { &acts[i - 1] };
        relevance = match layer.kind() {
            // Activations and dropout (identity at inference) pass
            // relevance through unchanged.
            LayerKind::ReLU | LayerKind::Sigmoid | LayerKind::Tanh | LayerKind::Dropout { .. } => {
                relevance
            }
            LayerKind::Flatten => relevance.reshape(layer_input.shape().clone())?,
            LayerKind::Dense { .. } => {
                let params = layer.params();
                lrp_dense(&relevance, params[0], &acts[i], layer_input, config.epsilon)?
            }
            LayerKind::Conv2d { spec, .. } => {
                let params = layer.params();
                lrp_conv(
                    &relevance,
                    params[0],
                    spec,
                    &acts[i],
                    layer_input,
                    config.epsilon,
                )?
            }
            LayerKind::MaxPool2d { window } => lrp_maxpool(&relevance, window, layer_input)?,
        };
    }

    if relevance.shape().dims() != [1, 1, image.height(), image.width()] {
        return Err(SaliencyError::invalid(
            "lrp",
            format!("unexpected relevance shape {}", relevance.shape()),
        ));
    }
    let map = relevance
        .map(f32::abs)
        .reshape([image.height(), image.width()])?
        .normalize_minmax();
    Ok(Image::from_tensor(map)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::layer::{Conv2d, Dense, Flatten, MaxPool2d, ReLU};
    use neural::models::{pilotnet, PilotNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_backprojection_geometry_roundtrips() {
        let spec = Conv2dSpec::new((2, 2), (1, 1));
        let x: Vec<f32> = (0..36).map(|i| (i % 7) as f32).collect();
        let cols = ndtensor::im2col(&x, 1, 6, 6, 3, 3, spec).unwrap();
        let back = col2im(&cols, 1, 6, 6, 3, 3, spec).unwrap();
        assert_eq!(back.len(), x.len());
    }

    #[test]
    fn relevance_map_is_input_sized_and_normalised() {
        let net = pilotnet(&PilotNetConfig::compact(), 5).unwrap();
        let img = Image::from_fn(60, 160, |y, x| ((y + x) % 17) as f32 / 16.0).unwrap();
        let map = lrp(&net, &img, &LrpConfig::default()).unwrap();
        assert_eq!((map.height(), map.width()), (60, 160));
        assert!(map.tensor().min_value() >= 0.0);
        assert!(map.tensor().max_value() <= 1.0);
        assert!(!map.tensor().has_non_finite());
    }

    #[test]
    fn single_pixel_linear_model_concentrates_relevance() {
        let mut w = Tensor::zeros([1, 12]);
        w.as_mut_slice()[7] = 2.0;
        let dense = Dense::from_parts(w, Tensor::zeros([1])).unwrap();
        let net = Network::new().with(Flatten::new()).with(dense);
        let img = Image::from_fn(3, 4, |_, _| 0.5).unwrap();
        let map = lrp(&net, &img, &LrpConfig::default()).unwrap();
        assert_eq!(map.get(1, 3), 1.0); // pixel 7 = (1, 3)
        let total: f32 = map.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn conservation_approximately_holds_for_linear_dense() {
        // For a single linear layer with small ε, Σ R_in ≈ R_out.
        let mut rng = StdRng::seed_from_u64(2);
        let dense = Dense::new(6, 1, &mut rng).unwrap();
        let net = Network::new().with(Flatten::new()).with(dense);
        let img = Image::from_fn(2, 3, |y, x| 0.3 + 0.1 * (y + x) as f32).unwrap();
        let input = image_to_batch(&img).unwrap();
        let out = net.forward(&input).unwrap().as_slice()[0];

        // Recompute un-normalised relevance by hand via the internals.
        let acts = net.forward_collect(&input).unwrap();
        let params = net.layers()[1].params();
        let flat = acts[0].clone();
        let r = lrp_dense(&acts[1].clone(), params[0], &acts[1], &flat, 1e-4).unwrap();
        let total: f32 = r.as_slice().iter().sum();
        assert!(
            (total - out).abs() < 0.05 * (1.0 + out.abs()),
            "Σ relevance {total} vs output {out}"
        );
    }

    #[test]
    fn works_with_pooling_layers() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = Network::new()
            .with(Conv2d::new(1, 2, (3, 3), Conv2dSpec::new((1, 1), (1, 1)), &mut rng).unwrap())
            .with(ReLU::new())
            .with(MaxPool2d::new((2, 2)).unwrap())
            .with(Flatten::new())
            .with(Dense::new(2 * 3 * 3, 1, &mut rng).unwrap());
        let img = Image::from_fn(6, 6, |y, x| ((y * 6 + x) % 5) as f32 / 4.0).unwrap();
        let map = lrp(&net, &img, &LrpConfig::default()).unwrap();
        assert_eq!((map.height(), map.width()), (6, 6));
    }

    #[test]
    fn validates_epsilon() {
        let net = pilotnet(&PilotNetConfig::compact(), 0).unwrap();
        let img = Image::from_fn(60, 160, |_, _| 0.5).unwrap();
        assert!(lrp(&net, &img, &LrpConfig { epsilon: 0.0 }).is_err());
        assert!(lrp(&net, &img, &LrpConfig { epsilon: -1.0 }).is_err());
    }
}
