//! VisualBackProp (Bojarski et al., ICRA 2018).
//!
//! The algorithm, as described in the paper's §III.B:
//!
//! 1. run a forward pass, keeping each convolutional block's feature maps
//!    (after their ReLU),
//! 2. average each block's feature maps over channels,
//! 3. starting from the deepest averaged map, repeatedly *deconvolve* the
//!    running mask up to the previous block's resolution (transposed
//!    convolution with the block's kernel/stride geometry) and multiply
//!    it pointwise with that block's averaged map,
//! 4. deconvolve once more to input resolution and normalise.
//!
//! The pointwise products make the mask keep only pixels that excite
//! *every* level of the feature hierarchy, which is what lets the paper
//! use it to strip steering-irrelevant detail from images.

use std::cell::RefCell;

use ndtensor::{resize_bilinear, scratch, upsample_sum, Conv2dSpec, Tensor};
use neural::{LayerKind, Network};
use vision::Image;

use crate::{Result, SaliencyError};

/// Reusable per-thread buffers for [`visual_backprop`]: the activation
/// and averaged-map vectors keep their capacity between frames (their
/// tensors draw storage from [`ndtensor::scratch`]), so a warmed stream
/// computes masks without heap allocation.
#[derive(Default)]
struct VbpWorkspace {
    blocks: Vec<ConvBlock>,
    acts: Vec<Tensor>,
    averages: Vec<Tensor>,
}

thread_local! {
    static VBP_WORKSPACE: RefCell<VbpWorkspace> = RefCell::new(VbpWorkspace::default());
}

/// One convolutional block discovered in a network: the conv layer plus
/// the activation (post-ReLU when present) that VBP averages.
pub(crate) struct ConvBlock {
    /// Index into `forward_collect` output of the activation to average.
    pub act_index: usize,
    /// Kernel size of the conv layer.
    pub kernel: (usize, usize),
    /// Stride/padding of the conv layer.
    pub spec: Conv2dSpec,
}

/// Finds the conv blocks of a network in execution order, refilling a
/// reused vector.
fn conv_blocks_into(network: &Network, blocks: &mut Vec<ConvBlock>) {
    let layers = network.layers();
    blocks.clear();
    for (i, layer) in layers.iter().enumerate() {
        if let LayerKind::Conv2d { kernel, spec, .. } = layer.kind() {
            // Use the ReLU right after the conv when present, as VBP
            // averages activated feature maps.
            let act_index = match layers.get(i + 1).map(|l| l.kind()) {
                Some(LayerKind::ReLU) => i + 1,
                _ => i,
            };
            blocks.push(ConvBlock {
                act_index,
                kernel,
                spec,
            });
        }
    }
}

/// Converts a grayscale image to a `[1, 1, H, W]` batch tensor.
pub(crate) fn image_to_batch(image: &Image) -> Result<Tensor> {
    Ok(image
        .tensor()
        .reshape([1, 1, image.height(), image.width()])?)
}

/// Channel-average of a `[1, C, h, w]` activation into an `[h, w]` map.
pub(crate) fn channel_mean(activation: &Tensor) -> Result<Tensor> {
    if activation.rank() != 4 || activation.shape().dims()[0] != 1 {
        return Err(SaliencyError::invalid(
            "channel_mean",
            format!(
                "expected [1, C, h, w] activation, got {}",
                activation.shape()
            ),
        ));
    }
    let [c, h, w] = [
        activation.shape().dims()[1],
        activation.shape().dims()[2],
        activation.shape().dims()[3],
    ];
    let data = activation.as_slice();
    let mut out = scratch::take(h * w);
    out.resize(h * w, 0.0);
    for ci in 0..c {
        let plane = &data[ci * h * w..(ci + 1) * h * w];
        for (acc, &v) in out.iter_mut().zip(plane) {
            *acc += v;
        }
    }
    let inv = 1.0 / c as f32;
    for v in &mut out {
        *v *= inv;
    }
    Ok(Tensor::from_vec([h, w], out)?)
}

/// Deconvolves (upscales) a mask through a conv layer's geometry to the
/// layer's *input* resolution `(target_h, target_w)`.
pub(crate) fn deconv_to(
    mask: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
    target_h: usize,
    target_w: usize,
) -> Result<Tensor> {
    let up = upsample_sum(mask, kernel.0, kernel.1, spec.stride.0, spec.stride.1)?;
    // Remove the zero padding the forward conv added, when possible.
    let (ph, pw) = spec.padding;
    let (uh, uw) = (up.shape().dims()[0], up.shape().dims()[1]);
    let cropped = if (ph > 0 || pw > 0) && uh > 2 * ph && uw > 2 * pw {
        let mut data = scratch::take((uh - 2 * ph) * (uw - 2 * pw));
        for y in ph..(uh - ph) {
            for x in pw..(uw - pw) {
                data.push(up.as_slice()[y * uw + x]);
            }
        }
        Tensor::from_vec([uh - 2 * ph, uw - 2 * pw], data)?
    } else {
        up
    };
    // Strided convolutions may not tile the input exactly; settle any
    // remainder with a bilinear resize.
    if cropped.shape().dims() == [target_h, target_w] {
        Ok(cropped)
    } else {
        Ok(resize_bilinear(&cropped, target_h, target_w)?)
    }
}

/// Computes the VisualBackProp saliency mask of `image` under `network`,
/// normalised to `[0, 1]` at input resolution.
///
/// # Errors
///
/// Fails when the network contains no convolutional layers or rejects the
/// image's dimensions.
///
/// # Example
///
/// ```
/// use neural::models::{pilotnet, PilotNetConfig};
/// use saliency::visual_backprop;
/// use vision::Image;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = pilotnet(&PilotNetConfig::compact(), 3)?;
/// let frame = Image::from_fn(60, 160, |y, x| ((y + x) % 9) as f32 / 8.0)?;
/// let mask = visual_backprop(&net, &frame)?;
/// assert_eq!((mask.height(), mask.width()), (60, 160));
/// # Ok(())
/// # }
/// ```
pub fn visual_backprop(network: &Network, image: &Image) -> Result<Image> {
    VBP_WORKSPACE.with(|ws| {
        let mut ws = ws.borrow_mut();
        let VbpWorkspace {
            blocks,
            acts,
            averages,
        } = &mut *ws;
        conv_blocks_into(network, blocks);
        if blocks.is_empty() {
            return Err(SaliencyError::invalid(
                "visual_backprop",
                "network contains no convolutional layers",
            ));
        }
        let input = image_to_batch(image)?;
        network.forward_collect_into(&input, acts)?;

        // Channel-averaged feature map per block, shallow → deep.
        averages.clear();
        for b in blocks.iter() {
            averages.push(channel_mean(&acts[b.act_index])?);
        }
        acts.clear();

        // The deepest averaged map seeds the mask; popping it (instead of
        // cloning) hands its pooled storage straight to the walk below.
        let mut mask = averages.pop().ok_or_else(|| {
            SaliencyError::invalid("visual_backprop", "network has no conv blocks")
        })?;
        // Walk deep → shallow, upscaling through each conv's geometry and
        // gating with the shallower averaged map.
        for j in (1..blocks.len()).rev() {
            let target = &averages[j - 1];
            let (th, tw) = (target.shape().dims()[0], target.shape().dims()[1]);
            let up = deconv_to(&mask, blocks[j].kernel, blocks[j].spec, th, tw)?;
            mask = &up * target;
        }
        averages.clear();
        // Final deconvolution through the first conv layer to input size.
        let final_mask = deconv_to(
            &mask,
            blocks[0].kernel,
            blocks[0].spec,
            image.height(),
            image.width(),
        )?;
        Ok(Image::from_tensor(final_mask.normalize_minmax())?)
    })
}

/// Computes the VisualBackProp masks of a whole image set in parallel.
///
/// Images are fanned out over the work pool configured in
/// [`ndtensor::par`]; each mask is computed exactly as
/// [`visual_backprop`] would, so the result is bit-identical to mapping
/// the single-image function serially, for any thread count. On failure
/// the error of the lowest-indexed failing image is returned — the same
/// error serial iteration would surface first.
///
/// # Errors
///
/// Same conditions as [`visual_backprop`], per image.
pub fn visual_backprop_batch(network: &Network, images: &[Image]) -> Result<Vec<Image>> {
    visual_backprop_batch_recorded(network, images, obs::noop())
}

/// [`visual_backprop_batch`] with observability: the whole batch runs
/// under a `vbp` span, `vbp.masks_computed` counts the masks produced,
/// `vbp.batch_size` collects batch-size samples, and the work pool's
/// activity during the batch lands under `vbp.par.*`.
///
/// Recording never changes what is computed — the returned masks are
/// bit-identical with any recorder, at any thread count.
///
/// # Errors
///
/// Same conditions as [`visual_backprop`], per image.
pub fn visual_backprop_batch_recorded(
    network: &Network,
    images: &[Image],
    recorder: &dyn obs::Recorder,
) -> Result<Vec<Image>> {
    let work = images
        .len()
        .saturating_mul(images.first().map_or(0, |img| img.height() * img.width()))
        .saturating_mul(64);
    let pool_before = recorder.enabled().then(obs::par_snapshot);
    let scratch_before = recorder.enabled().then(obs::scratch_snapshot);
    let masks = obs::time(recorder, "vbp", || {
        ndtensor::par::try_parallel_map(images.len(), work, |i| {
            visual_backprop(network, &images[i])
        })
    })?;
    recorder.add("vbp.masks_computed", masks.len() as u64);
    recorder.observe("vbp.batch_size", images.len() as f64);
    if let Some(before) = pool_before {
        obs::record_par_delta(&obs::Scoped::new(recorder, "vbp"), before);
    }
    if let Some(before) = scratch_before {
        obs::record_scratch_delta(&obs::Scoped::new(recorder, "vbp"), before);
    }
    Ok(masks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndtensor::Conv2dSpec;
    use neural::layer::{Conv2d, Dense, Flatten, ReLU, Tanh};
    use neural::models::{pilotnet, PilotNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_image() -> Image {
        // A bright diagonal band on a dark background.
        Image::from_fn(20, 30, |y, x| {
            if (x as i64 - y as i64).unsigned_abs() < 3 {
                0.9
            } else {
                0.05
            }
        })
        .unwrap()
    }

    #[test]
    fn identity_conv_network_yields_normalized_activation() {
        // conv(1→1, 1×1, weight 1, bias 0) + ReLU: VBP mask must equal the
        // min-max-normalised ReLU output = normalised image.
        let conv = Conv2d::from_parts(
            Tensor::ones([1, 1, 1, 1]),
            Tensor::zeros([1]),
            Conv2dSpec::unit(),
        )
        .unwrap();
        let net = Network::new().with(conv).with(ReLU::new());
        let img = test_image();
        let mask = visual_backprop(&net, &img).unwrap();
        let expect = img.normalize_minmax();
        for (m, e) in mask.as_slice().iter().zip(expect.as_slice()) {
            assert!((m - e).abs() < 1e-5);
        }
    }

    #[test]
    fn mask_is_input_sized_and_unit_range() {
        let net = pilotnet(&PilotNetConfig::compact(), 11).unwrap();
        let img = Image::from_fn(60, 160, |y, x| ((y * 3 + x) % 11) as f32 / 10.0).unwrap();
        let mask = visual_backprop(&net, &img).unwrap();
        assert_eq!((mask.height(), mask.width()), (60, 160));
        assert!(mask.tensor().min_value() >= 0.0);
        assert!(mask.tensor().max_value() <= 1.0);
        assert!(!mask.tensor().has_non_finite());
    }

    #[test]
    fn salient_structure_attracts_mask_mass() {
        // With positive random conv weights, activations track local
        // brightness, so the bright band must receive more saliency than
        // the dark background.
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv1 =
            Conv2d::new(1, 4, (3, 3), Conv2dSpec::new((2, 2), (0, 0)), &mut rng).unwrap();
        let mut conv2 = Conv2d::new(4, 6, (3, 3), Conv2dSpec::unit(), &mut rng).unwrap();
        // Make all weights positive so brightness → activation.
        let abs_weights = |layer: &mut Conv2d| {
            let mut pgs = neural::Layer::params_and_grads(layer);
            pgs[0].param.map_inplace(f32::abs);
        };
        abs_weights(&mut conv1);
        abs_weights(&mut conv2);
        let net = Network::new()
            .with(conv1)
            .with(ReLU::new())
            .with(conv2)
            .with(ReLU::new());
        let img = test_image();
        let mask = visual_backprop(&net, &img).unwrap();
        let mut on_band = 0.0f32;
        let mut on_band_n = 0;
        let mut off_band = 0.0f32;
        let mut off_band_n = 0;
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(y, x) > 0.5 {
                    on_band += mask.get(y, x);
                    on_band_n += 1;
                } else {
                    off_band += mask.get(y, x);
                    off_band_n += 1;
                }
            }
        }
        let on_mean = on_band / on_band_n as f32;
        let off_mean = off_band / off_band_n as f32;
        assert!(
            on_mean > 2.0 * off_mean,
            "band saliency {on_mean} vs background {off_mean}"
        );
    }

    #[test]
    fn batch_masks_match_serial_masks_bitwise() {
        let net = pilotnet(&PilotNetConfig::compact(), 17).unwrap();
        let images: Vec<Image> = (0..5)
            .map(|s| {
                Image::from_fn(60, 160, |y, x| {
                    ((y * 7 + x * 3 + s * 13) % 17) as f32 / 16.0
                })
                .unwrap()
            })
            .collect();
        let serial: Vec<Image> = images
            .iter()
            .map(|img| visual_backprop(&net, img).unwrap())
            .collect();
        let batch = visual_backprop_batch(&net, &images).unwrap();
        assert_eq!(batch.len(), serial.len());
        for (b, s) in batch.iter().zip(&serial) {
            assert_eq!(b.as_slice(), s.as_slice());
        }
    }

    #[test]
    fn recorded_batch_matches_plain_batch_and_counts_masks() {
        let net = pilotnet(&PilotNetConfig::compact(), 23).unwrap();
        let images: Vec<Image> = (0..3)
            .map(|s| {
                Image::from_fn(60, 160, |y, x| ((y * 5 + x + s * 31) % 13) as f32 / 12.0).unwrap()
            })
            .collect();
        let rec = obs::RunRecorder::new();
        let recorded = visual_backprop_batch_recorded(&net, &images, &rec).unwrap();
        let plain = visual_backprop_batch(&net, &images).unwrap();
        for (a, b) in recorded.iter().zip(&plain) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        let report = rec.report("vbp");
        assert_eq!(report.counter("vbp.masks_computed"), Some(3));
        assert!(report.stage("vbp").unwrap().total_secs > 0.0);
        assert_eq!(report.histogram("vbp.batch_size").unwrap().count, 1);
        assert!(report.counter("vbp.par.jobs").unwrap_or(0) >= 1);
    }

    #[test]
    fn batch_surfaces_first_failing_image() {
        let net = pilotnet(&PilotNetConfig::compact(), 1).unwrap();
        let good = Image::from_fn(60, 160, |_, _| 0.5).unwrap();
        let bad = Image::from_fn(10, 10, |_, _| 0.5).unwrap();
        assert!(visual_backprop_batch(&net, &[good, bad]).is_err());
    }

    #[test]
    fn rejects_networks_without_convs() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Network::new()
            .with(Flatten::new())
            .with(Dense::new(12, 1, &mut rng).unwrap())
            .with(Tanh::new());
        let img = Image::from_fn(3, 4, |_, _| 0.5).unwrap();
        assert!(matches!(
            visual_backprop(&net, &img),
            Err(SaliencyError::Invalid { .. })
        ));
    }

    #[test]
    fn rejects_wrong_input_size() {
        let net = pilotnet(&PilotNetConfig::compact(), 1).unwrap();
        let img = Image::from_fn(10, 10, |_, _| 0.5).unwrap();
        assert!(visual_backprop(&net, &img).is_err());
    }

    #[test]
    fn deconv_restores_conv_input_geometry() {
        // 60×160 through 5×5 stride-2 conv → 28×78; deconv_to must map
        // back exactly.
        let spec = Conv2dSpec::new((2, 2), (0, 0));
        let mask = Tensor::ones([28, 78]);
        let up = deconv_to(&mask, (5, 5), spec, 60, 160).unwrap();
        assert_eq!(up.shape().dims(), &[60, 160]);
        // Padded conv: 4×17 through 3×3 pad 1 → crop back to 4×17.
        let spec_p = Conv2dSpec::new((1, 1), (1, 1));
        let up2 = deconv_to(&Tensor::ones([4, 17]), (3, 3), spec_p, 4, 17).unwrap();
        assert_eq!(up2.shape().dims(), &[4, 17]);
    }

    #[test]
    fn channel_mean_averages_planes() {
        let act = Tensor::from_fn([1, 2, 2, 2], |i| if i[1] == 0 { 1.0 } else { 3.0 });
        let m = channel_mean(&act).unwrap();
        assert!(m.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!(channel_mean(&Tensor::zeros([2, 2, 2, 2])).is_err());
    }
}
