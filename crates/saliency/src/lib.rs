#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! Network-saliency methods for convolutional models.
//!
//! The paper's preprocessing layer is **VisualBackProp** (Bojarski et al.,
//! ICRA 2018): a fast method that identifies the input pixels a trained
//! CNN relies on, by averaging each convolutional block's feature maps and
//! cascading them back to input resolution through deconvolutions with
//! pointwise products. This crate implements VBP plus the comparison
//! methods the paper cites:
//!
//! * [`visual_backprop`] — the paper's choice (order-of-magnitude faster),
//! * [`lrp`] — ε-rule Layer-wise Relevance Propagation (paper reference 11),
//! * [`gradient_saliency`] — vanilla input-gradient magnitude,
//! * [`occlusion_saliency`] — sliding-window occlusion probing,
//! * [`mask`] — mask normalisation, overlays and mask/ground-truth
//!   agreement scores used by experiment E1 (Fig. 2).
//!
//! All methods take the trained steering [`Network`] and a grayscale
//! [`Image`], and return a saliency mask normalised to `[0, 1]` at input
//! resolution.

pub mod mask;

mod error;
mod grad;
mod lrp;
mod occlusion;
mod smoothgrad;
mod vbp;

pub use error::SaliencyError;
pub use grad::gradient_saliency;
pub use lrp::{lrp, LrpConfig};
pub use occlusion::{occlusion_saliency, OcclusionConfig};
pub use smoothgrad::{smoothgrad, SmoothGradConfig};
pub use vbp::{visual_backprop, visual_backprop_batch, visual_backprop_batch_recorded};

use neural::Network;
use vision::Image;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SaliencyError>;

/// Which saliency method to run — used by benches and the CLI tools to
/// select a method by name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SaliencyMethod {
    /// VisualBackProp (the paper's preprocessing layer).
    Vbp,
    /// ε-rule Layer-wise Relevance Propagation.
    Lrp {
        /// Stabiliser added to denominators (sign-matched).
        epsilon: f32,
    },
    /// Vanilla input-gradient magnitude.
    Gradient,
    /// Sliding-window occlusion probing.
    Occlusion {
        /// Occluder side length in pixels.
        window: usize,
        /// Step between occluder positions in pixels.
        stride: usize,
    },
    /// SmoothGrad: gradient saliency averaged over noisy inputs.
    SmoothGrad {
        /// Number of noisy samples averaged.
        samples: usize,
        /// Gaussian input-noise standard deviation.
        sigma: f32,
    },
}

impl SaliencyMethod {
    /// Short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SaliencyMethod::Vbp => "vbp",
            SaliencyMethod::Lrp { .. } => "lrp",
            SaliencyMethod::Gradient => "gradient",
            SaliencyMethod::Occlusion { .. } => "occlusion",
            SaliencyMethod::SmoothGrad { .. } => "smoothgrad",
        }
    }

    /// Runs the selected method. Gradient saliency needs mutable access
    /// to the network (it reuses the training caches); the other methods
    /// only read it, so this dispatcher takes `&mut` for all.
    ///
    /// # Errors
    ///
    /// Propagates the underlying method's errors.
    pub fn compute(&self, network: &mut Network, image: &Image) -> Result<Image> {
        match *self {
            SaliencyMethod::Vbp => visual_backprop(network, image),
            SaliencyMethod::Lrp { epsilon } => lrp(network, image, &LrpConfig { epsilon }),
            SaliencyMethod::Gradient => gradient_saliency(network, image),
            SaliencyMethod::Occlusion { window, stride } => occlusion_saliency(
                network,
                image,
                &OcclusionConfig {
                    window,
                    stride,
                    fill: 0.5,
                },
            ),
            SaliencyMethod::SmoothGrad { samples, sigma } => smoothgrad(
                network,
                image,
                &SmoothGradConfig {
                    samples,
                    sigma,
                    seed: 0,
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names() {
        assert_eq!(SaliencyMethod::Vbp.name(), "vbp");
        assert_eq!(SaliencyMethod::Lrp { epsilon: 0.01 }.name(), "lrp");
        assert_eq!(SaliencyMethod::Gradient.name(), "gradient");
        assert_eq!(
            SaliencyMethod::Occlusion {
                window: 8,
                stride: 4
            }
            .name(),
            "occlusion"
        );
        assert_eq!(
            SaliencyMethod::SmoothGrad {
                samples: 8,
                sigma: 0.1
            }
            .name(),
            "smoothgrad"
        );
    }
}
