use std::fmt;

use ndtensor::TensorError;
use neural::NeuralError;
use vision::VisionError;

/// Error type for saliency computation.
#[derive(Debug)]
pub enum SaliencyError {
    /// The underlying network evaluation failed.
    Neural(NeuralError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// An image operation failed.
    Vision(VisionError),
    /// A saliency-level invariant was violated (e.g. no conv layers).
    Invalid {
        /// Short name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl SaliencyError {
    /// Builds an [`SaliencyError::Invalid`].
    pub fn invalid(op: &'static str, reason: impl Into<String>) -> Self {
        SaliencyError::Invalid {
            op,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SaliencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaliencyError::Neural(e) => write!(f, "network error: {e}"),
            SaliencyError::Tensor(e) => write!(f, "tensor error: {e}"),
            SaliencyError::Vision(e) => write!(f, "image error: {e}"),
            SaliencyError::Invalid { op, reason } => write!(f, "{op}: {reason}"),
        }
    }
}

impl std::error::Error for SaliencyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SaliencyError::Neural(e) => Some(e),
            SaliencyError::Tensor(e) => Some(e),
            SaliencyError::Vision(e) => Some(e),
            SaliencyError::Invalid { .. } => None,
        }
    }
}

impl From<NeuralError> for SaliencyError {
    fn from(e: NeuralError) -> Self {
        SaliencyError::Neural(e)
    }
}

impl From<TensorError> for SaliencyError {
    fn from(e: TensorError) -> Self {
        SaliencyError::Tensor(e)
    }
}

impl From<VisionError> for SaliencyError {
    fn from(e: VisionError) -> Self {
        SaliencyError::Vision(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SaliencyError::invalid("vbp", "network has no conv layers");
        assert!(e.to_string().contains("vbp"));
        assert!(e.source().is_none());
        let e = SaliencyError::from(NeuralError::invalid("x", "y"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SaliencyError>();
    }
}
