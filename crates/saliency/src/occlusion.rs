//! Occlusion-based saliency probing.
//!
//! Slides a gray occluder across the image and records how much the
//! network's prediction moves — a model-agnostic (but very slow) saliency
//! baseline, included to show the latency gap the paper's VBP choice
//! closes.

use neural::Network;
use vision::{perturb, Image};

use crate::vbp::image_to_batch;
use crate::{Result, SaliencyError};

/// Configuration for [`occlusion_saliency`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcclusionConfig {
    /// Occluder side length in pixels.
    pub window: usize,
    /// Step between occluder positions in pixels.
    pub stride: usize,
    /// Intensity painted into the occluded patch.
    pub fill: f32,
}

impl Default for OcclusionConfig {
    fn default() -> Self {
        OcclusionConfig {
            window: 8,
            stride: 4,
            fill: 0.5,
        }
    }
}

/// Computes occlusion saliency: for every occluder position, the absolute
/// change in the network output is splatted over the occluded pixels; the
/// accumulated map is normalised to `[0, 1]`.
///
/// # Errors
///
/// Fails when the window/stride are zero, the window exceeds the image,
/// or the network rejects the input.
pub fn occlusion_saliency(
    network: &Network,
    image: &Image,
    config: &OcclusionConfig,
) -> Result<Image> {
    if config.window == 0 || config.stride == 0 {
        return Err(SaliencyError::invalid(
            "occlusion_saliency",
            "window and stride must be non-zero",
        ));
    }
    if config.window > image.height() || config.window > image.width() {
        return Err(SaliencyError::invalid(
            "occlusion_saliency",
            format!(
                "window {} larger than image {}x{}",
                config.window,
                image.height(),
                image.width()
            ),
        ));
    }
    let base = network.forward(&image_to_batch(image)?)?;
    let base_out = base.sum();

    let mut acc = Image::new(image.height(), image.width())?;
    let mut counts = Image::new(image.height(), image.width())?;
    let mut y = 0;
    while y + config.window <= image.height() {
        let mut x = 0;
        while x + config.window <= image.width() {
            let occluded =
                perturb::occlude_rect(image, y, x, config.window, config.window, config.fill);
            let out = network.forward(&image_to_batch(&occluded)?)?.sum();
            let delta = (out - base_out).abs();
            for dy in 0..config.window {
                for dx in 0..config.window {
                    let v = acc.get(y + dy, x + dx);
                    acc.put(y + dy, x + dx, v + delta);
                    let c = counts.get(y + dy, x + dx);
                    counts.put(y + dy, x + dx, c + 1.0);
                }
            }
            x += config.stride;
        }
        y += config.stride;
    }
    // Average overlapping contributions, then normalise.
    let averaged = Image::from_fn(image.height(), image.width(), |y, x| {
        let c = counts.get(y, x);
        if c > 0.0 {
            acc.get(y, x) / c
        } else {
            0.0
        }
    })?;
    Ok(averaged.normalize_minmax())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndtensor::Tensor;
    use neural::layer::{Dense, Flatten};
    use neural::Network;

    fn single_pixel_net(pixel: usize, n_pixels: usize) -> Network {
        let mut w = Tensor::zeros([1, n_pixels]);
        w.as_mut_slice()[pixel] = 5.0;
        Network::new()
            .with(Flatten::new())
            .with(Dense::from_parts(w, Tensor::zeros([1])).unwrap())
    }

    #[test]
    fn sensitive_pixel_dominates_map() {
        // Network reads only pixel (4, 6) of a 12×12 image.
        let net = single_pixel_net(4 * 12 + 6, 144);
        let img = Image::filled(12, 12, 0.9).unwrap();
        let cfg = OcclusionConfig {
            window: 4,
            stride: 2,
            fill: 0.0,
        };
        let map = occlusion_saliency(&net, &img, &cfg).unwrap();
        assert_eq!(map.get(4, 6), 1.0);
        // A far-away corner that never co-occludes with (4, 6).
        assert_eq!(map.get(11, 0), 0.0);
    }

    #[test]
    fn map_dimensions_and_range() {
        let net = single_pixel_net(0, 100);
        let img = Image::from_fn(10, 10, |y, x| (y + x) as f32 / 18.0).unwrap();
        let map = occlusion_saliency(&net, &img, &OcclusionConfig::default()).unwrap();
        assert_eq!((map.height(), map.width()), (10, 10));
        assert!(map.tensor().min_value() >= 0.0 && map.tensor().max_value() <= 1.0);
    }

    #[test]
    fn validates_config() {
        let net = single_pixel_net(0, 16);
        let img = Image::filled(4, 4, 0.5).unwrap();
        assert!(occlusion_saliency(
            &net,
            &img,
            &OcclusionConfig {
                window: 0,
                stride: 1,
                fill: 0.5
            }
        )
        .is_err());
        assert!(occlusion_saliency(
            &net,
            &img,
            &OcclusionConfig {
                window: 2,
                stride: 0,
                fill: 0.5
            }
        )
        .is_err());
        assert!(occlusion_saliency(
            &net,
            &img,
            &OcclusionConfig {
                window: 5,
                stride: 1,
                fill: 0.5
            }
        )
        .is_err());
    }
}
