//! SmoothGrad (Smilkov et al., 2017): input-gradient saliency averaged
//! over noisy copies of the input.
//!
//! Vanilla gradients are visually noisy; averaging `|∂out/∂(x + ε)|`
//! over several Gaussian perturbations `ε` yields markedly cleaner maps
//! at `n ×` the cost. Included as an extension baseline between vanilla
//! gradients and VBP in the saliency comparison.

use neural::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vision::{perturb, Image};

use crate::{gradient_saliency, Result, SaliencyError};

/// Configuration for [`smoothgrad`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothGradConfig {
    /// Number of noisy samples to average (Smilkov et al. suggest 10–50).
    pub samples: usize,
    /// Standard deviation of the Gaussian input noise.
    pub sigma: f32,
    /// Seed for the noise draws.
    pub seed: u64,
}

impl Default for SmoothGradConfig {
    fn default() -> Self {
        SmoothGradConfig {
            samples: 12,
            sigma: 0.08,
            seed: 0,
        }
    }
}

/// Computes SmoothGrad saliency: the mean of [`gradient_saliency`] maps
/// over `samples` noisy copies of `image`, re-normalised to `[0, 1]`.
///
/// # Errors
///
/// Fails when `samples` is zero, `sigma` is negative/non-finite, or the
/// network rejects the input.
pub fn smoothgrad(
    network: &mut Network,
    image: &Image,
    config: &SmoothGradConfig,
) -> Result<Image> {
    if config.samples == 0 {
        return Err(SaliencyError::invalid(
            "smoothgrad",
            "samples must be non-zero",
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut acc = Image::new(image.height(), image.width())?;
    for _ in 0..config.samples {
        let noisy = perturb::add_gaussian_noise(image, &mut rng, config.sigma)?;
        let g = gradient_saliency(network, &noisy)?;
        for (a, &v) in acc.as_mut_slice().iter_mut().zip(g.as_slice()) {
            *a += v;
        }
    }
    Ok(acc.normalize_minmax())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::models::{pilotnet, PilotNetConfig};

    fn net_and_image() -> (Network, Image) {
        let net = pilotnet(&PilotNetConfig::compact(), 3).unwrap();
        let img = Image::from_fn(60, 160, |y, x| ((y * 3 + x * 2) % 17) as f32 / 16.0).unwrap();
        (net, img)
    }

    #[test]
    fn map_is_input_sized_and_normalised() {
        let (mut net, img) = net_and_image();
        let m = smoothgrad(&mut net, &img, &SmoothGradConfig::default()).unwrap();
        assert_eq!((m.height(), m.width()), (60, 160));
        assert!(m.tensor().min_value() >= 0.0);
        assert!(m.tensor().max_value() <= 1.0);
        assert!(!m.tensor().has_non_finite());
    }

    #[test]
    fn zero_sigma_reduces_to_vanilla_gradient() {
        let (mut net, img) = net_and_image();
        let cfg = SmoothGradConfig {
            samples: 3,
            sigma: 0.0,
            seed: 1,
        };
        let sg = smoothgrad(&mut net, &img, &cfg).unwrap();
        let vg = gradient_saliency(&mut net, &img).unwrap();
        for (a, b) in sg.as_slice().iter().zip(vg.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (mut net, img) = net_and_image();
        let cfg = SmoothGradConfig {
            samples: 4,
            sigma: 0.1,
            seed: 9,
        };
        let a = smoothgrad(&mut net, &img, &cfg).unwrap();
        let b = smoothgrad(&mut net, &img, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validates_config() {
        let (mut net, img) = net_and_image();
        let bad = SmoothGradConfig {
            samples: 0,
            ..Default::default()
        };
        assert!(smoothgrad(&mut net, &img, &bad).is_err());
        let bad_sigma = SmoothGradConfig {
            sigma: -0.1,
            ..Default::default()
        };
        assert!(smoothgrad(&mut net, &img, &bad_sigma).is_err());
    }
}
