//! Ties the two analysis passes together over real files, and implements
//! the `sncheck:allow` suppression protocol.
//!
//! Pass 1 runs the per-line [`crate::rules`] on each file and builds the
//! workspace [`crate::symbols`] table plus the [`crate::callgraph`] over
//! library, binary and bench sources. Pass 2 runs the
//! [`crate::reach`]ability rules over the graph. Both passes' findings go
//! through the same suppression filter and then a fingerprint pass that
//! gives every diagnostic its stable `rule|fn_path|token|ordinal`
//! identity — the key `--diff` baselines use.
//!
//! A suppression is a comment containing the `sncheck:allow` marker with
//! a parenthesised rule list, optionally followed by `: reason` — see
//! the CLI usage text for the exact shape. A trailing comment silences
//! exactly those rules on its own line; a comment on a line of its own
//! (no code before it) silences them on the next line of code instead,
//! so rustfmt moving a comment off a `{` line does not void it.
//! Suppressions are themselves linted: naming an unknown rule or
//! suppressing nothing produces a `warn` diagnostic, so stale allows
//! cannot accumulate.
//!
//! The core entry point is [`check_sources`], which is pure over
//! `(path, text)` pairs — the determinism tests exploit this to prove
//! the report and graph dump are byte-identical regardless of the order
//! the walker yields files in. [`check_files`] is the thin fs wrapper.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::{self, CallGraph};
use crate::diag::{fnv1a64, Diagnostic, FileDigest, Report, Severity};
use crate::lexer::{lex, Comment, Token};
use crate::reach::{self, ReachInput};
use crate::rules::{classify, classify_crate, is_known_rule, run_rules, FileCtx, FileKind};
use crate::scope::test_scopes;
use crate::symbols::{file_symbols, FnSym};

/// Directory names never descended into during workspace discovery.
/// `fixtures` holds deliberately-bad snippets for the self-test.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Everything one analysis run produces: the report plus the canonical
/// call-graph dump (`--graph` writes it; CI byte-compares it).
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Sorted, suppressed, fingerprinted findings with per-file digests.
    pub report: Report,
    /// Deterministic JSON dump of the workspace call graph.
    pub graph_json: String,
}

/// One parsed `sncheck:allow` entry. `line` is the line of code the
/// suppression targets; `comment_line` is where the comment itself
/// starts (they differ for the own-line form) and anchors hygiene
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Suppression {
    line: u32,
    comment_line: u32,
    rule: String,
}

/// Extracts suppressions from a file's comments. Unknown rule names are
/// reported immediately as `unknown-rule` warnings.
///
/// `token_lines` is the sorted, deduplicated set of lines containing
/// code; it decides whether a comment is trailing (targets its own line)
/// or own-line (targets the next line of code).
fn parse_suppressions(
    rel: &str,
    comments: &[Comment],
    token_lines: &[u32],
    out_diags: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut sups = Vec::new();
    for c in comments {
        let Some(start) = c.text.find("sncheck:allow(") else {
            continue;
        };
        let after = &c.text[start + "sncheck:allow(".len()..];
        let Some(end) = after.find(')') else {
            out_diags.push(Diagnostic::new(
                rel,
                c.line,
                1,
                "unknown-rule",
                Severity::Warn,
                "malformed `sncheck:allow(...)`: missing closing parenthesis",
            ));
            continue;
        };
        // A trailing comment shares its line with code; an own-line
        // comment targets the next line that has any.
        let target = if token_lines.binary_search(&c.line).is_ok() {
            c.line
        } else {
            let next = token_lines.partition_point(|&l| l <= c.line);
            token_lines.get(next).copied().unwrap_or(c.line)
        };
        for name in after[..end].split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            if is_known_rule(name) {
                sups.push(Suppression {
                    line: target,
                    comment_line: c.line,
                    rule: name.to_string(),
                });
            } else {
                out_diags.push(Diagnostic::new(
                    rel,
                    c.line,
                    1,
                    "unknown-rule",
                    Severity::Warn,
                    format!(
                        "`sncheck:allow({name})` names no known rule; see `sncheck --list-rules`"
                    ),
                ));
            }
        }
    }
    sups
}

/// Per-file intermediate state threaded between the passes.
struct FileState {
    rel: String,
    digest: String,
    tokens: Vec<Token>,
    line_is_test: Vec<bool>,
    token_lines: Vec<u32>,
    comments: Vec<Comment>,
    raw: Vec<Diagnostic>,
    /// `(first, last)` range of this file's symbols in the flat table,
    /// or `None` for files outside the graph scope.
    sym_range: Option<(usize, usize)>,
    krate: String,
}

/// Whether a file contributes symbols to the call graph. Tests,
/// examples and fixtures stay out: their fns would pollute name
/// resolution and nothing hot can live there.
fn graph_scope(kind: &FileKind) -> bool {
    matches!(
        kind,
        FileKind::Lib { .. } | FileKind::Bin | FileKind::Benches
    )
}

/// Checks a set of `(workspace-relative path, source text)` pairs — the
/// whole pipeline, pure over its input. Duplicate paths keep the last
/// text. Input order is irrelevant: files are re-sorted by path, and
/// every downstream structure is ordered, so report and graph bytes are
/// a function of the file *contents* only.
pub fn check_sources(sources: &[(String, String)]) -> Analysis {
    let ordered: BTreeMap<&str, &str> = sources
        .iter()
        .map(|(rel, text)| (rel.as_str(), text.as_str()))
        .collect();

    // Pass 1: lex, per-line rules, suppressions, symbols.
    let mut states: Vec<FileState> = Vec::with_capacity(ordered.len());
    let mut syms: Vec<FnSym> = Vec::new();
    for (rel, text) in &ordered {
        let lexed = lex(text);
        let scopes = test_scopes(&lexed.tokens);
        let kind = classify(rel);
        let krate = classify_crate(rel);
        let ctx = FileCtx {
            rel,
            kind: &kind,
            tokens: &lexed.tokens,
            scopes: &scopes,
        };
        let raw = run_rules(&ctx);
        let mut token_lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        token_lines.dedup();
        let max_line = lexed.tokens.last().map_or(0, |t| t.line);
        let line_is_test = (0..=max_line).map(|l| scopes.line_is_test(l)).collect();
        let sym_range = if graph_scope(&kind) {
            let fs = file_symbols(rel, &krate, &lexed.tokens, &scopes, &lexed.comments);
            let lo = syms.len();
            syms.extend(fs.fns);
            Some((lo, syms.len()))
        } else {
            None
        };
        states.push(FileState {
            rel: rel.to_string(),
            digest: format!("{:016x}", fnv1a64(text.as_bytes())),
            tokens: lexed.tokens,
            line_is_test,
            token_lines,
            comments: lexed.comments,
            raw,
            sym_range,
            krate,
        });
    }

    // Pass 2: call graph and reachability rules.
    let views: Vec<(usize, usize, &[Token])> = states
        .iter()
        .filter_map(|s| s.sym_range.map(|(lo, hi)| (lo, hi, s.tokens.as_slice())))
        .collect();
    let graph: CallGraph = callgraph::build(&syms, &views);
    let graph_diags = reach::run(&ReachInput {
        syms: &syms,
        graph: &graph,
        files: &views,
    });
    // Route graph findings back to their file's diagnostic stream so one
    // suppression mechanism covers both passes.
    let mut by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in graph_diags {
        by_file.entry(d.path.clone()).or_default().push(d);
    }

    // Suppression + hygiene per file, then collect.
    let mut report = Report::default();
    for st in &mut states {
        let mut raw = std::mem::take(&mut st.raw);
        if let Some(extra) = by_file.remove(st.rel.as_str()) {
            raw.extend(extra);
        }
        let mut diags = Vec::new();
        let suppressions = parse_suppressions(&st.rel, &st.comments, &st.token_lines, &mut diags);
        let mut used = vec![false; suppressions.len()];
        for d in raw {
            let hit = suppressions
                .iter()
                .position(|s| s.line == d.line && s.rule == d.rule);
            match hit {
                Some(k) => used[k] = true,
                None => diags.push(d),
            }
        }
        for (k, s) in suppressions.iter().enumerate() {
            // A suppression may cover several diagnostics of the same rule
            // on its line; one hit marks it used. Suppressions inside test
            // regions are ignored rather than flagged — rules are off
            // there.
            let in_test = st
                .line_is_test
                .get(s.line as usize)
                .copied()
                .unwrap_or(false);
            if !used[k] && !in_test {
                diags.push(Diagnostic::new(
                    st.rel.clone(),
                    s.comment_line,
                    1,
                    "unused-suppression",
                    Severity::Warn,
                    format!(
                        "`sncheck:allow({})` suppresses nothing on line {}; remove it",
                        s.rule, s.line
                    ),
                ));
            }
        }
        // Fill fn paths from the symbol table for diagnostics the rules
        // anchored without one (all per-line findings).
        for d in &mut diags {
            if d.fn_path.is_empty() {
                d.fn_path = enclosing_fn(&syms, st, d.line);
            }
        }
        report.files_checked += 1;
        report.files.push(FileDigest {
            path: st.rel.clone(),
            digest: st.digest.clone(),
            diagnostics: diags.len(),
        });
        report.diagnostics.append(&mut diags);
    }

    report.sort();
    fingerprint(&mut report.diagnostics);
    Analysis {
        report,
        graph_json: graph.dump_json(&syms),
    }
}

/// Qualified path of the innermost fn whose line span contains `line`,
/// or `crate::<file-scope>` for file-level findings (use statements,
/// consts, impl headers).
fn enclosing_fn(syms: &[FnSym], st: &FileState, line: u32) -> String {
    let scope = if st.krate.is_empty() {
        // Paths outside any crate layout (tests/, fixtures passed
        // explicitly): fall back to the file stem so fingerprints stay
        // distinct per file.
        st.rel
            .rsplit('/')
            .next()
            .unwrap_or(&st.rel)
            .trim_end_matches(".rs")
            .to_string()
    } else {
        st.krate.clone()
    };
    let Some((lo, hi)) = st.sym_range else {
        return format!("{scope}::<file-scope>");
    };
    syms[lo..hi]
        .iter()
        .filter(|s| s.line <= line && line <= s.end_line)
        .max_by_key(|s| s.line)
        .map(|s| s.path())
        .unwrap_or_else(|| format!("{scope}::<file-scope>"))
}

/// Assigns every diagnostic its stable identity
/// `rule|fn_path|token|ordinal`. The ordinal disambiguates repeats of
/// the same construct in the same fn, numbered in source order — so two
/// `unwrap`s in one fn get `…|0` and `…|1`, and deleting the first
/// shifts the second's fingerprint (by design: "the second unwrap" is
/// a positional notion once the first is gone). Lines and columns are
/// deliberately absent: reformatting and renaming files must not change
/// any fingerprint.
fn fingerprint(diags: &mut [Diagnostic]) {
    // diags are already in canonical (path, line, col, rule) order, so
    // counting occurrences per key yields source-ordered ordinals.
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for d in diags {
        let key = (d.rule.to_string(), d.fn_path.clone(), d.token.clone());
        let ordinal = counts.entry(key).or_insert(0);
        d.fingerprint = format!("{}|{}|{}|{}", d.rule, d.fn_path, d.token, ordinal);
        *ordinal += 1;
    }
}

/// Checks one file's source text — the full pipeline (both passes) over
/// a single file. `rel` is the workspace-relative path used for
/// classification and diagnostics.
pub fn check_source(rel: &str, source: &str) -> Vec<Diagnostic> {
    check_sources(&[(rel.to_string(), source.to_string())])
        .report
        .diagnostics
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`].
/// Results are sorted for deterministic output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Discovers every checkable `.rs` file under `root` (the workspace).
pub fn discover_workspace(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    Ok(files)
}

/// Expands an explicit path argument: files are taken as-is, directories
/// are walked like the workspace (including `fixtures` when named
/// directly — a directory passed on the command line is always scanned,
/// only nested skip-dirs are pruned).
pub fn expand_path(path: &Path) -> io::Result<Vec<PathBuf>> {
    if path.is_dir() {
        let mut files = Vec::new();
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if !SKIP_DIRS.contains(&name) || name == "fixtures" {
                    let mut sub = expand_path(&p)?;
                    files.append(&mut sub);
                }
            } else if name.ends_with(".rs") {
                files.push(p);
            }
        }
        Ok(files)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

/// The workspace-relative form of `path` used for classification: the
/// prefix `root` is stripped when present.
fn relativise(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Checks a set of files, returning the full [`Analysis`]. Paths are
/// classified relative to `root`.
pub fn check_files(root: &Path, files: &[PathBuf]) -> io::Result<Analysis> {
    // Deduplicate while keeping the canonical relative path; reading in
    // sorted order is cosmetic (check_sources re-sorts) but keeps I/O
    // error messages stable.
    let mut by_rel: BTreeMap<String, PathBuf> = BTreeMap::new();
    for f in files {
        by_rel.insert(relativise(root, f), f.clone());
    }
    let mut sources = Vec::with_capacity(by_rel.len());
    for (rel, path) in by_rel {
        let text = fs::read_to_string(&path)
            .map_err(|e| io::Error::new(e.kind(), format!("reading {}: {e}", path.display())))?;
        sources.push((rel, text));
    }
    Ok(check_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/novelty/src/x.rs";

    #[test]
    fn suppression_silences_exactly_its_line() {
        let src = "fn f() {\n\
                   x.unwrap(); // sncheck:allow(no-panic-in-lib): infallible by construction\n\
                   y.unwrap();\n\
                   }";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn own_line_suppression_covers_the_next_code_line() {
        let src = "fn f() {\n\
                   // sncheck:allow(no-panic-in-lib): infallible by construction\n\
                   x.unwrap();\n\
                   y.unwrap();\n\
                   }";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn own_line_suppression_skips_blank_and_comment_lines() {
        let src = "fn f() {\n\
                   // sncheck:allow(no-panic-in-lib): reason\n\
                   \n\
                   // an unrelated comment\n\
                   x.unwrap();\n\
                   }";
        assert!(check_source(LIB, src).is_empty());
    }

    #[test]
    fn unused_own_line_suppression_anchors_to_the_comment() {
        let src = "fn f() {\n\
                   // sncheck:allow(no-float-eq): stale\n\
                   x.unwrap();\n\
                   }";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.rule == "unused-suppression" && d.line == 2));
    }

    #[test]
    fn suppression_covers_multiple_hits_on_its_line() {
        let src = "fn f() { a.unwrap(); b.unwrap(); } // sncheck:allow(no-panic-in-lib)";
        assert!(check_source(LIB, src).is_empty());
    }

    #[test]
    fn multi_rule_suppression() {
        let src =
            "fn f() { println!(\"{}\", m.unwrap()); } // sncheck:allow(no-panic-in-lib, no-stdout-in-lib)";
        assert!(check_source(LIB, src).is_empty());
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let src = "fn f() {} // sncheck:allow(no-panic-in-lib)";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-suppression");
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let src = "fn f() {} // sncheck:allow(no-such-rule)";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unknown-rule");
    }

    #[test]
    fn suppression_does_not_leak_to_other_rules() {
        let src = "fn f() { x.unwrap(); } // sncheck:allow(no-float-eq)";
        let diags = check_source(LIB, src);
        // The unwrap still fires, and the float-eq allow is unused.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == "no-panic-in-lib"));
        assert!(diags.iter().any(|d| d.rule == "unused-suppression"));
    }

    #[test]
    fn suppressions_in_test_code_are_not_hygiene_checked() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); // sncheck:allow(no-panic-in-lib)\n }\n}";
        assert!(check_source(LIB, src).is_empty());
    }

    #[test]
    fn bins_and_tests_are_exempt_from_per_line_rules() {
        let panicky = "fn main() { x.unwrap(); println!(\"ok\"); }";
        assert!(check_source("src/bin/cli.rs", panicky).is_empty());
        assert!(check_source("tests/integration.rs", panicky).is_empty());
        assert!(check_source("crates/neural/benches/b.rs", panicky).is_empty());
    }

    #[test]
    fn graph_rules_obey_suppressions_too() {
        let src = "pub fn score_batch() { helper(); }\n\
                   fn helper() {\n\
                   x.unwrap() // sncheck:allow(hot-path-transitive-panic, no-panic-in-lib): checked by caller\n\
                   }";
        // Both the per-line rule and the transitive rule are silenced;
        // nothing is left and neither allow is stale.
        let diags = check_source(LIB, src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_carry_fn_paths_and_fingerprints() {
        let src = "pub fn score_batch() { a.unwrap(); b.unwrap(); }";
        let diags = check_source(LIB, src);
        // Per-line no-panic-in-lib ×2 and transitive panic ×2.
        assert_eq!(diags.len(), 4, "{diags:?}");
        for d in &diags {
            assert_eq!(d.fn_path, "novelty::score_batch", "{d:?}");
            assert!(!d.fingerprint.is_empty());
        }
        let fps: Vec<&str> = diags
            .iter()
            .filter(|d| d.rule == "hot-path-transitive-panic")
            .map(|d| d.fingerprint.as_str())
            .collect();
        assert_eq!(
            fps,
            [
                "hot-path-transitive-panic|novelty::score_batch|unwrap|0",
                "hot-path-transitive-panic|novelty::score_batch|unwrap|1",
            ]
        );
    }

    #[test]
    fn fingerprints_survive_line_shifts() {
        let before = "pub fn score_batch() {\n x.unwrap();\n}";
        let after = "// a new leading comment\n\npub fn score_batch() {\n\n x.unwrap();\n}";
        let fp = |src: &str| {
            check_source(LIB, src)
                .iter()
                .map(|d| d.fingerprint.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(fp(before), fp(after));
    }

    #[test]
    fn file_scope_findings_get_the_sentinel_fn_path() {
        // A float-eq outside any fn (a const expression).
        let src = "pub const BAD: bool = 1.0 == 1.0;";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].fn_path, "novelty::<file-scope>");
    }

    #[test]
    fn report_and_graph_are_order_independent() {
        let a = (
            "crates/novelty/src/a.rs".to_string(),
            "pub fn score_batch() { helper(); }".to_string(),
        );
        let b = (
            "crates/novelty/src/b.rs".to_string(),
            "pub fn helper() { x.unwrap(); }".to_string(),
        );
        let fwd = check_sources(&[a.clone(), b.clone()]);
        let rev = check_sources(&[b, a]);
        assert_eq!(fwd.report.to_json(), rev.report.to_json());
        assert_eq!(fwd.graph_json, rev.graph_json);
    }

    #[test]
    fn digests_cover_every_file() {
        let out = check_sources(&[
            (
                "crates/novelty/src/a.rs".to_string(),
                "fn ok() {}".to_string(),
            ),
            (
                "crates/novelty/src/b.rs".to_string(),
                "fn f() { x.unwrap(); }".to_string(),
            ),
        ]);
        assert_eq!(out.report.files.len(), 2);
        assert_eq!(out.report.files[0].path, "crates/novelty/src/a.rs");
        assert_eq!(out.report.files[0].diagnostics, 0);
        assert_eq!(out.report.files[1].diagnostics, 1);
        assert_eq!(out.report.files[0].digest.len(), 16);
    }
}
