//! Ties lexer, scope tracker and rules together over real files, and
//! implements the `sncheck:allow` suppression protocol.
//!
//! A suppression is a comment containing the `sncheck:allow` marker with
//! a parenthesised rule list, optionally followed by `: reason` — see
//! the CLI usage text for the exact shape. A trailing comment silences
//! exactly those rules on its own line; a comment on a line of its own
//! (no code before it) silences them on the next line of code instead,
//! so rustfmt moving a comment off a `{` line does not void it.
//! Suppressions are themselves linted: naming an unknown rule or
//! suppressing nothing produces a `warn` diagnostic, so stale allows
//! cannot accumulate.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Report, Severity};
use crate::lexer::{lex, Comment};
use crate::rules::{classify, is_known_rule, run_rules, FileCtx};
use crate::scope::test_scopes;

/// Directory names never descended into during workspace discovery.
/// `fixtures` holds deliberately-bad snippets for the self-test.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// One parsed `sncheck:allow` entry. `line` is the line of code the
/// suppression targets; `comment_line` is where the comment itself
/// starts (they differ for the own-line form) and anchors hygiene
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Suppression {
    line: u32,
    comment_line: u32,
    rule: String,
}

/// Extracts suppressions from a file's comments. Unknown rule names are
/// reported immediately as `unknown-rule` warnings.
///
/// `token_lines` is the sorted, deduplicated set of lines containing
/// code; it decides whether a comment is trailing (targets its own line)
/// or own-line (targets the next line of code).
fn parse_suppressions(
    rel: &str,
    comments: &[Comment],
    token_lines: &[u32],
    out_diags: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut sups = Vec::new();
    for c in comments {
        let Some(start) = c.text.find("sncheck:allow(") else {
            continue;
        };
        let after = &c.text[start + "sncheck:allow(".len()..];
        let Some(end) = after.find(')') else {
            out_diags.push(Diagnostic {
                path: rel.to_string(),
                line: c.line,
                col: 1,
                rule: "unknown-rule",
                severity: Severity::Warn,
                message: "malformed `sncheck:allow(...)`: missing closing parenthesis".to_string(),
            });
            continue;
        };
        // A trailing comment shares its line with code; an own-line
        // comment targets the next line that has any.
        let target = if token_lines.binary_search(&c.line).is_ok() {
            c.line
        } else {
            let next = token_lines.partition_point(|&l| l <= c.line);
            token_lines.get(next).copied().unwrap_or(c.line)
        };
        for name in after[..end].split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            if is_known_rule(name) {
                sups.push(Suppression {
                    line: target,
                    comment_line: c.line,
                    rule: name.to_string(),
                });
            } else {
                out_diags.push(Diagnostic {
                    path: rel.to_string(),
                    line: c.line,
                    col: 1,
                    rule: "unknown-rule",
                    severity: Severity::Warn,
                    message: format!(
                        "`sncheck:allow({name})` names no known rule; see `sncheck --list-rules`"
                    ),
                });
            }
        }
    }
    sups
}

/// Checks one file's source text. `rel` is the workspace-relative path
/// used for classification and diagnostics.
pub fn check_source(rel: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let scopes = test_scopes(&lexed.tokens);
    let kind = classify(rel);
    let ctx = FileCtx {
        rel,
        kind: &kind,
        tokens: &lexed.tokens,
        scopes: &scopes,
    };
    let raw = run_rules(&ctx);

    let mut token_lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    token_lines.dedup();

    let mut diags = Vec::new();
    let suppressions = parse_suppressions(rel, &lexed.comments, &token_lines, &mut diags);
    let mut used = vec![false; suppressions.len()];
    for d in raw {
        let hit = suppressions
            .iter()
            .position(|s| s.line == d.line && s.rule == d.rule);
        match hit {
            Some(k) => used[k] = true,
            None => diags.push(d),
        }
    }
    for (k, s) in suppressions.iter().enumerate() {
        // A suppression may cover several diagnostics of the same rule on
        // its line; one hit marks it used. Suppressions inside test
        // regions are ignored rather than flagged — rules are off there.
        if !used[k] && !scopes.line_is_test(s.line) {
            diags.push(Diagnostic {
                path: rel.to_string(),
                line: s.comment_line,
                col: 1,
                rule: "unused-suppression",
                severity: Severity::Warn,
                message: format!(
                    "`sncheck:allow({})` suppresses nothing on line {}; remove it",
                    s.rule, s.line
                ),
            });
        }
    }
    diags
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`].
/// Results are sorted for deterministic output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Discovers every checkable `.rs` file under `root` (the workspace).
pub fn discover_workspace(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    Ok(files)
}

/// Expands an explicit path argument: files are taken as-is, directories
/// are walked like the workspace (including `fixtures` when named
/// directly — a directory passed on the command line is always scanned,
/// only nested skip-dirs are pruned).
pub fn expand_path(path: &Path) -> io::Result<Vec<PathBuf>> {
    if path.is_dir() {
        let mut files = Vec::new();
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if !SKIP_DIRS.contains(&name) || name == "fixtures" {
                    let mut sub = expand_path(&p)?;
                    files.append(&mut sub);
                }
            } else if name.ends_with(".rs") {
                files.push(p);
            }
        }
        Ok(files)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

/// The workspace-relative form of `path` used for classification: the
/// prefix `root` is stripped when present.
fn relativise(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Checks a set of files, returning a sorted [`Report`]. Paths are
/// classified relative to `root`.
pub fn check_files(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    // BTreeMap keeps per-file work grouped and the iteration ordered even
    // if the caller passed an unsorted list.
    let mut by_rel: BTreeMap<String, PathBuf> = BTreeMap::new();
    for f in files {
        by_rel.insert(relativise(root, f), f.clone());
    }
    let mut report = Report::default();
    for (rel, path) in &by_rel {
        let source = fs::read_to_string(path)
            .map_err(|e| io::Error::new(e.kind(), format!("reading {}: {e}", path.display())))?;
        report.diagnostics.extend(check_source(rel, &source));
        report.files_checked += 1;
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/novelty/src/x.rs";

    #[test]
    fn suppression_silences_exactly_its_line() {
        let src = "fn f() {\n\
                   x.unwrap(); // sncheck:allow(no-panic-in-lib): infallible by construction\n\
                   y.unwrap();\n\
                   }";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn own_line_suppression_covers_the_next_code_line() {
        let src = "fn f() {\n\
                   // sncheck:allow(no-panic-in-lib): infallible by construction\n\
                   x.unwrap();\n\
                   y.unwrap();\n\
                   }";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn own_line_suppression_skips_blank_and_comment_lines() {
        let src = "fn f() {\n\
                   // sncheck:allow(no-panic-in-lib): reason\n\
                   \n\
                   // an unrelated comment\n\
                   x.unwrap();\n\
                   }";
        assert!(check_source(LIB, src).is_empty());
    }

    #[test]
    fn unused_own_line_suppression_anchors_to_the_comment() {
        let src = "fn f() {\n\
                   // sncheck:allow(no-float-eq): stale\n\
                   x.unwrap();\n\
                   }";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.rule == "unused-suppression" && d.line == 2));
    }

    #[test]
    fn suppression_covers_multiple_hits_on_its_line() {
        let src = "fn f() { a.unwrap(); b.unwrap(); } // sncheck:allow(no-panic-in-lib)";
        assert!(check_source(LIB, src).is_empty());
    }

    #[test]
    fn multi_rule_suppression() {
        let src =
            "fn f() { println!(\"{}\", m.unwrap()); } // sncheck:allow(no-panic-in-lib, no-stdout-in-lib)";
        assert!(check_source(LIB, src).is_empty());
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let src = "fn f() {} // sncheck:allow(no-panic-in-lib)";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-suppression");
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let src = "fn f() {} // sncheck:allow(no-such-rule)";
        let diags = check_source(LIB, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unknown-rule");
    }

    #[test]
    fn suppression_does_not_leak_to_other_rules() {
        let src = "fn f() { x.unwrap(); } // sncheck:allow(no-float-eq)";
        let diags = check_source(LIB, src);
        // The unwrap still fires, and the float-eq allow is unused.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == "no-panic-in-lib"));
        assert!(diags.iter().any(|d| d.rule == "unused-suppression"));
    }

    #[test]
    fn suppressions_in_test_code_are_not_hygiene_checked() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); // sncheck:allow(no-panic-in-lib)\n }\n}";
        assert!(check_source(LIB, src).is_empty());
    }

    #[test]
    fn bins_and_tests_are_exempt() {
        let panicky = "fn main() { x.unwrap(); println!(\"ok\"); }";
        assert!(check_source("src/bin/cli.rs", panicky).is_empty());
        assert!(check_source("tests/integration.rs", panicky).is_empty());
        assert!(check_source("crates/neural/benches/b.rs", panicky).is_empty());
    }
}
