//! Item-scope tracking: which tokens live in test code.
//!
//! The invariants `sncheck` enforces are *library* invariants — tests are
//! encouraged to `unwrap()`, spawn threads and compare floats. This pass
//! walks the token stream once and marks every token that is (a) covered
//! by a `#[cfg(test)]` or `#[test]` attribute, or (b) inside a braced
//! region such an attribute introduced (the usual `mod tests { … }`).
//!
//! The tracker is deliberately syntactic: it counts delimiter depth
//! rather than parsing items. `#[cfg(not(test))]` is recognised as *not*
//! test code; exotic combinations like `cfg(any(test, feature = "x"))`
//! are treated as test code (conservative: rules go quiet there rather
//! than firing on code the lib build never sees — such a region would
//! also never compile into the shipping library anyway).

use crate::lexer::{Token, TokenKind};

/// Per-token test-ness plus the test line ranges (used to exempt
/// suppression comments inside test regions from `unused-suppression`).
#[derive(Debug, Clone, Default)]
pub struct TestScopes {
    /// `mask[i]` is true when `tokens[i]` is test-only code.
    pub mask: Vec<bool>,
    /// Closed line ranges `(first, last)` covered by test regions.
    pub line_ranges: Vec<(u32, u32)>,
}

impl TestScopes {
    /// Whether the given 1-based source line falls in a test region.
    pub fn line_is_test(&self, line: u32) -> bool {
        self.line_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// True for `#[test]`-like attribute bodies (`test`, `tokio::test`, …)
/// and for `#[cfg(…)]` bodies that mention `test` without `not`.
fn is_test_attr(attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"cfg") | Some(&"cfg_attr") => idents.contains(&"test") && !idents.contains(&"not"),
        Some(_) => idents.last() == Some(&"test"),
        None => false,
    }
}

/// Computes the test mask for a token stream.
pub fn test_scopes(tokens: &[Token]) -> TestScopes {
    let mut scopes = TestScopes {
        mask: vec![false; tokens.len()],
        line_ranges: Vec::new(),
    };
    // Combined (), [], {} depth — items end at `;`/`,`/`{` at the depth
    // where their attribute appeared, and `[u8; 3]` in a signature must
    // not terminate the pending attribute early.
    let mut depth: i64 = 0;
    // Depths at which an open test region's brace sits, with the line it
    // opened on.
    let mut regions: Vec<(i64, u32)> = Vec::new();
    // Depth at which a test attribute is waiting for its item.
    let mut pending: Option<i64> = None;

    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        let in_test = !regions.is_empty() || pending.is_some();
        scopes.mask[i] = in_test;

        // Attributes: `#[…]` and inner `#![…]`.
        let is_hash = tok.kind == TokenKind::Punct && tok.text == "#";
        let attr_open = is_hash
            && (tokens.get(i + 1).is_some_and(|t| t.text == "[")
                || (tokens.get(i + 1).is_some_and(|t| t.text == "!")
                    && tokens.get(i + 2).is_some_and(|t| t.text == "[")));
        if attr_open {
            let mut j = i + 1;
            if tokens[j].text == "!" {
                j += 1;
            }
            j += 1; // past '['
            let body_start = j;
            let mut bracket_depth = 1i64;
            while j < tokens.len() && bracket_depth > 0 {
                match tokens[j].text.as_str() {
                    "[" => bracket_depth += 1,
                    "]" => bracket_depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let body_end = j.saturating_sub(1); // index of the closing ']'
            if is_test_attr(&tokens[body_start..body_end]) {
                pending = Some(depth);
            }
            for k in i..j {
                scopes.mask[k] = !regions.is_empty() || pending.is_some();
            }
            i = j;
            continue;
        }

        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "{" => {
                    if pending == Some(depth) {
                        regions.push((depth, tok.line));
                        pending = None;
                        scopes.mask[i] = true;
                    }
                    depth += 1;
                }
                "(" | "[" => depth += 1,
                "}" => {
                    depth -= 1;
                    if regions.last().map(|&(d, _)| d) == Some(depth) {
                        let (_, start_line) = regions.pop().expect("just checked");
                        scopes.line_ranges.push((start_line, tok.line));
                        scopes.mask[i] = true; // closing brace is test too
                    }
                }
                ")" | "]" => depth -= 1,
                ";" | "," if pending == Some(depth) => {
                    pending = None;
                    scopes.mask[i] = true;
                }
                _ => {}
            }
        }
        i += 1;
    }
    // An unterminated region (malformed input) runs to EOF.
    if let Some(&(_, start_line)) = regions.last() {
        let last_line = tokens.last().map_or(start_line, |t| t.line);
        scopes.line_ranges.push((start_line, last_line));
    }
    scopes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn mask_of(src: &str) -> (Vec<Token>, TestScopes) {
        let lexed = lex(src);
        let scopes = test_scopes(&lexed.tokens);
        (lexed.tokens, scopes)
    }

    fn ident_is_test(tokens: &[Token], scopes: &TestScopes, name: &str) -> bool {
        let idx = tokens
            .iter()
            .position(|t| t.kind == TokenKind::Ident && t.text == name)
            .unwrap_or_else(|| panic!("ident {name} not found"));
        scopes.mask[idx]
    }

    #[test]
    fn cfg_test_mod_is_test() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn helper() { body(); }\n}\nfn lib2() {}";
        let (tokens, scopes) = mask_of(src);
        assert!(!ident_is_test(&tokens, &scopes, "lib"));
        assert!(ident_is_test(&tokens, &scopes, "helper"));
        assert!(ident_is_test(&tokens, &scopes, "body"));
        assert!(!ident_is_test(&tokens, &scopes, "lib2"));
        assert!(scopes.line_is_test(4));
        assert!(!scopes.line_is_test(1));
    }

    #[test]
    fn test_fn_is_test() {
        let src = "#[test]\nfn t() { a(); }\nfn lib() { b(); }";
        let (tokens, scopes) = mask_of(src);
        assert!(ident_is_test(&tokens, &scopes, "a"));
        assert!(!ident_is_test(&tokens, &scopes, "b"));
    }

    #[test]
    fn cfg_not_test_is_lib() {
        let src = "#[cfg(not(test))]\nfn lib() { a(); }";
        let (tokens, scopes) = mask_of(src);
        assert!(!ident_is_test(&tokens, &scopes, "a"));
    }

    #[test]
    fn attr_on_use_item_clears_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { a(); }";
        let (tokens, scopes) = mask_of(src);
        assert!(ident_is_test(&tokens, &scopes, "HashMap"));
        assert!(!ident_is_test(&tokens, &scopes, "a"));
    }

    #[test]
    fn signature_brackets_do_not_end_pending() {
        let src = "#[test]\nfn t(x: [u8; 3]) { a(); }\nfn lib() { b(); }";
        let (tokens, scopes) = mask_of(src);
        assert!(ident_is_test(&tokens, &scopes, "a"));
        assert!(!ident_is_test(&tokens, &scopes, "b"));
    }

    #[test]
    fn nested_braces_stay_in_region() {
        let src = "#[cfg(test)]\nmod tests { fn t() { if x { y(); } } }\nfn lib() { z(); }";
        let (tokens, scopes) = mask_of(src);
        assert!(ident_is_test(&tokens, &scopes, "y"));
        assert!(!ident_is_test(&tokens, &scopes, "z"));
    }

    #[test]
    fn other_attributes_are_not_test() {
        let src = "#[derive(Debug)]\nstruct S;\nfn lib() { a(); }";
        let (tokens, scopes) = mask_of(src);
        assert!(!ident_is_test(&tokens, &scopes, "a"));
        let src = "#![warn(missing_docs)]\nfn lib() { a(); }";
        let (tokens, scopes) = mask_of(src);
        assert!(!ident_is_test(&tokens, &scopes, "a"));
    }
}
