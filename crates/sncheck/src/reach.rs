//! Pass 2 of the v2 analyzer: reachability rules over the call graph.
//!
//! The per-line rules in [`crate::rules`] see one line at a time, so a
//! panic, allocation or ambient clock two calls below `score_batch` is
//! invisible to them. This pass computes the *hot cone* — every fn
//! reachable from the hot-path roots — and scans each fn in it exactly
//! once, anchoring findings at the offending token with the root→fn call
//! chain in the message.
//!
//! ## Roots
//!
//! | root | why |
//! |------|-----|
//! | `score_batch` / `score_batch_recorded` | the batch scoring entry the paper's numbers come from |
//! | `classify_each` / `classify_each_recorded` | the per-frame verdict entry the stream runtime drives |
//! | `StreamServer::offer` / `step` / `step_recorded` | the multi-tenant serve round (admission + resolve) |
//! | any fn marked `// sncheck:hot-root` | opt-in roots — bench timing loops join the contract |
//!
//! ## Rules
//!
//! * `hot-path-transitive-alloc` — `vec!` / `Vec::with_capacity` /
//!   `.to_vec()` anywhere in the cone (generalizes the per-line
//!   `no-hot-alloc` module list).
//! * `hot-path-transitive-panic` — `unwrap` / `expect` / panic-family
//!   macros anywhere in the cone, *including* bins and bench code the
//!   per-line rule exempts. Slice indexing is a documented false-negative
//!   class (see DESIGN.md §6): the packed kernels are index-dense and a
//!   lexical linter cannot see bounds proofs.
//! * `hot-path-transitive-clock` — raw `Instant::now` / `SystemTime` in
//!   the cone. `crates/obs` is exempt: `obs::Stopwatch` is the sanctioned
//!   clock surface and reads nothing when recording is disabled.
//! * `recorded-parity-drift` — the plain wrapper of every public
//!   `*_recorded` fn must be a *pure forward*: it calls the recorded
//!   variant exactly once and contains no other statements, branches or
//!   assignments (existence of the wrapper is the per-line
//!   `recorded-parity` rule; this one catches the wrapper growing logic).
//! * `lock-order` — mutex acquisition order. Each fn's acquisitions
//!   (`<field>.lock()`) are collected; a lock acquired in a fn is
//!   conservatively treated as held across every call the fn makes, so
//!   ordered pairs propagate through the cone. Any unordered pair seen in
//!   both orders is flagged at both witnesses. Self-pairs are skipped
//!   (guard scopes are invisible lexically; a re-acquire is almost always
//!   a dropped guard, a documented false-negative class).
//! * `no-float-promotion` — `as f32` / `as f64` inside fns marked
//!   `// sncheck:int-hot` (the ROADMAP item 2 integer-GEMM guard; not a
//!   reachability rule, but it needs the symbol table so it lives here).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};
use crate::symbols::FnSym;

/// Built-in hot-path roots: `(fn name, required impl owner)`. `None`
/// matches any owner, so trait impls and inherent methods both qualify.
pub const HOT_ROOTS: &[(&str, Option<&str>)] = &[
    ("score_batch", None),
    ("score_batch_recorded", None),
    ("classify_each", None),
    ("classify_each_recorded", None),
    ("offer", Some("StreamServer")),
    ("step", Some("StreamServer")),
    ("step_recorded", Some("StreamServer")),
];

/// Everything pass 2 needs: the flat symbol list, the graph over it, and
/// each file's token stream addressed by the symbols' file index ranges.
pub struct ReachInput<'a> {
    /// Flat symbol table.
    pub syms: &'a [FnSym],
    /// Call graph over `syms`.
    pub graph: &'a CallGraph,
    /// Per-file `(first_sym, last_sym, tokens)` views, matching the
    /// ranges used to build the graph.
    pub files: &'a [(usize, usize, &'a [Token])],
}

impl std::fmt::Debug for ReachInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReachInput")
            .field("syms", &self.syms.len())
            .field("files", &self.files.len())
            .finish()
    }
}

/// Root symbol indices: built-in table matches plus `sncheck:hot-root`
/// markers, in symbol order.
pub fn roots(syms: &[FnSym]) -> Vec<usize> {
    syms.iter()
        .enumerate()
        .filter(|(_, s)| !s.is_test)
        .filter(|(_, s)| {
            s.hot_root
                || HOT_ROOTS.iter().any(|&(name, owner)| {
                    s.name == name && owner.is_none_or(|o| s.owner.as_deref() == Some(o))
                })
        })
        .map(|(k, _)| k)
        .collect()
}

/// BFS over the traversable edges. Returns, for every symbol, the parent
/// on one shortest path from a root (`usize::MAX` for roots themselves),
/// keyed only for reachable symbols. Deterministic: roots in symbol
/// order, adjacency pre-sorted.
pub fn reachable(graph: &CallGraph, root_ids: &[usize]) -> BTreeMap<usize, usize> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in root_ids {
        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
            e.insert(usize::MAX);
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        for &g in &graph.succ[f] {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(g) {
                e.insert(f);
                queue.push_back(g);
            }
        }
    }
    parent
}

/// Renders the root→fn chain for a reachable symbol, eliding long
/// middles: `a::root → b::mid → … → c::leaf`.
fn chain(syms: &[FnSym], parent: &BTreeMap<usize, usize>, mut k: usize) -> String {
    let mut hops = vec![syms[k].path()];
    while let Some(&p) = parent.get(&k) {
        if p == usize::MAX {
            break;
        }
        hops.push(syms[p].path());
        k = p;
    }
    hops.reverse();
    if hops.len() > 4 {
        format!(
            "{} → {} → … → {}",
            hops[0],
            hops[1],
            hops.last().expect("non-empty")
        )
    } else {
        hops.join(" → ")
    }
}

/// Tokens of one fn body, with the nested-fn ranges excluded.
fn body_indices<'a>(
    sym: &FnSym,
    file_syms: &'a [FnSym],
    limit: usize,
) -> impl Iterator<Item = usize> + 'a {
    let (blo, bhi) = sym.body;
    let nested: Vec<(usize, usize)> = file_syms
        .iter()
        .filter(|s| s.body.0 > blo && s.body.1 < bhi && s.body.0 < s.body.1)
        .map(|s| s.body)
        .collect();
    (blo..bhi.min(limit)).filter(move |&i| !nested.iter().any(|&(lo, hi)| i >= lo && i < hi))
}

/// Emits one cone diagnostic anchored at token `i`.
fn cone_diag(
    sym: &FnSym,
    tokens: &[Token],
    i: usize,
    rule: &'static str,
    token: &str,
    what: &str,
    via: &str,
) -> Diagnostic {
    let t = &tokens[i];
    let mut d = Diagnostic::new(
        sym.file.clone(),
        t.line,
        t.col,
        rule,
        Severity::Deny,
        format!("{what} is reachable from a hot root via `{via}`"),
    );
    d.token = token.to_string();
    d.fn_path = sym.path();
    d
}

/// Runs every reachability rule. Returned diagnostics are unsorted and
/// unsuppressed — the engine merges, suppresses and fingerprints them.
pub fn run(input: &ReachInput<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let root_ids = roots(input.syms);
    let parent = reachable(input.graph, &root_ids);

    for &(lo, hi, tokens) in input.files {
        let file_syms = &input.syms[lo..hi];
        for (off, sym) in file_syms.iter().enumerate() {
            let id = lo + off;
            if sym.is_test {
                continue;
            }
            if parent.contains_key(&id) {
                let via = chain(input.syms, &parent, id);
                cone_rules(sym, file_syms, tokens, &via, &mut out);
            }
            if sym.int_hot {
                float_promotion(sym, file_syms, tokens, &mut out);
            }
        }
    }

    recorded_parity_drift(input, &mut out);
    lock_order(input, &parent, &mut out);
    out
}

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The three transitive token scans (alloc, panic, clock) over one
/// reachable fn body.
fn cone_rules(
    sym: &FnSym,
    file_syms: &[FnSym],
    tokens: &[Token],
    via: &str,
    out: &mut Vec<Diagnostic>,
) {
    let text = |i: usize| tokens.get(i).map_or("", |t| t.text.as_str());
    for i in body_indices(sym, file_syms, tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();

        // hot-path-transitive-alloc
        let alloc = match name {
            "vec" if text(i + 1) == "!" => Some("vec!"),
            "Vec" if text(i + 1) == "::" && text(i + 2) == "with_capacity" => {
                Some("Vec::with_capacity")
            }
            "to_vec" if i > 0 && text(i - 1) == "." && text(i + 1) == "(" => Some(".to_vec()"),
            _ => None,
        };
        if let Some(what) = alloc {
            out.push(cone_diag(
                sym,
                tokens,
                i,
                "hot-path-transitive-alloc",
                what,
                &format!("`{what}` allocates in `{}`, which", sym.path()),
                via,
            ));
        }

        // hot-path-transitive-panic
        if PANIC_METHODS.contains(&name) && i > 0 && text(i - 1) == "." && text(i + 1) == "(" {
            out.push(cone_diag(
                sym,
                tokens,
                i,
                "hot-path-transitive-panic",
                name,
                &format!("`.{name}()` can panic in `{}`, which", sym.path()),
                via,
            ));
        } else if PANIC_MACROS.contains(&name) && text(i + 1) == "!" {
            out.push(cone_diag(
                sym,
                tokens,
                i,
                "hot-path-transitive-panic",
                name,
                &format!("`{name}!` aborts in `{}`, which", sym.path()),
                via,
            ));
        }

        // hot-path-transitive-clock (obs is the sanctioned clock surface)
        if sym.krate != "obs" {
            if name == "Instant" && text(i + 1) == "::" && text(i + 2) == "now" {
                out.push(cone_diag(
                    sym,
                    tokens,
                    i,
                    "hot-path-transitive-clock",
                    "Instant::now",
                    &format!("raw `Instant::now` in `{}`, which", sym.path()),
                    via,
                ));
            } else if name == "SystemTime" {
                out.push(cone_diag(
                    sym,
                    tokens,
                    i,
                    "hot-path-transitive-clock",
                    "SystemTime",
                    &format!("`SystemTime` in `{}`, which", sym.path()),
                    via,
                ));
            }
        }
    }
}

/// `no-float-promotion` over one `sncheck:int-hot` fn.
fn float_promotion(sym: &FnSym, file_syms: &[FnSym], tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let text = |i: usize| tokens.get(i).map_or("", |t| t.text.as_str());
    for i in body_indices(sym, file_syms, tokens.len()) {
        if text(i) == "as" && (text(i + 1) == "f32" || text(i + 1) == "f64") {
            let t = &tokens[i];
            let cast = format!("as {}", text(i + 1));
            let mut d = Diagnostic::new(
                sym.file.clone(),
                t.line,
                t.col,
                "no-float-promotion",
                Severity::Deny,
                format!(
                    "`{cast}` promotes to float inside `{}`, an `sncheck:int-hot` integer \
                     hot loop; keep the quantized path integral (or move the conversion out \
                     of the marked fn)",
                    sym.path()
                ),
            );
            d.token = cast;
            d.fn_path = sym.path();
            out.push(d);
        }
    }
}

/// `recorded-parity-drift`: every public `*_recorded` fn with a plain
/// sibling requires the sibling to be a pure forward.
fn recorded_parity_drift(input: &ReachInput<'_>, out: &mut Vec<Diagnostic>) {
    for &(lo, hi, tokens) in input.files {
        let file_syms = &input.syms[lo..hi];
        for rec in file_syms.iter().filter(|s| !s.is_test && s.is_pub) {
            let Some(base) = rec.name.strip_suffix("_recorded") else {
                continue;
            };
            if base.is_empty() {
                continue;
            }
            let Some(plain) = file_syms
                .iter()
                .find(|s| !s.is_test && s.name == base && s.owner == rec.owner)
            else {
                continue; // absence is the per-line recorded-parity rule
            };
            if plain.body.0 >= plain.body.1 {
                continue; // bodyless trait declaration
            }
            let text = |i: usize| tokens.get(i).map_or("", |t| t.text.as_str());
            let mut forwards = 0usize;
            let mut impurity: Option<String> = None;
            let mut semis = 0usize;
            for i in body_indices(plain, file_syms, tokens.len()) {
                let t = &tokens[i];
                if t.kind == TokenKind::Ident && t.text == rec.name && text(i + 1) == "(" {
                    forwards += 1;
                    continue;
                }
                match t.text.as_str() {
                    "if" | "match" | "while" | "loop" | "for" | "let" => {
                        impurity.get_or_insert_with(|| format!("`{}`", t.text));
                    }
                    "=" => {
                        impurity.get_or_insert_with(|| "an assignment".to_string());
                    }
                    ";" => semis += 1,
                    _ => {}
                }
            }
            if semis > 1 {
                impurity.get_or_insert_with(|| "multiple statements".to_string());
            }
            let problem = if forwards == 0 {
                Some(format!("never calls `{}`", rec.name))
            } else if forwards > 1 {
                Some(format!("calls `{}` more than once", rec.name))
            } else {
                impurity.map(|w| format!("contains {w} around the forward"))
            };
            if let Some(problem) = problem {
                let mut d = Diagnostic::new(
                    plain.file.clone(),
                    plain.line,
                    1,
                    "recorded-parity-drift",
                    Severity::Deny,
                    format!(
                        "`{}` must be a pure forward to `{}` so the recorded/plain pair \
                         cannot drift, but it {problem}",
                        plain.path(),
                        rec.name
                    ),
                );
                d.token = plain.name.clone();
                d.fn_path = plain.path();
                out.push(d);
            }
        }
    }
}

/// One mutex acquisition: the field-name key and its anchor.
#[derive(Debug, Clone)]
struct Acquire {
    key: String,
    line: u32,
    col: u32,
}

/// `lock-order` over the whole graph (not just the hot cone: a lock
/// inversion between any two reachable paths can deadlock the server).
fn lock_order(input: &ReachInput<'_>, _parent: &BTreeMap<usize, usize>, out: &mut Vec<Diagnostic>) {
    let n = input.syms.len();
    // Own acquisitions per fn, in body order.
    let mut own: Vec<Vec<Acquire>> = vec![Vec::new(); n];
    for &(lo, hi, tokens) in input.files {
        let file_syms = &input.syms[lo..hi];
        for (off, sym) in file_syms.iter().enumerate() {
            if sym.is_test {
                continue;
            }
            let text = |i: usize| tokens.get(i).map_or("", |t| t.text.as_str());
            for i in body_indices(sym, file_syms, tokens.len()) {
                if text(i) == "lock" && i > 0 && text(i - 1) == "." && text(i + 1) == "(" {
                    let key = if i >= 2 && tokens[i - 2].kind == TokenKind::Ident {
                        tokens[i - 2].text.clone()
                    } else {
                        "<expr>".to_string()
                    };
                    own[lo + off].push(Acquire {
                        key,
                        line: tokens[i].line,
                        col: tokens[i].col,
                    });
                }
            }
        }
    }

    // cone_locks: fixpoint of lock keys acquired in a fn or its callees.
    let mut cone: Vec<BTreeSet<String>> = own
        .iter()
        .map(|a| a.iter().map(|x| x.key.clone()).collect())
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for f in 0..n {
            for &g in &input.graph.succ[f] {
                if g == f {
                    continue;
                }
                let add: Vec<String> = cone[g].difference(&cone[f]).cloned().collect();
                if !add.is_empty() {
                    cone[f].extend(add);
                    changed = true;
                }
            }
        }
    }

    // Ordered pairs with one deterministic witness each: first-seen in
    // symbol order, anchored at the *second* acquisition of the pair.
    let mut pairs: BTreeMap<(String, String), (String, u32, u32, String)> = BTreeMap::new();
    for (f, sym) in input.syms.iter().enumerate() {
        if sym.is_test {
            continue;
        }
        // Own sequential pairs.
        for (a_ix, a) in own[f].iter().enumerate() {
            for b in own[f].iter().skip(a_ix + 1) {
                if a.key != b.key {
                    pairs
                        .entry((a.key.clone(), b.key.clone()))
                        .or_insert_with(|| (sym.file.clone(), b.line, b.col, sym.path()));
                }
            }
            // Held-across-call pairs: anything the callees' cones acquire.
            for &g in &input.graph.succ[f] {
                for m in &cone[g] {
                    if *m != a.key {
                        pairs
                            .entry((a.key.clone(), m.clone()))
                            .or_insert_with(|| (sym.file.clone(), a.line, a.col, sym.path()));
                    }
                }
            }
        }
    }

    for ((a, b), (file, line, col, fn_path)) in &pairs {
        if a >= b {
            continue; // report each unordered pair once, from the a<b side
        }
        if let Some((rfile, rline, rcol, rfn)) = pairs.get(&(b.clone(), a.clone())) {
            let mut d = Diagnostic::new(
                file.clone(),
                *line,
                *col,
                "lock-order",
                Severity::Deny,
                format!(
                    "mutexes `{a}` then `{b}` are acquired in this order here (in `{fn_path}`) \
                     but in the opposite order at {rfile}:{rline}:{rcol} (in `{rfn}`); pick one \
                     global order or merge the critical sections"
                ),
            );
            d.token = format!("{a}<{b}");
            d.fn_path = fn_path.clone();
            out.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::lexer::lex;
    use crate::rules::classify_crate;
    use crate::scope::test_scopes;
    use crate::symbols::file_symbols;

    fn analyze(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut syms = Vec::new();
        let mut toks = Vec::new();
        let mut ranges = Vec::new();
        for (rel, src) in files {
            let lexed = lex(src);
            let scopes = test_scopes(&lexed.tokens);
            let krate = classify_crate(rel);
            let fs = file_symbols(rel, &krate, &lexed.tokens, &scopes, &lexed.comments);
            let lo = syms.len();
            syms.extend(fs.fns);
            ranges.push((lo, syms.len()));
            toks.push(lexed.tokens);
        }
        let views: Vec<(usize, usize, &[Token])> = ranges
            .iter()
            .zip(&toks)
            .map(|(&(lo, hi), t)| (lo, hi, t.as_slice()))
            .collect();
        let graph = callgraph::build(&syms, &views);
        run(&ReachInput {
            syms: &syms,
            graph: &graph,
            files: &views,
        })
    }

    #[test]
    fn panic_two_calls_below_a_root_is_caught() {
        let diags = analyze(&[(
            "crates/novelty/src/p.rs",
            "pub fn score_batch() { middle(); }\n\
             fn middle() { deep(); }\n\
             fn deep() { panic!(\"boom\"); }",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "hot-path-transitive-panic");
        assert_eq!(diags[0].fn_path, "novelty::deep");
        assert!(diags[0].message.contains("novelty::score_batch"));
    }

    #[test]
    fn unreachable_fns_are_not_scanned() {
        let diags = analyze(&[(
            "crates/novelty/src/p.rs",
            "pub fn score_batch() {}\nfn cold() { x.unwrap(); }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn hot_root_marker_adds_a_root() {
        let diags = analyze(&[(
            "crates/bench/src/bin/b.rs",
            "// sncheck:hot-root\nfn timing_loop() { helper(); }\n\
             fn helper() { let v = vec![0u8; 4]; }",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "hot-path-transitive-alloc");
    }

    #[test]
    fn clock_in_cone_is_flagged_except_in_obs() {
        let diags = analyze(&[
            (
                "crates/novelty/src/p.rs",
                "pub fn classify_each() { tick(); obs_tick(); }\n\
                 fn tick() { let t = Instant::now(); }",
            ),
            (
                "crates/obs/src/s.rs",
                "pub fn obs_tick() { let t = Instant::now(); }",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "hot-path-transitive-clock");
        assert_eq!(diags[0].fn_path, "novelty::tick");
    }

    #[test]
    fn diamond_reaches_the_shared_leaf_once() {
        let diags = analyze(&[(
            "crates/novelty/src/p.rs",
            "pub fn score_batch() { left(); right(); }\n\
             fn left() { shared(); }\n\
             fn right() { shared(); }\n\
             fn shared() { x.unwrap(); }",
        )]);
        // One finding for the one token, not one per path.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].fn_path, "novelty::shared");
    }

    #[test]
    fn drift_fires_when_the_wrapper_grows_logic() {
        let diags = analyze(&[(
            "crates/obs/src/p.rs",
            "pub fn go(x: u8) -> u8 { let y = go_recorded(x); y }\n\
             pub fn go_recorded(x: u8) -> u8 { x }",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "recorded-parity-drift");
        assert!(diags[0].message.contains("`let`"), "{}", diags[0].message);
    }

    #[test]
    fn pure_forward_passes() {
        let diags = analyze(&[(
            "crates/obs/src/p.rs",
            "pub fn go(x: u8) -> u8 { go_recorded(x, noop()) }\n\
             pub fn go_recorded(x: u8, n: u8) -> u8 { x + n }\n\
             fn noop() -> u8 { 0 }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn drift_fires_when_the_wrapper_reimplements() {
        let diags = analyze(&[(
            "crates/obs/src/p.rs",
            "pub fn go(x: u8) -> u8 { x }\n\
             pub fn go_recorded(x: u8) -> u8 { x }",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("never calls"));
    }

    #[test]
    fn lock_inversion_is_flagged_once_with_both_witnesses() {
        let diags = analyze(&[(
            "crates/novelty/src/p.rs",
            "fn ab(&self) { self.alpha.lock(); self.beta.lock(); }\n\
             fn ba(&self) { self.beta.lock(); self.alpha.lock(); }",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "lock-order");
        assert_eq!(diags[0].token, "alpha<beta");
        assert!(diags[0].message.contains("opposite order"));
    }

    #[test]
    fn lock_order_propagates_through_calls() {
        let diags = analyze(&[(
            "crates/novelty/src/p.rs",
            "fn outer(&self) { self.alpha.lock(); inner_b(); }\n\
             fn inner_b() { GLOBAL.beta.lock(); }\n\
             fn other(&self) { self.beta.lock(); inner_a(); }\n\
             fn inner_a() { GLOBAL.alpha.lock(); }",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "lock-order");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let diags = analyze(&[(
            "crates/novelty/src/p.rs",
            "fn ab(&self) { self.alpha.lock(); self.beta.lock(); }\n\
             fn ab2(&self) { self.alpha.lock(); self.beta.lock(); }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn float_promotion_fires_only_in_int_hot_fns() {
        let diags = analyze(&[(
            "crates/ndtensor/src/q.rs",
            "// sncheck:int-hot\nfn qgemm(x: i32) -> f32 { x as f32 }\n\
             fn plain(x: i32) -> f32 { x as f32 }",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "no-float-promotion");
        assert_eq!(diags[0].token, "as f32");
        assert_eq!(diags[0].fn_path, "ndtensor::qgemm");
    }
}
