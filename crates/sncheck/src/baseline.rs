//! `--diff` baselines: a committed set of accepted finding fingerprints.
//!
//! The file is the tiny JSON document
//!
//! ```json
//! {
//!   "sncheck_baseline_version": 1,
//!   "fingerprints": [
//!     "hot-path-transitive-alloc|novelty::Pipeline::score_batch|vec!|0"
//!   ]
//! }
//! ```
//!
//! and is keyed purely by [`crate::diag::Diagnostic::fingerprint`] —
//! `rule|fn_path|token|ordinal` — never by line numbers, so reformatting,
//! renaming a file, or inserting code above a finding does not resurrect
//! it. The parser is hand-rolled (the linter is std-only) and accepts
//! exactly the shape the writer emits plus insignificant whitespace;
//! anything else is a hard error so a corrupted baseline cannot silently
//! accept everything.

use std::collections::BTreeSet;

use crate::diag::{json_string, Report};

/// A parsed baseline: the set of accepted fingerprints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Accepted fingerprints, ordered (the writer emits them sorted).
    pub fingerprints: BTreeSet<String>,
}

impl Baseline {
    /// Parses a baseline document. Errors describe what was malformed.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut version: Option<u64> = None;
        let mut fingerprints: Option<BTreeSet<String>> = None;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "sncheck_baseline_version" => version = Some(p.number()?),
                "fingerprints" => {
                    p.expect(b'[')?;
                    let mut set = BTreeSet::new();
                    loop {
                        p.skip_ws();
                        if p.eat(b']') {
                            break;
                        }
                        set.insert(p.string()?);
                        p.skip_ws();
                        if !p.eat(b',') {
                            p.skip_ws();
                            p.expect(b']')?;
                            break;
                        }
                    }
                    fingerprints = Some(set);
                }
                other => return Err(format!("unknown baseline key `{other}`")),
            }
            p.skip_ws();
            if !p.eat(b',') {
                p.skip_ws();
                p.expect(b'}')?;
                break;
            }
        }
        match version {
            Some(1) => {}
            Some(v) => return Err(format!("unsupported sncheck_baseline_version {v}")),
            None => return Err("missing sncheck_baseline_version".to_string()),
        }
        Ok(Baseline {
            fingerprints: fingerprints.ok_or("missing fingerprints array")?,
        })
    }

    /// Renders the canonical baseline document (stable byte-for-byte;
    /// fingerprints sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fingerprints.len() * 80);
        out.push_str("{\n  \"sncheck_baseline_version\": 1,\n  \"fingerprints\": [");
        for (i, fp) in self.fingerprints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json_string(fp));
        }
        if !self.fingerprints.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The baseline capturing every current finding of `report` —
    /// `--write-baseline` output.
    pub fn from_report(report: &Report) -> Baseline {
        Baseline {
            fingerprints: report
                .diagnostics
                .iter()
                .map(|d| d.fingerprint.clone())
                .collect(),
        }
    }

    /// Marks every finding of `report` whose fingerprint is accepted as
    /// `baselined` (kept in the output, excluded from the exit code).
    pub fn apply(&self, report: &mut Report) {
        for d in &mut report.diagnostics {
            if self.fingerprints.contains(&d.fingerprint) {
                d.baselined = true;
            }
        }
    }
}

/// Minimal recursive-descent scanner over the baseline grammar.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} of baseline",
                b as char, self.pos
            ))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start} of baseline"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start} of baseline"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string in baseline".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        // Fingerprints are plain ASCII; \uXXXX never
                        // appears in files the writer produced.
                        other => {
                            return Err(format!(
                                "unsupported escape `\\{}` in baseline",
                                other.map(|&b| b as char).unwrap_or('?')
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, Severity};

    fn fp_diag(fp: &str) -> Diagnostic {
        let mut d = Diagnostic::new("a.rs", 1, 1, "lock-order", Severity::Deny, "m");
        d.fingerprint = fp.to_string();
        d
    }

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.fingerprints.insert("r|c::f|tok|0".to_string());
        b.fingerprints.insert("r|c::g|tok|1".to_string());
        let text = b.to_json();
        assert_eq!(Baseline::parse(&text).unwrap(), b);
        // And the empty baseline too.
        let empty = Baseline::default();
        assert_eq!(Baseline::parse(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn rejects_garbage_and_wrong_versions() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"fingerprints\": []}").is_err());
        assert!(
            Baseline::parse("{\"sncheck_baseline_version\": 2, \"fingerprints\": []}").is_err()
        );
        assert!(Baseline::parse("{\"sncheck_baseline_version\": 1, \"oops\": []}").is_err());
    }

    #[test]
    fn apply_marks_only_matching_fingerprints() {
        let mut b = Baseline::default();
        b.fingerprints.insert("known".to_string());
        let mut r = Report {
            files_checked: 1,
            diagnostics: vec![fp_diag("known"), fp_diag("new")],
            files: Vec::new(),
        };
        b.apply(&mut r);
        assert!(r.diagnostics[0].baselined);
        assert!(!r.diagnostics[1].baselined);
        assert_eq!(r.deny_count(), 1);
    }

    #[test]
    fn from_report_captures_all_fingerprints() {
        let r = Report {
            files_checked: 1,
            diagnostics: vec![fp_diag("b"), fp_diag("a"), fp_diag("b")],
            files: Vec::new(),
        };
        let b = Baseline::from_report(&r);
        assert_eq!(b.fingerprints.len(), 2);
        assert!(b.to_json().find("\"a\"").unwrap() < b.to_json().find("\"b\"").unwrap());
    }
}
