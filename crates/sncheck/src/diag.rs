//! Diagnostics: the linter's output type and its two renderings.
//!
//! Both renderings are fully deterministic — diagnostics are sorted by
//! `(path, line, col, rule)`, no timestamps or environment data are
//! included, and the JSON writer is hand-rolled so the byte stream is a
//! pure function of the findings. CI relies on this: the acceptance
//! check runs the tool twice and `cmp`s the JSON artifacts.

use std::fmt;

/// How a diagnostic counts toward the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene findings (stale or unknown suppressions); fail only under
    /// `--deny-all`.
    Warn,
    /// Invariant violations; always fail.
    Deny,
}

impl Severity {
    /// Lowercase label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier (e.g. `no-panic-in-lib`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human explanation, including the remedy.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.col,
            self.severity.label(),
            self.rule,
            self.message
        )
    }
}

/// The result of checking a set of files.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of files scanned (including clean ones).
    pub files_checked: usize,
    /// All findings, sorted by `(path, line, col, rule)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Sorts diagnostics into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
    }

    /// Findings at [`Severity::Deny`].
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Renders the canonical JSON document (stable byte-for-byte).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 128);
        out.push_str("{\n");
        out.push_str("  \"sncheck_schema_version\": 1,\n");
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str(&format!(
            "  \"diagnostic_count\": {},\n",
            self.diagnostics.len()
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"path\": {}, ", json_string(&d.path)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"col\": {}, ", d.col));
            out.push_str(&format!("\"rule\": {}, ", json_string(d.rule)));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_string(d.severity.label())
            ));
            out.push_str(&format!("\"message\": {}", json_string(&d.message)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, line: u32, col: u32, rule: &'static str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            col,
            rule,
            severity: Severity::Deny,
            message: "m".to_string(),
        }
    }

    #[test]
    fn sort_is_canonical() {
        let mut r = Report {
            files_checked: 2,
            diagnostics: vec![diag("b.rs", 1, 1, "x"), diag("a.rs", 9, 1, "x")],
        };
        r.sort();
        assert_eq!(r.diagnostics[0].path, "a.rs");
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Report {
            files_checked: 1,
            diagnostics: vec![Diagnostic {
                path: "a\"b.rs".to_string(),
                line: 3,
                col: 7,
                rule: "no-float-eq",
                severity: Severity::Warn,
                message: "tab\there\nand \\slash".to_string(),
            }],
        };
        r.sort();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"b.rs"));
        assert!(a.contains("tab\\there\\nand \\\\slash"));
        assert!(a.contains("\"files_checked\": 1"));
        assert!(a.contains("\"severity\": \"warn\""));
    }

    #[test]
    fn empty_report_json() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"diagnostics\": []"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn display_has_file_line_anchor() {
        let d = diag("crates/x/src/a.rs", 12, 5, "no-panic-in-lib");
        assert_eq!(
            d.to_string(),
            "crates/x/src/a.rs:12:5: deny [no-panic-in-lib] m"
        );
    }
}
