//! Diagnostics: the linter's output type and its two renderings.
//!
//! Both renderings are fully deterministic — diagnostics are sorted by
//! `(path, line, col, rule)`, no timestamps or environment data are
//! included, and the JSON writer is hand-rolled so the byte stream is a
//! pure function of the findings. CI relies on this: the acceptance
//! check runs the tool twice and `cmp`s the JSON artifacts.

use std::fmt;

/// How a diagnostic counts toward the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene findings (stale or unknown suppressions); fail only under
    /// `--deny-all`.
    Warn,
    /// Invariant violations; always fail.
    Deny,
}

impl Severity {
    /// Lowercase label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier (e.g. `no-panic-in-lib`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human explanation, including the remedy.
    pub message: String,
    /// The matched construct (`unwrap`, `vec!`, `Instant::now`, …); used
    /// by the suppression-stable fingerprint. Empty for hygiene findings.
    pub token: String,
    /// Qualified path of the enclosing fn (`novelty::StreamServer::step`)
    /// — filled by the rule when it knows it, or by the engine from the
    /// symbol table; `crate::<file-scope>` when the finding sits outside
    /// any fn item.
    pub fn_path: String,
    /// Stable identity `rule|fn_path|token|ordinal` — a pure function of
    /// *what* was found, not *where on the page*: line shifts and file
    /// renames do not change it. `--diff` keys the baseline off this.
    pub fingerprint: String,
    /// True in `--diff` mode when the fingerprint is in the baseline:
    /// reported, but not counted against the exit code.
    pub baselined: bool,
}

impl Diagnostic {
    /// A finding with only the positional fields set; fingerprint fields
    /// are filled by the engine's fingerprint pass.
    pub fn new(
        path: impl Into<String>,
        line: u32,
        col: u32,
        rule: &'static str,
        severity: Severity,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            path: path.into(),
            line,
            col,
            rule,
            severity,
            message: message.into(),
            token: String::new(),
            fn_path: String::new(),
            fingerprint: String::new(),
            baselined: false,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.col,
            self.severity.label(),
            self.rule,
            self.message
        )
    }
}

/// One scanned file and its content digest — the per-file cache key
/// embedded in the JSON output so consumers (and the `--diff` gate) can
/// tell which inputs produced the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDigest {
    /// Workspace-relative path.
    pub path: String,
    /// FNV-1a 64-bit digest of the file bytes, lowercase hex.
    pub digest: String,
    /// Findings anchored in this file (after suppressions).
    pub diagnostics: usize,
}

/// FNV-1a 64-bit hash — the per-file digest. Hand-rolled so the linter
/// stays std-only and the digest is a pure function of the bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The result of checking a set of files.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of files scanned (including clean ones).
    pub files_checked: usize,
    /// All findings, sorted by `(path, line, col, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-file content digests, sorted by path.
    pub files: Vec<FileDigest>,
}

impl Report {
    /// Sorts diagnostics into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        self.files.sort_by(|a, b| a.path.cmp(&b.path));
    }

    /// Findings at [`Severity::Deny`] that are not baselined — the count
    /// the exit code is driven by.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny && !d.baselined)
            .count()
    }

    /// Findings suppressed by the `--diff` baseline.
    pub fn baselined_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.baselined).count()
    }

    /// Renders the canonical JSON document (stable byte-for-byte).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 192);
        out.push_str("{\n");
        out.push_str("  \"sncheck_schema_version\": 2,\n");
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str(&format!(
            "  \"diagnostic_count\": {},\n",
            self.diagnostics.len()
        ));
        out.push_str(&format!(
            "  \"baselined_count\": {},\n",
            self.baselined_count()
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"path\": {}, ", json_string(&d.path)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"col\": {}, ", d.col));
            out.push_str(&format!("\"rule\": {}, ", json_string(d.rule)));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_string(d.severity.label())
            ));
            out.push_str(&format!("\"fn\": {}, ", json_string(&d.fn_path)));
            out.push_str(&format!(
                "\"fingerprint\": {}, ",
                json_string(&d.fingerprint)
            ));
            out.push_str(&format!("\"baselined\": {}, ", d.baselined));
            out.push_str(&format!("\"message\": {}", json_string(&d.message)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"files\": [");
        for (i, f) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"digest\": {}, \"diagnostics\": {}}}",
                json_string(&f.path),
                json_string(&f.digest),
                f.diagnostics,
            ));
        }
        if !self.files.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, line: u32, col: u32, rule: &'static str) -> Diagnostic {
        Diagnostic::new(path, line, col, rule, Severity::Deny, "m")
    }

    #[test]
    fn sort_is_canonical() {
        let mut r = Report {
            files_checked: 2,
            diagnostics: vec![diag("b.rs", 1, 1, "x"), diag("a.rs", 9, 1, "x")],
            files: Vec::new(),
        };
        r.sort();
        assert_eq!(r.diagnostics[0].path, "a.rs");
    }

    #[test]
    fn baselined_findings_do_not_count_as_denied() {
        let mut clean = diag("a.rs", 1, 1, "x");
        clean.baselined = true;
        let r = Report {
            files_checked: 1,
            diagnostics: vec![clean, diag("a.rs", 2, 1, "x")],
            files: Vec::new(),
        };
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.baselined_count(), 1);
    }

    #[test]
    fn fnv_digest_is_stable() {
        // Reference vector for FNV-1a 64: hash of empty input is the
        // offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), fnv1a64(b"a"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Report {
            files_checked: 1,
            diagnostics: vec![Diagnostic::new(
                "a\"b.rs",
                3,
                7,
                "no-float-eq",
                Severity::Warn,
                "tab\there\nand \\slash",
            )],
            files: vec![FileDigest {
                path: "a\"b.rs".to_string(),
                digest: format!("{:016x}", fnv1a64(b"fn f() {}")),
                diagnostics: 1,
            }],
        };
        r.sort();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"b.rs"));
        assert!(a.contains("tab\\there\\nand \\\\slash"));
        assert!(a.contains("\"files_checked\": 1"));
        assert!(a.contains("\"severity\": \"warn\""));
    }

    #[test]
    fn empty_report_json() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"diagnostics\": []"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn display_has_file_line_anchor() {
        let d = diag("crates/x/src/a.rs", 12, 5, "no-panic-in-lib");
        assert_eq!(
            d.to_string(),
            "crates/x/src/a.rs:12:5: deny [no-panic-in-lib] m"
        );
    }
}
