//! Command-line driver for the workspace invariant linter.
//!
//! Exit codes: `0` clean, `1` denied diagnostics found, `2` usage or I/O
//! error — the same convention as the `saliency-novelty` CLI.

use std::path::PathBuf;
use std::process::ExitCode;

use sncheck::{check_files, discover_workspace, expand_path, Severity, RULES};

const USAGE: &str = "\
sncheck — workspace invariant linter for the saliency-novelty reproduction

USAGE:
    sncheck [OPTIONS] [PATHS...]

OPTIONS:
    --workspace        Check every .rs file under the root (skipping
                       target/, vendor/ and fixtures/)
    --root <DIR>       Directory paths are classified against (default .)
    --json <FILE>      Also write diagnostics as deterministic JSON
    --deny-all         Treat hygiene warnings (unused/unknown
                       suppressions) as errors too
    --quiet            Suppress per-diagnostic lines; print the summary only
    --list-rules       Print the rule table and exit
    -h, --help         Show this help

Suppress a finding on its own line with a trailing comment:
    risky.unwrap() // sncheck:allow(no-panic-in-lib): length checked above

EXIT CODES:
    0  no denied diagnostics
    1  denied diagnostics present
    2  usage or I/O error
";

struct Options {
    workspace: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    deny_all: bool,
    quiet: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        workspace: false,
        root: PathBuf::from("."),
        json: None,
        deny_all: false,
        quiet: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--deny-all" => opts.deny_all = true,
            "--quiet" => opts.quiet = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a file argument")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<30} {}", r.id, r.summary);
                }
                return Ok(None);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        return Err("nothing to check: pass --workspace or explicit paths".to_string());
    }
    Ok(Some(opts))
}

fn run(opts: &Options) -> Result<bool, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if opts.workspace {
        files.extend(
            discover_workspace(&opts.root)
                .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?,
        );
    }
    for p in &opts.paths {
        if !p.exists() {
            return Err(format!("no such path: {}", p.display()));
        }
        files.extend(expand_path(p).map_err(|e| format!("scanning {}: {e}", p.display()))?);
    }

    let report = check_files(&opts.root, &files).map_err(|e| e.to_string())?;

    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, report.to_json())
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }

    let denied = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Deny || opts.deny_all)
        .count();
    if !opts.quiet {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }
    println!(
        "sncheck: {} file{} checked, {} diagnostic{} ({} denied)",
        report.files_checked,
        if report.files_checked == 1 { "" } else { "s" },
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        denied,
    );
    Ok(denied == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
