//! Command-line driver for the workspace invariant linter.
//!
//! Exit codes: `0` clean, `1` denied diagnostics found, `2` usage or I/O
//! error — the same convention as the `saliency-novelty` CLI.

use std::path::PathBuf;
use std::process::ExitCode;

use sncheck::{check_files, discover_workspace, expand_path, Baseline, Severity, RULES};

const USAGE: &str = "\
sncheck — workspace invariant linter for the saliency-novelty reproduction

USAGE:
    sncheck [OPTIONS] [PATHS...]

OPTIONS:
    --workspace        Check every .rs file under the root (skipping
                       target/, vendor/ and fixtures/)
    --root <DIR>       Directory paths are classified against (default .)
    --json <FILE>      Also write diagnostics as deterministic JSON
    --graph <FILE>     Also write the workspace call graph as
                       deterministic JSON
    --baseline <FILE>  Baseline of accepted finding fingerprints
                       (requires --diff or --write-baseline)
    --diff             With --baseline: report baselined findings but
                       fail only on NEW ones (keyed by fingerprint, so
                       line shifts and file renames never resurrect an
                       accepted finding)
    --write-baseline <FILE>
                       Write the current findings as a baseline and exit
                       successfully (the paved-road way to adopt a rule
                       on a codebase with existing debt)
    --deny-all         Treat hygiene warnings (unused/unknown
                       suppressions) as errors too
    --quiet            Suppress per-diagnostic lines; print the summary only
    --list-rules       Print the rule table and exit
    -h, --help         Show this help

Suppress a finding on its own line with a trailing comment:
    risky.unwrap() // sncheck:allow(no-panic-in-lib): length checked above

EXIT CODES:
    0  no denied diagnostics
    1  denied diagnostics present
    2  usage or I/O error
";

struct Options {
    workspace: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    graph: Option<PathBuf>,
    baseline: Option<PathBuf>,
    diff: bool,
    write_baseline: Option<PathBuf>,
    deny_all: bool,
    quiet: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        workspace: false,
        root: PathBuf::from("."),
        json: None,
        graph: None,
        baseline: None,
        diff: false,
        write_baseline: None,
        deny_all: false,
        quiet: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--deny-all" => opts.deny_all = true,
            "--quiet" => opts.quiet = true,
            "--diff" => opts.diff = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a file argument")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--graph" => {
                let v = it.next().ok_or("--graph needs a file argument")?;
                opts.graph = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file argument")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it.next().ok_or("--write-baseline needs a file argument")?;
                opts.write_baseline = Some(PathBuf::from(v));
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<30} {}", r.id, r.summary);
                }
                return Ok(None);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        return Err("nothing to check: pass --workspace or explicit paths".to_string());
    }
    if opts.diff && opts.baseline.is_none() {
        return Err("--diff needs --baseline <FILE>".to_string());
    }
    if opts.baseline.is_some() && !opts.diff && opts.write_baseline.is_none() {
        return Err("--baseline does nothing without --diff".to_string());
    }
    Ok(Some(opts))
}

fn run(opts: &Options) -> Result<bool, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if opts.workspace {
        files.extend(
            discover_workspace(&opts.root)
                .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?,
        );
    }
    for p in &opts.paths {
        if !p.exists() {
            return Err(format!("no such path: {}", p.display()));
        }
        files.extend(expand_path(p).map_err(|e| format!("scanning {}: {e}", p.display()))?);
    }

    let analysis = check_files(&opts.root, &files).map_err(|e| e.to_string())?;
    let mut report = analysis.report;

    if opts.diff {
        let path = opts.baseline.as_ref().expect("checked in parse_args");
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let baseline = Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        baseline.apply(&mut report);
    }

    if let Some(out) = &opts.write_baseline {
        let baseline = Baseline::from_report(&report);
        std::fs::write(out, baseline.to_json())
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!(
            "sncheck: wrote baseline with {} fingerprint{} to {}",
            baseline.fingerprints.len(),
            if baseline.fingerprints.len() == 1 {
                ""
            } else {
                "s"
            },
            out.display(),
        );
        return Ok(true);
    }

    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, report.to_json())
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }
    if let Some(graph_path) = &opts.graph {
        std::fs::write(graph_path, &analysis.graph_json)
            .map_err(|e| format!("writing {}: {e}", graph_path.display()))?;
    }

    let denied = report
        .diagnostics
        .iter()
        .filter(|d| (d.severity == Severity::Deny || opts.deny_all) && !d.baselined)
        .count();
    if !opts.quiet {
        for d in &report.diagnostics {
            if d.baselined {
                println!("{d} (baselined)");
            } else {
                println!("{d}");
            }
        }
    }
    let mut summary = format!(
        "sncheck: {} file{} checked, {} diagnostic{} ({} denied)",
        report.files_checked,
        if report.files_checked == 1 { "" } else { "s" },
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        denied,
    );
    if opts.diff {
        summary.push_str(&format!(", {} baselined", report.baselined_count()));
    }
    println!("{summary}");
    Ok(denied == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
