//! The rule set: each rule turns one of the workspace's dynamically
//! tested guarantees into a statically checked invariant.
//!
//! | rule | guarantee it backs |
//! |------|--------------------|
//! | `no-panic-in-lib` | the streaming runtime's "every frame yields exactly one decision" promise — a panic in scoring kills the stream |
//! | `no-ambient-clock` | bit-identical results at any thread count and with recording on/off — wall-clock reads belong to `obs::Stopwatch` |
//! | `no-raw-spawn` | the serial-parity proof — all parallelism funnels through `ndtensor::par` so one knob (and one proof) covers it |
//! | `no-nondeterministic-iteration` | byte-reproducible detector JSON and fault schedules — `HashMap` iteration order varies per process |
//! | `no-float-eq` | the ECDF-threshold contract — exact float equality is seed-hostile; epsilon helpers make tolerance explicit |
//! | `no-stdout-in-lib` | recording never perturbs detector output — library crates must not write to std streams |
//! | `recorded-parity` | the obs API lockstep — every public `*_recorded` entry point keeps a plain delegating wrapper |
//!
//! Rules run on *library* code only (the scope tracker exempts
//! `#[cfg(test)]`/`#[test]` regions; bins, benches, examples and
//! integration tests are exempted by path classification).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};
use crate::scope::TestScopes;

/// Crate whose lib target the root `src/` belongs to.
pub const ROOT_CRATE: &str = "saliency-novelty";

/// Crates whose non-test lib code must be panic-free: they sit on the
/// frame→verdict hot path.
const PANIC_FREE_CRATES: &[&str] = &["ndtensor", "neural", "saliency", "metrics", "novelty"];

/// Crates on the deterministic scoring/calibration path where unordered
/// hash collections are banned.
const DETERMINISTIC_CRATES: &[&str] = &[
    "ndtensor", "neural", "saliency", "metrics", "novelty", "simdrive",
];

/// Crates where lexical float-equality comparisons are flagged.
const FLOAT_EQ_CRATES: &[&str] = &[
    "ndtensor", "neural", "saliency", "metrics", "novelty", "simdrive", "vision",
];

/// The one module allowed to spawn threads.
const SPAWN_ALLOWED_FILE: &str = "crates/ndtensor/src/par.rs";

/// Per-frame hot-path modules where ad-hoc heap allocation is banned:
/// buffers must come from `ndtensor::scratch` (or a reused workspace) so
/// a warmed stream performs zero allocations per frame — the guarantee
/// `tests/zero_alloc_stream.rs` proves dynamically.
const HOT_ALLOC_FILES: &[&str] = &[
    "crates/ndtensor/src/matmul.rs",
    "crates/ndtensor/src/conv.rs",
    "crates/ndtensor/src/routines/base.rs",
    "crates/ndtensor/src/routines/kernels.rs",
    "crates/ndtensor/src/routines/selector.rs",
    "crates/saliency/src/vbp.rs",
    "crates/novelty/src/runtime.rs",
];

/// The one crate allowed to read the ambient clock.
const CLOCK_ALLOWED_CRATE: &str = "obs";

/// How a file participates in the build, derived from its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// Library source of the named crate — rules apply here.
    Lib {
        /// Crate name from the path (`crates/<name>/…`), [`ROOT_CRATE`]
        /// for the root `src/`, or empty for paths outside any known
        /// layout (generic rules still apply there).
        krate: String,
    },
    /// Binary target (`src/bin/**`, `src/main.rs`) — exempt.
    Bin,
    /// Integration tests (`tests/**`) — exempt.
    Tests,
    /// Benchmarks (`benches/**` and the `crates/bench` binaries, which
    /// time the hot path and join it via `sncheck:hot-root`) — exempt
    /// from per-line rules, visible to the call-graph pass.
    Benches,
    /// Examples (`examples/**`) — exempt.
    Examples,
}

/// Classifies a workspace-relative path (with `/` separators).
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest): (Option<&str>, &[&str]) = if parts.len() >= 3 && parts[0] == "crates" {
        (Some(parts[1]), &parts[2..])
    } else {
        (None, &parts[..])
    };
    match rest.first() {
        Some(&"src") => {
            if krate == Some("bench") && rest.get(1) == Some(&"bin") {
                // Bench binaries are bench scope, not plain binaries: they
                // time the scoring hot path, so their marked loops carry
                // the same transitive obligations the library does.
                FileKind::Benches
            } else if rest.get(1) == Some(&"bin") || rest.last() == Some(&"main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib {
                    krate: krate.unwrap_or(ROOT_CRATE).to_string(),
                }
            }
        }
        Some(&"tests") => FileKind::Tests,
        Some(&"benches") => FileKind::Benches,
        Some(&"examples") => FileKind::Examples,
        _ => FileKind::Lib {
            krate: krate.unwrap_or("").to_string(),
        },
    }
}

/// The crate a workspace-relative path belongs to, regardless of target
/// kind — bench binaries are `bench`, the root `src/` is [`ROOT_CRATE`],
/// paths outside any crate layout are `""`. The symbol table uses this so
/// fingerprints carry a crate for every file kind.
pub fn classify_crate(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 3 && parts[0] == "crates" {
        parts[1].to_string()
    } else if parts.first() == Some(&"src") {
        ROOT_CRATE.to_string()
    } else {
        String::new()
    }
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier used in diagnostics and `sncheck:allow` lists.
    pub id: &'static str,
    /// One-line summary for `--list-rules` and docs.
    pub summary: &'static str,
}

/// Every enforced rule, in documentation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-panic-in-lib",
        summary: "unwrap/expect/panic!/unreachable!/todo!/unimplemented! are banned in hot-path library crates",
    },
    RuleInfo {
        id: "no-ambient-clock",
        summary: "Instant::now/SystemTime only inside crates/obs; use obs::Stopwatch elsewhere",
    },
    RuleInfo {
        id: "no-raw-spawn",
        summary: "thread spawning only inside ndtensor::par, preserving the serial-parity proof surface",
    },
    RuleInfo {
        id: "no-nondeterministic-iteration",
        summary: "HashMap/HashSet banned on deterministic paths; use BTreeMap/BTreeSet or sorted Vecs",
    },
    RuleInfo {
        id: "no-float-eq",
        summary: "==/!= against float literals or float constants; use epsilon helpers",
    },
    RuleInfo {
        id: "no-stdout-in-lib",
        summary: "print!/eprintln!/dbg! reserved for binaries and crates/bench",
    },
    RuleInfo {
        id: "recorded-parity",
        summary: "every public *_recorded fn needs a plain-named wrapper in the same file",
    },
    RuleInfo {
        id: "no-hot-alloc",
        summary: "vec!/Vec::with_capacity/.to_vec() banned in per-frame hot modules; use ndtensor::scratch",
    },
    RuleInfo {
        id: "hot-path-transitive-alloc",
        summary: "allocation (vec!/Vec::with_capacity/.to_vec()) in any fn reachable from a hot root",
    },
    RuleInfo {
        id: "hot-path-transitive-panic",
        summary: "panic!/unwrap/expect and friends in any fn reachable from a hot root",
    },
    RuleInfo {
        id: "hot-path-transitive-clock",
        summary: "raw Instant::now/SystemTime in any fn reachable from a hot root (obs exempt)",
    },
    RuleInfo {
        id: "recorded-parity-drift",
        summary: "the plain wrapper of a public *_recorded fn must be a pure forward to it",
    },
    RuleInfo {
        id: "lock-order",
        summary: "two mutexes acquired in both orders somewhere in the reachable call graph",
    },
    RuleInfo {
        id: "no-float-promotion",
        summary: "`as f32`/`as f64` casts inside fns marked `// sncheck:int-hot`",
    },
    RuleInfo {
        id: "unused-suppression",
        summary: "sncheck:allow(...) that suppresses nothing on its line (hygiene; warn severity)",
    },
    RuleInfo {
        id: "unknown-rule",
        summary: "sncheck:allow(...) naming a rule that does not exist (hygiene; warn severity)",
    },
];

/// True when `id` names a known rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Everything a rule needs to examine one file.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Path classification.
    pub kind: &'a FileKind,
    /// Token stream.
    pub tokens: &'a [Token],
    /// Test-scope annotations for the token stream.
    pub scopes: &'a TestScopes,
}

impl FileCtx<'_> {
    fn lib_crate(&self) -> Option<&str> {
        match self.kind {
            FileKind::Lib { krate } => Some(krate.as_str()),
            _ => None,
        }
    }

    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    }

    fn diag(&self, i: usize, rule: &'static str, message: String) -> Diagnostic {
        let t = &self.tokens[i];
        let mut d = Diagnostic::new(self.rel, t.line, t.col, rule, Severity::Deny, message);
        // The anchor token doubles as the fingerprint token; the engine
        // fills the enclosing fn path from the symbol table.
        d.token = t.text.clone();
        d
    }

    /// Indices of tokens that belong to library (non-test) code.
    fn lib_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| !self.scopes.mask[i])
    }
}

/// Runs every applicable rule over one file.
pub fn run_rules(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(krate) = ctx.lib_crate() else {
        return out; // bins, tests, benches, examples: exempt
    };

    if PANIC_FREE_CRATES.contains(&krate) {
        no_panic_in_lib(ctx, &mut out);
    }
    if krate != CLOCK_ALLOWED_CRATE {
        no_ambient_clock(ctx, &mut out);
    }
    if ctx.rel != SPAWN_ALLOWED_FILE {
        no_raw_spawn(ctx, &mut out);
    }
    if DETERMINISTIC_CRATES.contains(&krate) {
        no_nondeterministic_iteration(ctx, &mut out);
    }
    if FLOAT_EQ_CRATES.contains(&krate) {
        no_float_eq(ctx, &mut out);
    }
    if krate != "bench" {
        no_stdout_in_lib(ctx, &mut out);
    }
    if HOT_ALLOC_FILES.contains(&ctx.rel) {
        no_hot_alloc(ctx, &mut out);
    }
    recorded_parity(ctx, &mut out);
    out
}

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn no_panic_in_lib(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in ctx.lib_indices() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if PANIC_METHODS.contains(&name)
            && i > 0
            && ctx.text(i - 1) == "."
            && ctx.text(i + 1) == "("
        {
            out.push(ctx.diag(
                i,
                "no-panic-in-lib",
                format!(
                    "`.{name}()` can panic in hot-path library code; return a Result \
                     (or document infallibility with `sncheck:allow`)"
                ),
            ));
        } else if PANIC_MACROS.contains(&name) && ctx.text(i + 1) == "!" {
            out.push(ctx.diag(
                i,
                "no-panic-in-lib",
                format!(
                    "`{name}!` aborts the frame->verdict pipeline; return an error \
                     (or document unreachability with `sncheck:allow`)"
                ),
            ));
        }
    }
}

fn no_ambient_clock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in ctx.lib_indices() {
        if ctx.is_ident(i, "Instant") && ctx.text(i + 1) == "::" && ctx.is_ident(i + 2, "now") {
            out.push(
                ctx.diag(
                    i,
                    "no-ambient-clock",
                    "ambient clock read; time through `obs::Stopwatch` so disabled recording \
                 performs zero clock reads"
                        .to_string(),
                ),
            );
        } else if ctx.is_ident(i, "SystemTime") {
            out.push(
                ctx.diag(
                    i,
                    "no-ambient-clock",
                    "wall-clock time is nondeterministic; only `crates/obs` may touch the clock"
                        .to_string(),
                ),
            );
        }
    }
}

const SPAWN_IDENTS: &[&str] = &["spawn", "scope", "Builder"];

fn no_raw_spawn(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in ctx.lib_indices() {
        if ctx.is_ident(i, "thread")
            && ctx.text(i + 1) == "::"
            && SPAWN_IDENTS.contains(&ctx.text(i + 2))
        {
            out.push(ctx.diag(
                i,
                "no-raw-spawn",
                format!(
                    "`thread::{}` outside `ndtensor::par` escapes the serial-parity proof; \
                     use `ndtensor::par::{{for_each_block, try_parallel_map}}`",
                    ctx.text(i + 2)
                ),
            ));
        }
    }
}

fn no_nondeterministic_iteration(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in ctx.lib_indices() {
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(ctx.diag(
                i,
                "no-nondeterministic-iteration",
                format!(
                    "`{}` iteration order varies per process and breaks byte-reproducible \
                     output; use `{ordered}` or a sorted Vec",
                    t.text
                ),
            ));
        }
    }
}

const FLOAT_CONSTS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY"];

fn no_float_eq(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let is_float_literal = |i: usize| {
        ctx.tokens
            .get(i)
            .is_some_and(|t| matches!(t.kind, TokenKind::Number { float: true }))
    };
    // `f32::NAN`-style constant whose *last* token sits at index `i`.
    let const_ends_at = |i: usize| {
        i >= 2
            && FLOAT_CONSTS.contains(&ctx.text(i))
            && ctx.text(i - 1) == "::"
            && (ctx.is_ident(i - 2, "f32") || ctx.is_ident(i - 2, "f64"))
    };
    let const_starts_at = |i: usize| {
        (ctx.is_ident(i, "f32") || ctx.is_ident(i, "f64"))
            && ctx.text(i + 1) == "::"
            && FLOAT_CONSTS.contains(&ctx.text(i + 2))
    };
    for i in ctx.lib_indices() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let lhs_float = i > 0 && (is_float_literal(i - 1) || const_ends_at(i - 1));
        let rhs_float = is_float_literal(i + 1) || const_starts_at(i + 1);
        if lhs_float || rhs_float {
            out.push(ctx.diag(
                i,
                "no-float-eq",
                format!(
                    "`{}` against a float is exact-representation roulette; compare with an \
                     epsilon helper or restructure",
                    t.text
                ),
            ));
        }
    }
}

const PRINT_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];

fn no_stdout_in_lib(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in ctx.lib_indices() {
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && ctx.text(i + 1) == "!"
        {
            out.push(ctx.diag(
                i,
                "no-stdout-in-lib",
                format!(
                    "`{}!` writes to std streams from library code; report through the \
                     obs recorder or move the print to a binary",
                    t.text
                ),
            ));
        }
    }
}

fn no_hot_alloc(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in ctx.lib_indices() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let found = match t.text.as_str() {
            "vec" if ctx.text(i + 1) == "!" => Some("vec!"),
            "Vec" if ctx.text(i + 1) == "::" && ctx.is_ident(i + 2, "with_capacity") => {
                Some("Vec::with_capacity")
            }
            "to_vec" if i > 0 && ctx.text(i - 1) == "." && ctx.text(i + 1) == "(" => {
                Some(".to_vec()")
            }
            _ => None,
        };
        if let Some(what) = found {
            out.push(ctx.diag(
                i,
                "no-hot-alloc",
                format!(
                    "`{what}` allocates on the per-frame hot path; take a pooled buffer from \
                     `ndtensor::scratch` or reuse a workspace (or `sncheck:allow` a \
                     setup-path allocation with a reason)"
                ),
            ));
        }
    }
}

/// True when the `fn` keyword at `i` belongs to a `pub` item. Walks back
/// over the tokens a visibility-qualified signature can legally contain.
fn fn_is_pub(ctx: &FileCtx<'_>, i: usize) -> bool {
    let mut j = i;
    for _ in 0..8 {
        if j == 0 {
            return false;
        }
        j -= 1;
        match ctx.text(j) {
            "pub" => return true,
            "crate" | "in" | "self" | "super" | "(" | ")" | "const" | "async" | "unsafe"
            | "extern" => continue,
            _ => {
                // String literal for `extern "C"` ABIs.
                if ctx.tokens[j].kind == TokenKind::Str {
                    continue;
                }
                return false;
            }
        }
    }
    false
}

fn recorded_parity(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    // All fn names declared in non-test code in this file.
    let mut declared: Vec<&str> = Vec::new();
    let mut recorded: Vec<usize> = Vec::new(); // index of the *name* token
    for i in ctx.lib_indices() {
        if ctx.is_ident(i, "fn")
            && ctx
                .tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            declared.push(ctx.text(i + 1));
            if ctx.text(i + 1).ends_with("_recorded") && fn_is_pub(ctx, i) {
                recorded.push(i + 1);
            }
        }
    }
    for idx in recorded {
        let name = ctx.text(idx);
        let base = &name[..name.len() - "_recorded".len()];
        if base.is_empty() {
            continue;
        }
        if !declared.contains(&base) {
            out.push(ctx.diag(
                idx,
                "recorded-parity",
                format!(
                    "public `{name}` has no plain `{base}` wrapper in this file; keep the \
                     recorded/plain obs API in lockstep"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_scopes;

    fn check(rel: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let scopes = test_scopes(&lexed.tokens);
        let kind = classify(rel);
        let ctx = FileCtx {
            rel,
            kind: &kind,
            tokens: &lexed.tokens,
            scopes: &scopes,
        };
        run_rules(&ctx)
    }

    const LIB: &str = "crates/novelty/src/x.rs";

    #[test]
    fn classify_kinds() {
        assert_eq!(
            classify("crates/neural/src/train.rs"),
            FileKind::Lib {
                krate: "neural".into()
            }
        );
        // Bench binaries are bench scope: exempt from per-line rules but
        // first-class in the call graph (their marked loops are hot roots).
        assert_eq!(classify("crates/bench/src/bin/fig3.rs"), FileKind::Benches);
        assert_eq!(classify("src/bin/saliency-novelty.rs"), FileKind::Bin);
        assert_eq!(classify("crates/novelty/src/bin/tool.rs"), FileKind::Bin);
        assert_eq!(classify("crates/sncheck/src/main.rs"), FileKind::Bin);
        assert_eq!(
            classify("src/lib.rs"),
            FileKind::Lib {
                krate: ROOT_CRATE.into()
            }
        );
        assert_eq!(classify("tests/cli.rs"), FileKind::Tests);
        assert_eq!(classify("crates/obs/benches/b.rs"), FileKind::Benches);
        assert_eq!(classify("examples/demo.rs"), FileKind::Examples);
    }

    #[test]
    fn panic_rule_fires_and_spares_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); unreachable!(); }\n\
                   #[cfg(test)] mod tests { fn t() { z.unwrap(); panic!(); } }";
        let diags = check(LIB, src);
        assert_eq!(
            diags.iter().filter(|d| d.rule == "no-panic-in-lib").count(),
            4
        );
    }

    #[test]
    fn panic_rule_ignores_unwrap_or_and_other_crates() {
        assert!(check(LIB, "fn f() { x.unwrap_or(1).unwrap_or_else(g); }").is_empty());
        // obs is not a panic-free crate.
        assert!(check("crates/obs/src/x.rs", "fn f() { x.unwrap(); }")
            .iter()
            .all(|d| d.rule != "no-panic-in-lib"));
    }

    #[test]
    fn clock_rule() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let diags = check(LIB, src);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == "no-ambient-clock")
                .count(),
            2
        );
        assert!(check("crates/obs/src/x.rs", src).is_empty());
        // Storing an Instant someone else created is fine.
        assert!(check(LIB, "fn f(t: Instant) -> Instant { t }").is_empty());
    }

    #[test]
    fn spawn_rule() {
        let src = "fn f() { std::thread::spawn(|| {}); thread::scope(|s| {}); }";
        let diags = check(LIB, src);
        assert_eq!(diags.iter().filter(|d| d.rule == "no-raw-spawn").count(), 2);
        assert!(check("crates/ndtensor/src/par.rs", src).is_empty());
        // available_parallelism is not spawning.
        assert!(check(LIB, "fn f() { thread::available_parallelism(); }").is_empty());
    }

    #[test]
    fn hash_rule() {
        let src = "use std::collections::HashMap; fn f() { let m: HashMap<u8, u8>; }";
        let diags = check(LIB, src);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == "no-nondeterministic-iteration")
                .count(),
            2
        );
        // vision is outside the deterministic set.
        assert!(check("crates/vision/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "no-nondeterministic-iteration"));
    }

    #[test]
    fn float_eq_rule() {
        let cases = [
            "fn f() { if x == 1.0 {} }",
            "fn f() { if 0.5 != y {} }",
            "fn f() { if x == f32::NAN {} }",
            "fn f() { if f64::INFINITY == x {} }",
        ];
        for src in cases {
            assert_eq!(
                check(LIB, src)
                    .iter()
                    .filter(|d| d.rule == "no-float-eq")
                    .count(),
                1,
                "{src}"
            );
        }
        // Integer equality, float inequality-ordering: fine.
        assert!(check(LIB, "fn f() { if x == 1 {} if x <= 1.0 {} }").is_empty());
    }

    #[test]
    fn stdout_rule() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(z); }";
        let diags = check(LIB, src);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == "no-stdout-in-lib")
                .count(),
            3
        );
        assert!(check("crates/bench/src/x.rs", src).is_empty());
        assert!(check("src/bin/cli.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_rule_fires_only_in_hot_files() {
        let src = "fn f() { let a = vec![0.0f32; 8]; let b = Vec::with_capacity(4); \
                   let c = s.to_vec(); }";
        let hot = "crates/ndtensor/src/matmul.rs";
        let diags = check(hot, src);
        assert_eq!(diags.iter().filter(|d| d.rule == "no-hot-alloc").count(), 3);
        // Other files in the same crate are not hot.
        assert!(check("crates/ndtensor/src/tensor.rs", src)
            .iter()
            .all(|d| d.rule != "no-hot-alloc"));
        // Test code inside a hot file is exempt.
        let test_src = "#[cfg(test)] mod tests { fn t() { let a = vec![1]; } }";
        assert!(check(hot, test_src).is_empty());
        // Non-allocating lookalikes do not fire.
        let ok = "fn f() { let v: Vec<f32> = scratch::take(8); v.to_vec; Vec::new(); }";
        assert!(check(hot, ok).iter().all(|d| d.rule != "no-hot-alloc"));
    }

    #[test]
    fn recorded_parity_rule() {
        let bad = "pub fn score_recorded() {}";
        let diags = check(LIB, bad);
        assert_eq!(
            diags.iter().filter(|d| d.rule == "recorded-parity").count(),
            1
        );
        let good = "pub fn score() { } pub fn score_recorded() {}";
        assert!(check(LIB, good).is_empty());
        // Private helpers are exempt.
        assert!(check(LIB, "fn helper_recorded() {}").is_empty());
        // pub(crate) still counts as public surface.
        let cr = "pub(crate) fn go_recorded() {}";
        assert_eq!(check(LIB, cr).len(), 1);
    }

    #[test]
    fn triggers_inside_literals_and_comments_do_not_fire() {
        let src = r#"
            fn f() {
                let a = "x.unwrap() panic! HashMap Instant::now()";
                let b = 'H';
                // x.unwrap(); thread::spawn; SystemTime
                /* println!("x"); x == 1.0 */
            }
        "#;
        assert!(check(LIB, src).is_empty());
    }
}
