//! A hand-rolled lossy Rust lexer.
//!
//! The rule engine only needs to know *where code is* — identifiers,
//! punctuation and literals with their source positions — and, just as
//! importantly, where code *is not*: rule trigger words inside string
//! literals, char literals or comments must never fire. The lexer
//! therefore handles the full literal grammar (escapes, raw strings with
//! arbitrary hash fences, byte/char literals, lifetimes, nested block
//! comments) but is deliberately lenient about everything else: an
//! unterminated literal consumes the rest of the file instead of
//! erroring, so the tool degrades gracefully on malformed input.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#idents`).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Numeric literal; `float` is true for decimal floats.
    Number {
        /// Whether the literal is a float (`1.0`, `1e-3`, `2f32`).
        float: bool,
    },
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-char operators (`::`, `==`, `!=`, …) are one
    /// token.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text. For raw identifiers the `r#` prefix is stripped so
    /// rules match on the name itself; for string/char literals this is
    /// the body without quotes.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// One comment (line or block) with the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
}

/// Lexer output: the token stream plus every comment (comments carry
/// `sncheck:allow` suppressions, so they are first-class).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch is a linear
/// scan. `!=`, `==`, `<=` and `>=` must be single tokens or the
/// `no-float-eq` rule would confuse `a <= 1.0` with an equality.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool, into: &mut String) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            into.push(c);
            self.bump();
        }
    }

    /// Consumes a `"…"` body after the opening quote. Non-raw strings
    /// honour `\` escapes; raw strings end at a `"` followed by `hashes`
    /// `#` characters.
    fn string_body(&mut self, raw: bool, hashes: usize) -> String {
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if !raw && c == '\\' {
                body.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    body.push(esc);
                }
                continue;
            }
            if c == '"' {
                let fence_closed = (1..=hashes).all(|k| self.peek(k) == Some('#'));
                if fence_closed {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return body;
                }
            }
            body.push(c);
            self.bump();
        }
        body // unterminated: lenient, consume to EOF
    }

    /// Consumes a char-literal body after the opening `'`, including the
    /// closing quote. Bounded so a stray quote cannot eat the file.
    fn char_body(&mut self) -> String {
        let mut body = String::new();
        // Longest legal char literal is '\u{10FFFF}' — 10 inner chars.
        for _ in 0..12 {
            match self.peek(0) {
                None | Some('\n') => break,
                Some('\\') => {
                    body.push('\\');
                    self.bump();
                    if let Some(esc) = self.bump() {
                        body.push(esc);
                    }
                }
                Some('\'') => {
                    self.bump();
                    break;
                }
                Some(c) => {
                    body.push(c);
                    self.bump();
                }
            }
        }
        body
    }
}

/// Lexes `source` into tokens and comments. Never fails: malformed input
/// produces a best-effort stream.
pub fn lex(source: &str) -> Lexed {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }

        // Comments.
        if c == '/' && lx.peek(1) == Some('/') {
            lx.bump();
            lx.bump();
            let mut text = String::new();
            lx.take_while(|c| c != '\n', &mut text);
            out.comments.push(Comment { text, line });
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            lx.bump();
            lx.bump();
            let mut text = String::new();
            let mut depth = 1usize;
            while depth > 0 {
                match (lx.peek(0), lx.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str("/*");
                        lx.bump();
                        lx.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        lx.bump();
                        lx.bump();
                        if depth > 0 {
                            text.push_str("*/");
                        }
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        lx.bump();
                    }
                    (None, _) => break, // unterminated: lenient
                }
            }
            out.comments.push(Comment { text, line });
            continue;
        }

        // Identifiers, which may turn out to prefix a literal: r"…",
        // r#"…"#, b"…", br#"…"#, c"…", cr#"…"#, b'…', r#ident.
        if is_ident_start(c) {
            let mut text = String::new();
            lx.take_while(is_ident_continue, &mut text);
            let string_prefix = matches!(text.as_str(), "r" | "b" | "c" | "br" | "cr");
            if string_prefix && lx.peek(0) == Some('"') {
                lx.bump();
                let raw = text.contains('r');
                let body = lx.string_body(raw, 0);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: body,
                    line,
                    col,
                });
                continue;
            }
            if string_prefix && lx.peek(0) == Some('#') {
                let mut hashes = 0usize;
                while lx.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if lx.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        lx.bump(); // hashes + opening quote
                    }
                    let body = lx.string_body(true, hashes);
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: body,
                        line,
                        col,
                    });
                    continue;
                }
                if text == "r" && hashes == 1 && lx.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier r#name: strip the prefix.
                    lx.bump(); // '#'
                    let mut name = String::new();
                    lx.take_while(is_ident_continue, &mut name);
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: name,
                        line,
                        col,
                    });
                    continue;
                }
            }
            if text == "b" && lx.peek(0) == Some('\'') {
                lx.bump();
                let body = lx.char_body();
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: body,
                    line,
                    col,
                });
                continue;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut float = false;
            let radix_prefix = c == '0'
                && matches!(lx.peek(1), Some('x') | Some('X') | Some('o') | Some('b'))
                // `0b` could open a byte-string-looking ident soup; only a
                // radix when followed by an alphanumeric digit.
                && lx.peek(2).is_some_and(|d| d.is_ascii_alphanumeric());
            if radix_prefix {
                text.push(lx.bump().unwrap_or_default());
                text.push(lx.bump().unwrap_or_default());
                lx.take_while(|c| c.is_ascii_alphanumeric() || c == '_', &mut text);
            } else {
                lx.take_while(|c| c.is_ascii_digit() || c == '_', &mut text);
                if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    float = true;
                    text.push('.');
                    lx.bump();
                    lx.take_while(|c| c.is_ascii_digit() || c == '_', &mut text);
                }
                if matches!(lx.peek(0), Some('e') | Some('E')) {
                    let signed = matches!(lx.peek(1), Some('+') | Some('-'))
                        && lx.peek(2).is_some_and(|d| d.is_ascii_digit());
                    let plain = lx.peek(1).is_some_and(|d| d.is_ascii_digit());
                    if signed || plain {
                        float = true;
                        text.push(lx.bump().unwrap_or_default());
                        if signed {
                            text.push(lx.bump().unwrap_or_default());
                        }
                        lx.take_while(|c| c.is_ascii_digit() || c == '_', &mut text);
                    }
                }
                // Suffix (f32, u64, …). An f-suffix makes it a float.
                let before = text.len();
                lx.take_while(is_ident_continue, &mut text);
                if text[before..].starts_with('f') {
                    float = true;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number { float },
                text,
                line,
                col,
            });
            continue;
        }

        // Plain string literals.
        if c == '"' {
            lx.bump();
            let body = lx.string_body(false, 0);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: body,
                line,
                col,
            });
            continue;
        }

        // Lifetimes vs char literals.
        if c == '\'' {
            lx.bump();
            let next = lx.peek(0);
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_continue(n) => lx.peek(1) == Some('\''),
                Some('\'') | None => false, // `''` malformed; treat as empty char
                Some(_) => true,            // '(' and friends
            };
            if is_char || next == Some('\'') {
                let body = lx.char_body();
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: body,
                    line,
                    col,
                });
            } else {
                let mut name = String::new();
                lx.take_while(is_ident_continue, &mut name);
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: name,
                    line,
                    col,
                });
            }
            continue;
        }

        // Multi-char punctuation, maximal munch.
        let mut matched = None;
        for p in PUNCTS {
            if p.chars().enumerate().all(|(k, pc)| lx.peek(k) == Some(pc)) {
                matched = Some(*p);
                break;
            }
        }
        if let Some(p) = matched {
            for _ in 0..p.chars().count() {
                lx.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: p.to_string(),
                line,
                col,
            });
            continue;
        }
        lx.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = texts("let x = a.unwrap();");
        assert_eq!(t[0], (TokenKind::Ident, "let".into()));
        assert_eq!(t[3], (TokenKind::Ident, "a".into()));
        assert_eq!(t[4], (TokenKind::Punct, ".".into()));
        assert_eq!(t[5], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn comments_are_captured_not_tokenised() {
        let lexed = lex("a // panic! in comment\nb /* unwrap() */ c");
        assert_eq!(lexed.tokens.len(), 3);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("panic!"));
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c */ x");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "x");
        assert_eq!(lexed.comments[0].text, " a /* b */ c ");
    }

    #[test]
    fn strings_swallow_trigger_words() {
        for src in [
            r#"let s = "panic! unwrap() HashMap";"#,
            r##"let s = r#"Instant::now() // not a comment"#;"##,
            r#"let s = b"thread::spawn";"#,
            r##"let s = br#"SystemTime"#;"##,
        ] {
            let lexed = lex(src);
            assert!(
                lexed.tokens.iter().all(|t| t.kind != TokenKind::Ident
                    || ![
                        "panic",
                        "unwrap",
                        "HashMap",
                        "Instant",
                        "spawn",
                        "SystemTime"
                    ]
                    .contains(&t.text.as_str())),
                "trigger leaked from literal in {src}"
            );
            assert!(lexed.comments.is_empty(), "comment leaked from {src}");
        }
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let t = texts(r#"let s = "a\"unwrap()\"b"; x"#);
        assert_eq!(t.last().map(|t| t.1.as_str()), Some("x"));
        assert!(t.iter().all(|t| t.1 != "unwrap"));
    }

    #[test]
    fn lifetimes_versus_chars() {
        let t = texts("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(t.contains(&(TokenKind::Lifetime, "a".into())));
        assert!(t.contains(&(TokenKind::Char, "x".into())));
        assert!(t.iter().filter(|t| t.0 == TokenKind::Char).count() >= 2);
    }

    #[test]
    fn underscore_lifetime_and_underscore_char() {
        let t = texts("&'_ str");
        assert!(t.contains(&(TokenKind::Lifetime, "_".into())));
        let t = texts("let c = '_';");
        assert!(t.contains(&(TokenKind::Char, "_".into())));
    }

    #[test]
    fn numbers_and_floats() {
        let t = texts("1 1.5 1e-3 2f32 0x1e5 7u64 0..n 1.0f64");
        assert_eq!(t[0], (TokenKind::Number { float: false }, "1".into()));
        assert_eq!(t[1], (TokenKind::Number { float: true }, "1.5".into()));
        assert_eq!(t[2], (TokenKind::Number { float: true }, "1e-3".into()));
        assert_eq!(t[3], (TokenKind::Number { float: true }, "2f32".into()));
        // Hex with an `e` digit is not a float.
        assert_eq!(t[4], (TokenKind::Number { float: false }, "0x1e5".into()));
        assert_eq!(t[5], (TokenKind::Number { float: false }, "7u64".into()));
        // Ranges do not glue the dot onto the number.
        assert_eq!(t[6], (TokenKind::Number { float: false }, "0".into()));
        assert_eq!(t[7], (TokenKind::Punct, "..".into()));
        assert_eq!(
            t.last(),
            Some(&(TokenKind::Number { float: true }, "1.0f64".into()))
        );
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let t = texts("a == b != c <= d >= e :: f -> g => h");
        let puncts: Vec<&str> = t
            .iter()
            .filter(|t| t.0 == TokenKind::Punct)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "<=", ">=", "::", "->", "=>"]);
    }

    #[test]
    fn raw_identifier_prefix_is_stripped() {
        let t = texts("let r#type = 1;");
        assert!(t.contains(&(TokenKind::Ident, "type".into())));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_are_lenient() {
        assert_eq!(lex("let s = \"abc").tokens.len(), 4);
        assert_eq!(lex("/* never closed").comments.len(), 1);
        assert!(!lex("let c = 'x").tokens.is_empty());
    }
}
