//! Pass 1b of the v2 analyzer: the intra-workspace call graph.
//!
//! Call sites are extracted token-wise from every non-test `fn` body and
//! resolved *by name* against the symbol table — sncheck has no type
//! information, so resolution is a documented over/under-approximation
//! rather than a guess:
//!
//! * **Path calls** `Qualifier::name(` resolve to methods whose `impl`
//!   owner is `Qualifier`; failing that, to free fns named `name` whose
//!   crate or file stem matches `Qualifier` (covering `obs::time(..)` and
//!   `par::try_parallel_map(..)` style module calls). `Self::name(`
//!   resolves against the calling fn's own owner.
//! * **Method calls** `.name(` resolve to *every* workspace method named
//!   `name` — the sound over-approximation for trait objects and generic
//!   dispatch (a `Box<dyn ScoreBackend>` call reaches all impls). Two
//!   carve-outs, both recorded rather than silently dropped:
//!   names in [`STD_SHADOWED`] (workspace methods that share a name with
//!   ubiquitous std methods — `len`, `push`, …) are recorded as
//!   `std-shadowed` and **not traversed**, a documented false-negative
//!   class; names with no workspace method are recorded as `unresolved`.
//! * **Bare calls** `name(` resolve to free fns named `name`, preferring
//!   the same file, then the same crate, then all candidates (recorded as
//!   ambiguous). Keywords and macro invocations (`name!`) are skipped;
//!   tuple-struct constructors fall out as `unresolved`.
//!
//! Every call site therefore lands in exactly one bucket: resolved edges
//! (unique or ambiguous — ambiguous edges fan out to all candidates) or
//! the unresolved table. Nothing is dropped, and the dump serializes all
//! three so CI can diff the graph across commits.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::symbols::{FnSym, NON_CALL_KEYWORDS};

/// Workspace method names that shadow ubiquitous std methods: a `.len()`
/// in arbitrary code is overwhelmingly `slice::len`, not a workspace
/// method, so traversing these edges would drag near the whole workspace
/// into every cone. They are recorded as `std-shadowed` and skipped by
/// reachability — the documented false-negative class of the resolver.
pub const STD_SHADOWED: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "get",
    "insert",
    "contains",
    "extend",
    "clear",
    "iter",
    "next",
    "last",
    "fmt",
    "clone",
    "drop",
    "default",
    "from",
    "into",
    "eq",
    "cmp",
    "hash",
    "as_ref",
    "to_string",
    "take",
    "min",
    "max",
    "abs",
    "sqrt",
    "truncate",
    "split",
    "swap",
    "resize",
];

/// How a call site was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolution {
    /// Exactly one candidate.
    Unique,
    /// Several candidates; the edge fans out to all of them.
    Ambiguous,
}

/// One resolved edge. `caller`/`callee` index into the flat symbol list.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Calling fn (symbol index).
    pub caller: usize,
    /// Called fn (symbol index).
    pub callee: usize,
    /// 1-based line of the call site (diagnostic anchoring only; not part
    /// of any fingerprint).
    pub line: u32,
    /// Resolution class.
    pub resolution: Resolution,
}

/// One call site that produced no traversable edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnresolvedCall {
    /// Calling fn (symbol index).
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// `"unresolved"` (no candidate) or `"std-shadowed"` (candidates
    /// exist but the name is on [`STD_SHADOWED`]).
    pub class: &'static str,
}

/// The workspace call graph over a flat symbol list.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Resolved edges, sorted and deduplicated.
    pub edges: Vec<Edge>,
    /// Calls with no traversable edge, sorted and deduplicated.
    pub unresolved: Vec<UnresolvedCall>,
    /// Adjacency: `succ[f]` lists callee symbol indices of fn `f`.
    pub succ: Vec<Vec<usize>>,
}

/// Name-indexed views of the symbol table used during resolution.
struct Index<'a> {
    syms: &'a [FnSym],
    /// name -> indices of methods (owner.is_some()).
    methods: BTreeMap<&'a str, Vec<usize>>,
    /// name -> indices of free fns.
    free: BTreeMap<&'a str, Vec<usize>>,
}

impl<'a> Index<'a> {
    fn build(syms: &'a [FnSym]) -> Index<'a> {
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (k, s) in syms.iter().enumerate() {
            if s.is_test {
                continue;
            }
            if s.owner.is_some() {
                methods.entry(&s.name).or_default().push(k);
            } else {
                free.entry(&s.name).or_default().push(k);
            }
        }
        Index {
            syms,
            methods,
            free,
        }
    }
}

/// File stem (`par` from `crates/ndtensor/src/par.rs`) for module-path
/// resolution.
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

/// Resolves one call site into candidate symbol indices, or an
/// unresolved class.
fn resolve(
    idx: &Index<'_>,
    caller: &FnSym,
    name: &str,
    qualifier: Option<&str>,
    is_method: bool,
) -> Result<Vec<usize>, &'static str> {
    if is_method {
        if STD_SHADOWED.contains(&name) {
            return Err("std-shadowed");
        }
        return match idx.methods.get(name) {
            Some(c) => Ok(c.clone()),
            None => Err("unresolved"),
        };
    }
    if let Some(q) = qualifier {
        let q = if q == "Self" {
            caller.owner.as_deref().unwrap_or(q)
        } else {
            q
        };
        // Methods of the named owner first.
        if let Some(cands) = idx.methods.get(name) {
            let owned: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&k| idx.syms[k].owner.as_deref() == Some(q))
                .collect();
            if !owned.is_empty() {
                return Ok(owned);
            }
        }
        // Module-path free fns: `obs::time`, `par::try_parallel_map`.
        if let Some(cands) = idx.free.get(name) {
            let moduled: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&k| idx.syms[k].krate == q || file_stem(&idx.syms[k].file) == q)
                .collect();
            if !moduled.is_empty() {
                return Ok(moduled);
            }
        }
        return Err("unresolved");
    }
    // Bare call: same file, then same crate, then anywhere.
    let Some(cands) = idx.free.get(name) else {
        return Err("unresolved");
    };
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&k| idx.syms[k].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return Ok(same_file);
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&k| idx.syms[k].krate == caller.krate)
        .collect();
    if !same_crate.is_empty() {
        return Ok(same_crate);
    }
    Ok(cands.clone())
}

/// Builds the call graph. `files` pairs each file's symbol-range in the
/// flat `syms` list with its token stream: `(first_sym, last_sym, tokens)`.
pub fn build(syms: &[FnSym], files: &[(usize, usize, &[Token])]) -> CallGraph {
    let idx = Index::build(syms);
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    let mut unresolved: BTreeSet<UnresolvedCall> = BTreeSet::new();

    for &(lo, hi, tokens) in files {
        for caller_id in lo..hi {
            let caller = &syms[caller_id];
            if caller.is_test {
                continue;
            }
            let (blo, bhi) = caller.body;
            // Body ranges of fn items nested inside this one (rare but
            // legal): their call sites belong to the nested symbol.
            let nested: Vec<(usize, usize)> = syms[lo..hi]
                .iter()
                .filter(|s| s.body.0 > blo && s.body.1 < bhi && s.body.0 < s.body.1)
                .map(|s| s.body)
                .collect();
            let mut i = blo;
            while i < bhi.min(tokens.len()) {
                if let Some(&(_, skip_to)) = nested.iter().find(|&&(nlo, nhi)| i >= nlo && i < nhi)
                {
                    i = skip_to;
                    continue;
                }
                let t = &tokens[i];
                let is_call = t.kind == TokenKind::Ident
                    && tokens.get(i + 1).is_some_and(|n| n.text == "(")
                    && !NON_CALL_KEYWORDS.contains(&t.text.as_str());
                if !is_call {
                    i += 1;
                    continue;
                }
                let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
                let is_method = prev == Some(".");
                let qualifier = if prev == Some("::") && i >= 2 {
                    Some(tokens[i - 2].text.as_str())
                } else {
                    None
                };
                match resolve(&idx, caller, &t.text, qualifier, is_method) {
                    Ok(cands) => {
                        let resolution = if cands.len() == 1 {
                            Resolution::Unique
                        } else {
                            Resolution::Ambiguous
                        };
                        for callee in cands {
                            edges.insert(Edge {
                                caller: caller_id,
                                callee,
                                line: t.line,
                                resolution,
                            });
                        }
                    }
                    Err(class) => {
                        unresolved.insert(UnresolvedCall {
                            caller: caller_id,
                            name: t.text.clone(),
                            class,
                        });
                    }
                }
                i += 1;
            }
        }
    }

    let mut succ = vec![Vec::new(); syms.len()];
    for e in &edges {
        succ[e.caller].push(e.callee);
    }
    for s in &mut succ {
        s.sort_unstable();
        s.dedup();
    }
    CallGraph {
        edges: edges.into_iter().collect(),
        unresolved: unresolved.into_iter().collect(),
        succ,
    }
}

impl CallGraph {
    /// Serializes the graph (symbols, edges, unresolved calls) as
    /// deterministic JSON — a pure function of the inputs, byte-identical
    /// across runs, uploaded by CI as the reachability audit artifact.
    pub fn dump_json(&self, syms: &[FnSym]) -> String {
        use crate::diag::json_string;
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"sncheck_graph_version\": 1,\n  \"symbols\": [");
        let mut first = true;
        for s in syms {
            if s.is_test {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"file\": {}, \"line\": {}, \"pub\": {}, \"hot_root\": {}, \"int_hot\": {}}}",
                json_string(&s.path()),
                json_string(&s.file),
                s.line,
                s.is_pub,
                s.hot_root,
                s.int_hot,
            ));
        }
        out.push_str("\n  ],\n  \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"caller\": {}, \"callee\": {}, \"resolution\": {}}}",
                json_string(&syms[e.caller].path()),
                json_string(&syms[e.callee].path()),
                json_string(match e.resolution {
                    Resolution::Unique => "unique",
                    Resolution::Ambiguous => "ambiguous",
                }),
            ));
        }
        out.push_str("\n  ],\n  \"unresolved\": [");
        for (i, u) in self.unresolved.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"caller\": {}, \"name\": {}, \"class\": {}}}",
                json_string(&syms[u.caller].path()),
                json_string(&u.name),
                json_string(u.class),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::classify_crate;
    use crate::scope::test_scopes;
    use crate::symbols::file_symbols;

    /// Builds a one-or-more-file workspace graph for tests.
    fn graph(files: &[(&str, &str)]) -> (Vec<FnSym>, CallGraph, Vec<Vec<Token>>) {
        let mut syms = Vec::new();
        let mut toks: Vec<Vec<Token>> = Vec::new();
        let mut ranges = Vec::new();
        for (rel, src) in files {
            let lexed = lex(src);
            let scopes = test_scopes(&lexed.tokens);
            let krate = classify_crate(rel);
            let fs = file_symbols(rel, &krate, &lexed.tokens, &scopes, &lexed.comments);
            let lo = syms.len();
            syms.extend(fs.fns);
            ranges.push((lo, syms.len()));
            toks.push(lexed.tokens);
        }
        let file_views: Vec<(usize, usize, &[Token])> = ranges
            .iter()
            .zip(&toks)
            .map(|(&(lo, hi), t)| (lo, hi, t.as_slice()))
            .collect();
        let g = build(&syms, &file_views);
        (syms, g, toks)
    }

    fn edge_paths(syms: &[FnSym], g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| (syms[e.caller].path(), syms[e.callee].path()))
            .collect()
    }

    #[test]
    fn bare_calls_resolve_within_file_then_crate() {
        let (syms, g, _) = graph(&[
            ("crates/a/src/l.rs", "fn top() { helper(); } fn helper() {}"),
            ("crates/b/src/l.rs", "fn helper() {}"),
        ]);
        assert_eq!(
            edge_paths(&syms, &g),
            [("a::top".to_string(), "a::helper".to_string())]
        );
    }

    #[test]
    fn method_calls_fan_out_to_all_impls() {
        let (syms, g, _) = graph(&[(
            "crates/a/src/l.rs",
            "trait T { fn go(&self); }\n\
             struct X; impl T for X { fn go(&self) { x_work(); } }\n\
             struct Y; impl T for Y { fn go(&self) { y_work(); } }\n\
             fn x_work() {} fn y_work() {}\n\
             fn driver(t: &dyn T) { t.go(); }",
        )]);
        let paths = edge_paths(&syms, &g);
        assert!(paths.contains(&("a::driver".into(), "a::X::go".into())));
        assert!(paths.contains(&("a::driver".into(), "a::Y::go".into())));
        assert!(g
            .edges
            .iter()
            .filter(|e| syms[e.caller].name == "driver")
            .all(|e| e.resolution == Resolution::Ambiguous));
    }

    #[test]
    fn path_calls_resolve_by_owner_and_module() {
        let (syms, g, _) = graph(&[
            (
                "crates/a/src/l.rs",
                "struct S; impl S { fn make() {} }\n\
                 fn top() { S::make(); par::map(); }",
            ),
            ("crates/nd/src/par.rs", "pub fn map() {}"),
        ]);
        let paths = edge_paths(&syms, &g);
        assert!(paths.contains(&("a::top".into(), "a::S::make".into())));
        assert!(paths.contains(&("a::top".into(), "nd::map".into())));
    }

    #[test]
    fn self_calls_resolve_to_own_impl() {
        let (syms, g, _) = graph(&[(
            "crates/a/src/l.rs",
            "struct S; impl S { fn a() { Self::b(); } fn b() {} }\n\
             struct Q; impl Q { fn b() {} }",
        )]);
        let paths = edge_paths(&syms, &g);
        assert!(paths.contains(&("a::S::a".into(), "a::S::b".into())));
        assert!(!paths.contains(&("a::S::a".into(), "a::Q::b".into())));
    }

    #[test]
    fn std_shadowed_and_unknown_names_are_recorded_not_dropped() {
        let (syms, g, _) = graph(&[(
            "crates/a/src/l.rs",
            "struct S; impl S { fn len(&self) -> usize { 0 } }\n\
             fn top(v: &[u8]) { v.len(); v.unknown_method(); std::mem::take(&mut 0); }",
        )]);
        assert!(g.edges.iter().all(|e| syms[e.caller].name != "top"));
        let classes: Vec<(&str, &str)> = g
            .unresolved
            .iter()
            .map(|u| (u.name.as_str(), u.class))
            .collect();
        assert!(classes.contains(&("len", "std-shadowed")));
        assert!(classes.contains(&("unknown_method", "unresolved")));
        assert!(classes.contains(&("take", "unresolved")));
    }

    #[test]
    fn test_fns_contribute_no_edges_or_symbol_targets() {
        let (syms, g, _) = graph(&[(
            "crates/a/src/l.rs",
            "fn lib() {}\n\
             #[cfg(test)] mod tests { fn t() { lib(); } fn lib2() {} }\n\
             fn caller() { lib2(); }",
        )]);
        // The test fn's call is skipped, and `lib2` (test-only) is not a
        // resolution target.
        assert!(g.edges.is_empty());
        assert!(g
            .unresolved
            .iter()
            .any(|u| u.name == "lib2" && u.class == "unresolved"));
        let _ = syms;
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (_, g, _) = graph(&[(
            "crates/a/src/l.rs",
            "fn helper() {} fn top() { if (true) {} helper!(); return (3); }",
        )]);
        assert!(g.edges.is_empty());
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn dump_is_deterministic() {
        let files = [(
            "crates/a/src/l.rs",
            "fn a() { b(); c(); } fn b() { c(); } fn c() {}",
        )];
        let (syms1, g1, _) = graph(&files);
        let (syms2, g2, _) = graph(&files);
        assert_eq!(g1.dump_json(&syms1), g2.dump_json(&syms2));
        assert!(g1.dump_json(&syms1).contains("\"edges\""));
    }
}
