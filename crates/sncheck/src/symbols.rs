//! Pass 1 of the v2 analyzer: the workspace symbol table.
//!
//! Walks every lexed file once and records each `fn` item — name, crate,
//! file, line span, `impl` owner (the *type*, with the trait name kept
//! separately for `impl Trait for Type` blocks), visibility, whether the
//! item lives in test code, and the token range of its body. The table is
//! the substrate for [`crate::callgraph`] and [`crate::reach`]: call-site
//! resolution and reachability both key off it.
//!
//! Two marker comments extend the table:
//!
//! * `// sncheck:hot-root` — the next `fn` item (or the one on the same
//!   line) becomes an additional hot-path root for the transitive rules,
//!   alongside the built-in root table in [`crate::reach`]. This is how
//!   bench binaries opt their timing loops into the hot-path contract.
//! * `// sncheck:int-hot` — the next `fn` item is an integer hot loop:
//!   the `no-float-promotion` rule bans `as f32` / `as f64` casts inside
//!   its body (ROADMAP item 2's quantized path guard).
//!
//! The builder is purely syntactic (delimiter counting, no type
//! information) and total: malformed input degrades to fewer symbols,
//! never to a panic.

use crate::lexer::{Comment, Token, TokenKind};
use crate::scope::TestScopes;

/// One `fn` item somewhere in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSym {
    /// Bare function name (`score_batch`).
    pub name: String,
    /// Enclosing `impl` type name (`StreamServer`), `None` for free fns.
    pub owner: Option<String>,
    /// Trait being implemented when the enclosing block is
    /// `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Crate the defining file belongs to (from path classification).
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based last line of the body (== `line` for bodyless items).
    pub end_line: u32,
    /// Whether the item is inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Whether the item is `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// Token index range of the body *contents* (between the braces).
    /// Empty for trait-declaration items without a body.
    pub body: (usize, usize),
    /// Marked `// sncheck:hot-root`.
    pub hot_root: bool,
    /// Marked `// sncheck:int-hot`.
    pub int_hot: bool,
}

impl FnSym {
    /// Stable qualified path used in fingerprints and the graph dump:
    /// `crate::Owner::name` or `crate::name`. Deliberately excludes the
    /// file path and line so fingerprints survive file moves and edits
    /// above the item.
    pub fn path(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{}::{}::{}", self.krate, owner, self.name),
            None => format!("{}::{}", self.krate, self.name),
        }
    }
}

/// Symbols of one file, in declaration order.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// All `fn` items found in the file.
    pub fns: Vec<FnSym>,
}

/// Keywords that can immediately precede `(` without being a call; used
/// by the call-graph pass but defined here with the other token tables.
pub const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "fn", "let", "else",
    "impl", "dyn", "where", "unsafe", "break", "continue", "await", "use", "pub", "mut", "ref",
];

/// Reads the type name an `impl` header applies to. `toks` starts just
/// after the `impl` keyword; returns `(trait_name, type_name)` where the
/// names are the last plain identifier of each path (generics stripped).
fn parse_impl_header(toks: &[Token]) -> (Option<String>, Option<String>) {
    let mut i = 0;
    // Skip the generic parameter list `<...>` if present.
    if toks.get(i).is_some_and(|t| t.text == "<") {
        let mut depth = 0i64;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "<" | "<<" => depth += 1,
                ">" | ">>" => depth -= 1,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    let mut first: Option<String> = None;
    let mut second: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0i64;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" | "where" if angle == 0 => break,
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => saw_for = true,
            _ if t.kind == TokenKind::Ident && angle == 0 => {
                let slot = if saw_for { &mut second } else { &mut first };
                *slot = Some(t.text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    if saw_for {
        (first, second)
    } else {
        (None, first)
    }
}

/// True when the `fn` keyword at `i` belongs to a `pub`-qualified item
/// (any visibility: `pub`, `pub(crate)`, `pub(in …)`).
fn fn_is_pub(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    for _ in 0..8 {
        if j == 0 {
            return false;
        }
        j -= 1;
        match tokens[j].text.as_str() {
            "pub" => return true,
            "crate" | "in" | "self" | "super" | "(" | ")" | "const" | "async" | "unsafe"
            | "extern" => continue,
            _ => {
                if tokens[j].kind == TokenKind::Str {
                    continue; // `extern "C"` ABI string
                }
                return false;
            }
        }
    }
    false
}

/// Builds the symbol table for one lexed file.
///
/// `krate` comes from path classification ([`crate::rules::classify`]);
/// `scopes` masks test code; `comments` supplies the marker comments.
pub fn file_symbols(
    rel: &str,
    krate: &str,
    tokens: &[Token],
    scopes: &TestScopes,
    comments: &[Comment],
) -> FileSymbols {
    // Marker comment lines, each consumed by the first fn at/after it.
    // A marker is the comment's *entire* content — prose that merely
    // mentions `sncheck:hot-root` (docs, this linter's own source) must
    // not mark anything.
    let is_directive = |text: &str, directive: &str| {
        text.trim_matches(|c: char| c == '/' || c == '*' || c == '!' || c.is_whitespace())
            == directive
    };
    let mut hot_root_lines: Vec<u32> = comments
        .iter()
        .filter(|c| is_directive(&c.text, "sncheck:hot-root"))
        .map(|c| c.line)
        .collect();
    let mut int_hot_lines: Vec<u32> = comments
        .iter()
        .filter(|c| is_directive(&c.text, "sncheck:int-hot"))
        .map(|c| c.line)
        .collect();

    let mut fns = Vec::new();
    // Stack of (delimiter depth of the impl's `{`, trait, type).
    let mut impl_stack: Vec<(i64, Option<String>, Option<String>)> = Vec::new();
    // An `impl` header seen but its `{` not yet reached.
    let mut pending_impl: Option<(Option<String>, Option<String>)> = None;
    let mut depth: i64 = 0;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => {
                    if let Some((tr, ty)) = pending_impl.take() {
                        impl_stack.push((depth, tr, ty));
                    }
                    depth += 1;
                }
                "(" | "[" => depth += 1,
                "}" => {
                    depth -= 1;
                    if impl_stack.last().map(|&(d, _, _)| d) == Some(depth) {
                        impl_stack.pop();
                    }
                }
                ")" | "]" => depth -= 1,
                ";" => {
                    // `impl Trait for Type;` cannot occur, but a stray `;`
                    // before the brace would otherwise leak the header.
                    pending_impl = None;
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        if t.kind == TokenKind::Ident && t.text == "impl" {
            let header_end = tokens[i + 1..]
                .iter()
                .position(|t| t.text == "{" || t.text == ";")
                .map_or(tokens.len(), |k| i + 1 + k);
            let (tr, ty) = parse_impl_header(&tokens[i + 1..header_end]);
            // `impl Trait for Type` in fn signatures (`impl Fn()`) parses
            // to a type with no brace following; pending_impl is cleared
            // by the `;`/`)` handling or overwritten harmlessly.
            pending_impl = Some((tr, ty));
            i += 1;
            continue;
        }

        if t.kind == TokenKind::Ident
            && t.text == "fn"
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            let line = t.line;
            let is_test = scopes.mask.get(i).copied().unwrap_or(false);
            let is_pub = fn_is_pub(tokens, i);
            // Find the body: first `{` at signature depth, or `;`.
            let mut j = i + 2;
            let mut sig_depth = 0i64;
            let mut body = (0usize, 0usize);
            let mut end_line = line;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" | "[" => sig_depth += 1,
                    ")" | "]" => sig_depth -= 1,
                    ";" if sig_depth == 0 => break, // bodyless trait item
                    "{" if sig_depth == 0 => {
                        let open = j;
                        let mut d = 1i64;
                        j += 1;
                        while j < tokens.len() && d > 0 {
                            match tokens[j].text.as_str() {
                                "{" | "(" | "[" => d += 1,
                                "}" | ")" | "]" => d -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        body = (open + 1, j.saturating_sub(1));
                        end_line = tokens.get(j.saturating_sub(1)).map_or(line, |t| t.line);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let (trait_name, owner) = impl_stack
                .last()
                .map_or((None, None), |(_, tr, ty)| (tr.clone(), ty.clone()));
            let hot_root = consume_marker(&mut hot_root_lines, line);
            let int_hot = consume_marker(&mut int_hot_lines, line);
            fns.push(FnSym {
                name,
                owner,
                trait_name,
                krate: krate.to_string(),
                file: rel.to_string(),
                line,
                end_line,
                is_test,
                is_pub,
                body,
                hot_root,
                int_hot,
            });
            // Continue scanning from after the signature so nested fns
            // (closures declaring fns is rare but legal) are still seen:
            // we only skipped to the body start above when one exists, so
            // resume right after the name and let the walker re-count
            // depth naturally.
            i += 2;
            continue;
        }
        i += 1;
    }
    let _ = (&hot_root_lines, &int_hot_lines);
    FileSymbols { fns }
}

/// Pops the first marker line at or before `fn_line` (markers bind to the
/// next `fn` item at or after them, including the same line for trailing
/// comments).
fn consume_marker(lines: &mut Vec<u32>, fn_line: u32) -> bool {
    if let Some(k) = lines.iter().position(|&l| l <= fn_line) {
        lines.remove(k);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_scopes;

    fn build(src: &str) -> FileSymbols {
        let lexed = lex(src);
        let scopes = test_scopes(&lexed.tokens);
        file_symbols(
            "crates/x/src/a.rs",
            "x",
            &lexed.tokens,
            &scopes,
            &lexed.comments,
        )
    }

    #[test]
    fn free_fns_and_methods() {
        let syms = build(
            "fn free() { a(); }\n\
             struct S;\n\
             impl S { pub fn m(&self) -> u8 { 1 } }\n\
             impl Clone for S { fn clone(&self) -> S { S } }",
        );
        assert_eq!(syms.fns.len(), 3);
        assert_eq!(syms.fns[0].name, "free");
        assert_eq!(syms.fns[0].owner, None);
        assert!(!syms.fns[0].is_pub);
        assert_eq!(syms.fns[1].name, "m");
        assert_eq!(syms.fns[1].owner.as_deref(), Some("S"));
        assert!(syms.fns[1].is_pub);
        assert_eq!(syms.fns[1].path(), "x::S::m");
        assert_eq!(syms.fns[2].name, "clone");
        assert_eq!(syms.fns[2].owner.as_deref(), Some("S"));
        assert_eq!(syms.fns[2].trait_name.as_deref(), Some("Clone"));
    }

    #[test]
    fn generic_impls_resolve_to_the_type_name() {
        let syms = build("impl<'d, T: Copy> Server<'d, T> { fn step(&mut self) {} }");
        assert_eq!(syms.fns[0].owner.as_deref(), Some("Server"));
    }

    #[test]
    fn test_code_is_marked() {
        let syms = build("#[cfg(test)]\nmod tests { fn t() {} }\nfn lib() {}");
        assert_eq!(syms.fns.len(), 2);
        assert!(syms.fns[0].is_test);
        assert!(!syms.fns[1].is_test);
    }

    #[test]
    fn body_ranges_cover_the_braces_content() {
        let src = "fn f(x: [u8; 2]) -> u8 { inner(); 1 }\nfn g();";
        let syms = build(src);
        let lexed = lex(src);
        let (lo, hi) = syms.fns[0].body;
        let body: Vec<&str> = lexed.tokens[lo..hi]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["inner", "(", ")", ";", "1"]);
        assert_eq!(syms.fns[1].body, (0, 0), "bodyless item has no range");
    }

    #[test]
    fn markers_bind_to_the_next_fn() {
        let src =
            "// sncheck:hot-root\nfn looped() {}\n\n// sncheck:int-hot\nfn q() {}\nfn plain() {}";
        let syms = build(src);
        assert!(syms.fns[0].hot_root && !syms.fns[0].int_hot);
        assert!(syms.fns[1].int_hot && !syms.fns[1].hot_root);
        assert!(!syms.fns[2].hot_root && !syms.fns[2].int_hot);
    }

    #[test]
    fn trailing_marker_binds_to_its_own_line() {
        let syms = build("fn looped() { // sncheck:hot-root\n}");
        assert!(syms.fns[0].hot_root);
    }

    #[test]
    fn end_line_spans_the_body() {
        let syms = build("fn f() {\n a();\n b();\n}");
        assert_eq!(syms.fns[0].line, 1);
        assert_eq!(syms.fns[0].end_line, 4);
    }
}
