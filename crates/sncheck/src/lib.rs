#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! `sncheck` — the workspace invariant linter.
//!
//! The reproduction's headline guarantees are dynamic: bit-identical
//! scores at any thread count (`tests/parallel_parity.rs`), recording
//! that never perturbs detector JSON (`tests/observability.rs`), and
//! byte-reproducible fault schedules (`tests/stream_runtime.rs`). Those
//! tests only catch a regression on the paths they exercise; one stray
//! `Instant::now()` in a scoring branch or a `HashMap` iteration in
//! calibration silently breaks the ECDF-threshold contract the paper's
//! novelty test depends on. This crate turns the invariants into
//! machine-checked rules that run on every commit, on every line.
//!
//! The tool is offline and std-only: a hand-rolled [`lexer`] (comments,
//! string/raw-string/char literals), a [`scope`] tracker that exempts
//! `#[cfg(test)]`/`#[test]` code, a [`rules`] engine, per-line
//! `sncheck:allow` comment suppressions with hygiene checking, and
//! human + JSON [`diag`]nostics with `file:line` anchors. Output is
//! byte-identical across runs by construction — the linter itself obeys
//! the determinism rules it enforces (no clock, no environment, ordered
//! maps only).
//!
//! ```
//! let diags = sncheck::check_source(
//!     "crates/novelty/src/demo.rs",
//!     "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "no-panic-in-lib");
//! ```

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use diag::{Diagnostic, Report, Severity};
pub use engine::{check_files, check_source, discover_workspace, expand_path};
pub use rules::{classify, FileKind, RuleInfo, RULES};
