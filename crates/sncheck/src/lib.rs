#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! `sncheck` — the workspace invariant linter.
//!
//! The reproduction's headline guarantees are dynamic: bit-identical
//! scores at any thread count (`tests/parallel_parity.rs`), recording
//! that never perturbs detector JSON (`tests/observability.rs`), and
//! byte-reproducible fault schedules (`tests/stream_runtime.rs`). Those
//! tests only catch a regression on the paths they exercise; one stray
//! `Instant::now()` in a scoring branch or a `HashMap` iteration in
//! calibration silently breaks the ECDF-threshold contract the paper's
//! novelty test depends on. This crate turns the invariants into
//! machine-checked rules that run on every commit, on every line.
//!
//! The tool is offline and std-only, and analyses in two passes. Pass 1
//! is per-line: a hand-rolled [`lexer`] (comments, string/raw-string/char
//! literals), a [`scope`] tracker that exempts `#[cfg(test)]`/`#[test]`
//! code, and the [`rules`] engine. Pass 2 is whole-workspace: a
//! [`symbols`] table over every fn item, a [`callgraph`] with documented
//! ambiguity handling, and [`reach`]ability rules that flag panics,
//! allocations, clock reads and lock inversions anywhere in the cone of
//! the hot-path roots. `sncheck:allow` comment suppressions (with
//! hygiene checking) cover both passes, findings carry stable
//! `rule|fn_path|token|ordinal` fingerprints, and [`baseline`]s let CI
//! gate on *new* findings only (`--diff`). Output is byte-identical
//! across runs by construction — the linter itself obeys the determinism
//! rules it enforces (no clock, no environment, ordered maps only).
//!
//! ```
//! let diags = sncheck::check_source(
//!     "crates/novelty/src/demo.rs",
//!     "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "no-panic-in-lib");
//! ```

pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod reach;
pub mod rules;
pub mod scope;
pub mod symbols;

pub use baseline::Baseline;
pub use diag::{Diagnostic, Report, Severity};
pub use engine::{
    check_files, check_source, check_sources, discover_workspace, expand_path, Analysis,
};
pub use rules::{classify, classify_crate, FileKind, RuleInfo, RULES};
