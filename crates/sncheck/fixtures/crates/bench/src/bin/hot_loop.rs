// The acceptance fixture for the transitive hot-path rules: a bench
// binary whose timing loop is marked as a hot root. Every per-line rule
// exempts bench binaries (FileKind::Benches), so the v1 linter passes
// this file clean — the panic, the allocation and the clock read are
// each buried one or two calls below the root and only the call-graph
// pass can see them.

// sncheck:hot-root
fn timing_loop() {
    for _ in 0..1000 {
        serve_once();
    }
}

fn serve_once() {
    let batch = prepare();
    submit(batch);
}

// Two calls below the root: the per-line rules never fire here (bench
// scope), the reachability rules must.
fn prepare() -> Vec<u8> {
    let staging = vec![0u8; 64]; // hot-path-transitive-alloc
    staging
}

fn submit(batch: Vec<u8>) {
    let t = Instant::now(); // hot-path-transitive-clock
    queue(batch).expect("queue full"); // hot-path-transitive-panic
    drop(t);
}

fn queue(_batch: Vec<u8>) -> Result<(), ()> {
    Ok(())
}

// Not reachable from the root: nothing in here may fire.
fn cold_setup() {
    let warmup = vec![0u8; 1 << 20];
    warmup.last().unwrap();
}

fn main() {
    cold_setup();
    timing_loop();
}
