// Diamond call graph: the root reaches the shared leaf along two paths.
// The reachability scan visits each fn once, so the unwrap in the leaf
// must produce exactly one transitive finding — not one per path.

pub fn score_batch(xs: &[f32]) -> f32 {
    upper(xs) + lower(xs)
}

fn upper(xs: &[f32]) -> f32 {
    shared_leaf(xs)
}

fn lower(xs: &[f32]) -> f32 {
    shared_leaf(xs) * 2.0
}

fn shared_leaf(xs: &[f32]) -> f32 {
    *xs.first().unwrap() // also fires per-line no-panic-in-lib
}
