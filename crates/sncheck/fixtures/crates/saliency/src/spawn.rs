//! Fixture: thread spawning outside `ndtensor::par` must fire.

pub fn bad_spawn() {
    std::thread::spawn(|| {}).join().ok();
}

pub fn bad_scope(xs: &mut [f32]) {
    std::thread::scope(|s| {
        s.spawn(|| xs.iter().sum::<f32>());
    });
}

pub fn bad_builder() {
    let _ = std::thread::Builder::new();
}
