// Ambiguous method resolution: `tick()` is defined by two types and the
// receiver's type is invisible to a token-level linter, so the call from
// the hot root fans out to both candidates (a sound over-approximation —
// dyn dispatch could pick either). The panicking candidate must be
// flagged even though only the clean one is "really" called.

pub struct Wall;
pub struct Counter;

impl Wall {
    pub fn tick(&self) -> u64 {
        0
    }
}

impl Counter {
    pub fn tick(&self) -> u64 {
        self.read().unwrap() // reached only via the ambiguous edge
    }

    fn read(&self) -> Option<u64> {
        Some(1)
    }
}

pub fn classify_each(w: &Wall) -> u64 {
    w.tick()
}
