//! Fixture: unordered hash collections on the deterministic path must
//! fire.

use std::collections::{HashMap, HashSet};

pub fn bad_map() -> HashMap<String, f32> {
    HashMap::new()
}

pub fn bad_set() -> HashSet<u64> {
    HashSet::new()
}
