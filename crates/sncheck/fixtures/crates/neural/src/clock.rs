//! Fixture: ambient clock reads outside `crates/obs` must fire.

use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now()
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now()
}
