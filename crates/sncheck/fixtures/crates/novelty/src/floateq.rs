//! Fixture: lexical float equality must fire (literals either side, and
//! well-known float constants).

pub fn bad_literal_rhs(x: f32) -> bool {
    x == 0.5
}

pub fn bad_literal_lhs(x: f32) -> bool {
    1.0 != x
}

pub fn bad_constant(x: f32) -> bool {
    x == f32::INFINITY
}

pub fn fine_comparisons(x: f32) -> bool {
    // `<=`/`>=` are single tokens; they must NOT trip the rule.
    x <= 0.5 && x >= -0.5
}
