// recorded-parity-drift: the plain half of a recorded/plain pair must be
// a pure forward. `classify_window` satisfies the v1 existence rule
// (recorded-parity) — the sibling is there — but has grown a branch, so
// the two entry points can diverge. Only the drift rule catches it.

pub fn classify_window(frames: &[u8]) -> usize {
    if frames.is_empty() {
        return 0;
    }
    classify_window_recorded(frames, noop())
}

pub fn classify_window_recorded(frames: &[u8], _rec: Recorder) -> usize {
    frames.len()
}

// A compliant pair: the wrapper is a single forwarding expression, so it
// must stay clean.
pub fn rank_window(frames: &[u8]) -> usize {
    rank_window_recorded(frames, noop())
}

pub fn rank_window_recorded(frames: &[u8], _rec: Recorder) -> usize {
    frames.len()
}

pub struct Recorder;

fn noop() -> Recorder {
    Recorder
}
