// lock-order: the server state holds two mutexes, and the two entry
// points acquire them in opposite orders — the classic ABBA deadlock.
// One inversion is direct (same fn), the second is transitive: `drain`
// holds `queue` across a call into `audit`, which takes `stats`, while
// `report` takes them the other way around.

pub struct Shared {
    queue: Mutex<Vec<u8>>,
    stats: Mutex<u64>,
}

impl Shared {
    pub fn push_then_count(&self) {
        let q = self.queue.lock();
        let s = self.stats.lock();
        drop((q, s));
    }

    pub fn count_then_push(&self) {
        let s = self.stats.lock();
        let q = self.queue.lock();
        drop((s, q));
    }
}
