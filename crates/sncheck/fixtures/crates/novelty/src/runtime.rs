//! Fixture: ad-hoc heap allocation in a per-frame hot module must fire
//! (this fixture's relative path shadows `crates/novelty/src/runtime.rs`,
//! one of the registered hot files).

pub fn bad_vec_macro(n: usize) -> Vec<f32> {
    vec![0.0f32; n]
}

pub fn bad_with_capacity(n: usize) -> Vec<f32> {
    Vec::with_capacity(n)
}

pub fn bad_to_vec(s: &[f32]) -> Vec<f32> {
    s.to_vec()
}

pub fn allowed_setup_path(n: usize) -> Vec<f32> {
    // sncheck:allow(no-hot-alloc): construction-time buffer, not per-frame
    vec![0.0f32; n]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = vec![1, 2, 3];
    }
}
