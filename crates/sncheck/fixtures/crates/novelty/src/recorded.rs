//! Fixture: a public `*_recorded` entry point without its plain-named
//! wrapper must fire; a properly paired one must not.

pub struct Recorder;

pub fn orphan_recorded(r: &Recorder) -> f32 {
    let _ = r;
    0.0
}

pub fn paired(x: f32) -> f32 {
    paired_recorded(x)
}

pub fn paired_recorded(x: f32) -> f32 {
    x
}
