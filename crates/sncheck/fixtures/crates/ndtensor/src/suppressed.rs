//! Fixture: every violation here carries a suppression, so the file must
//! come back clean — including the own-line comment form.

pub fn allowed_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // sncheck:allow(no-panic-in-lib): fixture demonstrates the trailing form
}

pub fn allowed_float(x: f32) -> bool {
    // sncheck:allow(no-float-eq): fixture demonstrates the own-line form
    x == 0.25
}

pub fn allowed_pair(a: Option<u32>) -> bool {
    a.unwrap() as f32 == 1.0 // sncheck:allow(no-panic-in-lib, no-float-eq): one comment, two rules
}
