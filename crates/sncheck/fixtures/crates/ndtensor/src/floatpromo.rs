// no-float-promotion: the marked fn is an integer hot loop (the i8×i8
// GEMM inner kernel contract) — promoting an accumulator to float there
// silently reintroduces the rounding the quantized path exists to avoid.
// The same cast in an unmarked fn is fine: dequantization at the edge is
// exactly where floats belong.

// sncheck:int-hot
pub fn qdot(a: &[i8], b: &[i8]) -> f32 {
    let mut acc: i32 = 0;
    for i in 0..a.len().min(b.len()) {
        acc += i32::from(a[i]) * i32::from(b[i]);
    }
    acc as f32 // no-float-promotion
}

pub fn dequantize(acc: i32, scale: f32) -> f32 {
    acc as f32 * scale
}
