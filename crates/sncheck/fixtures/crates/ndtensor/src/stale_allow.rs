//! Fixture: suppression hygiene — a stale allow and an unknown rule name
//! must each produce a warn-severity diagnostic.

pub fn nothing_to_suppress() -> u32 {
    7 // sncheck:allow(no-panic-in-lib): stale — nothing fires here
}

pub fn misspelled() -> u32 {
    8 // sncheck:allow(no-panics-in-lib): misspelled rule name
}
