//! Fixture: the kernel-registry tree is hot-path code — ad-hoc heap
//! allocation must fire there exactly as in the flat hot modules (this
//! fixture's relative path shadows
//! `crates/ndtensor/src/routines/kernels.rs`, one of the registered hot
//! files; nested `routines/` paths must classify like their siblings).

pub fn bad_microkernel_scratch(k: usize, n: usize) -> Vec<f32> {
    vec![0.0f32; k * n]
}

pub fn bad_packed_panel(rows: &[f32]) -> Vec<f32> {
    rows.to_vec()
}

pub fn allowed_registry_setup(n: usize) -> Vec<f32> {
    // sncheck:allow(no-hot-alloc): one-time registry construction, not per-call
    Vec::with_capacity(n)
}

pub fn allowed_pool_take(len: usize) -> Vec<f32> {
    // `scratch::take` lookalikes are not flagged: the pool is the
    // sanctioned allocation path.
    let v: Vec<f32> = Vec::new();
    let _ = len;
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = vec![0.0f32; 8];
    }
}
