//! Fixture: std-stream writes from library code must fire.

pub fn bad_println(score: f32) {
    println!("score = {score}");
}

pub fn bad_eprintln() {
    eprintln!("something happened");
}

pub fn bad_dbg(x: u32) -> u32 {
    dbg!(x)
}
