//! Fixture: every spelling of `no-panic-in-lib` must fire.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("always present")
}

pub fn bad_panic() {
    panic!("boom");
}

pub fn bad_unreachable(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => unreachable!("callers pass zero"),
    }
}

pub fn bad_todo() {
    todo!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        None::<u32>.unwrap();
        panic!("fine in tests");
    }
}
