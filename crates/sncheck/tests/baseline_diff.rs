//! The `--diff` contract: a baselined finding stays accepted through
//! file renames and line shifts (fingerprints carry no positions), while
//! genuinely new findings still fail the gate.

use sncheck::{check_sources, Baseline};

const V1: &str = "\
pub fn score_batch(xs: &[f32]) -> f32 {
    helper(xs)
}

fn helper(xs: &[f32]) -> f32 {
    let staging = vec![0.0f32; xs.len()];
    *staging.first().unwrap()
}
";

fn analyze(path: &str, text: &str) -> sncheck::Report {
    check_sources(&[(path.to_string(), text.to_string())]).report
}

fn baseline_of(path: &str, text: &str) -> Baseline {
    Baseline::from_report(&analyze(path, text))
}

#[test]
fn baseline_zeroes_the_current_findings() {
    let mut report = analyze("crates/novelty/src/scoring.rs", V1);
    assert!(report.deny_count() > 0, "seed findings expected");
    let baseline = baseline_of("crates/novelty/src/scoring.rs", V1);
    baseline.apply(&mut report);
    assert_eq!(report.deny_count(), 0, "{:?}", report.diagnostics);
    assert_eq!(report.baselined_count(), report.diagnostics.len());
}

#[test]
fn line_shifts_do_not_resurrect_baselined_findings() {
    let baseline = baseline_of("crates/novelty/src/scoring.rs", V1);
    let shifted = format!("// new module docs\n// more docs\n\n\n{V1}");
    let mut report = analyze("crates/novelty/src/scoring.rs", &shifted);
    baseline.apply(&mut report);
    assert_eq!(report.deny_count(), 0, "{:?}", report.diagnostics);
}

#[test]
fn file_renames_do_not_resurrect_baselined_findings() {
    let baseline = baseline_of("crates/novelty/src/scoring.rs", V1);
    // Same crate, new file name: the fingerprint keys on the crate and
    // fn path, not the file, so moving code within a crate is free.
    let mut report = analyze("crates/novelty/src/batch_scoring.rs", V1);
    baseline.apply(&mut report);
    assert_eq!(report.deny_count(), 0, "{:?}", report.diagnostics);
}

#[test]
fn new_findings_still_fail_through_the_baseline() {
    let baseline = baseline_of("crates/novelty/src/scoring.rs", V1);
    // A second unwrap appears in the same fn: its ordinal is new, so the
    // gate must catch it while the original stays accepted.
    let grown = V1.replace(
        "*staging.first().unwrap()",
        "let a = *staging.first().unwrap();\n    a + *staging.last().unwrap()",
    );
    let mut report = analyze("crates/novelty/src/scoring.rs", &grown);
    baseline.apply(&mut report);
    assert!(report.deny_count() > 0, "{:?}", report.diagnostics);
    assert!(report.baselined_count() > 0, "{:?}", report.diagnostics);
}

#[test]
fn baseline_round_trips_through_its_file_form() {
    let baseline = baseline_of("crates/novelty/src/scoring.rs", V1);
    let reparsed = Baseline::parse(&baseline.to_json()).expect("own output parses");
    assert_eq!(reparsed, baseline);
}

#[test]
fn moving_a_fn_across_crates_is_a_new_finding() {
    // Crossing a crate boundary changes the fn path, and that is
    // deliberate: the invariant budget is owned per crate.
    let baseline = baseline_of("crates/novelty/src/scoring.rs", V1);
    let mut report = analyze("crates/saliency/src/scoring.rs", V1);
    baseline.apply(&mut report);
    assert!(report.deny_count() > 0, "{:?}", report.diagnostics);
}
