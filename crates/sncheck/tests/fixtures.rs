//! The fixture self-test: every rule must fire on its deliberately-bad
//! snippet, the fully-suppressed fixture must come back clean, and the
//! report over the whole fixture tree must be byte-identical across
//! runs.

use std::path::{Path, PathBuf};

use sncheck::diag::Severity;
use sncheck::engine::{check_files, check_source, expand_path};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn check_fixture(rel: &str) -> Vec<sncheck::diag::Diagnostic> {
    let path = fixture_root().join(rel);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    check_source(rel, &source)
}

fn rules_fired(rel: &str) -> Vec<String> {
    let mut rules: Vec<String> = check_fixture(rel)
        .into_iter()
        .map(|d| d.rule.to_string())
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn panic_fixture_fires_for_every_spelling() {
    let diags = check_fixture("crates/ndtensor/src/panics.rs");
    assert!(
        diags.iter().all(|d| d.rule == "no-panic-in-lib"),
        "{diags:?}"
    );
    // unwrap, expect, panic!, unreachable!, todo! — the #[cfg(test)]
    // module at the bottom must contribute nothing.
    assert_eq!(diags.len(), 5, "{diags:?}");
}

#[test]
fn clock_fixture_fires() {
    assert_eq!(
        rules_fired("crates/neural/src/clock.rs"),
        ["no-ambient-clock"]
    );
}

#[test]
fn spawn_fixture_fires_for_spawn_scope_and_builder() {
    let diags = check_fixture("crates/saliency/src/spawn.rs");
    assert!(diags.iter().all(|d| d.rule == "no-raw-spawn"), "{diags:?}");
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn hashmap_fixture_fires() {
    assert_eq!(
        rules_fired("crates/metrics/src/hashmap.rs"),
        ["no-nondeterministic-iteration"]
    );
}

#[test]
fn float_eq_fixture_fires_exactly_three_times() {
    let diags = check_fixture("crates/novelty/src/floateq.rs");
    assert!(diags.iter().all(|d| d.rule == "no-float-eq"), "{diags:?}");
    // Three equality comparisons fire; the `<=`/`>=` pair must not.
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn stdout_fixture_fires() {
    let diags = check_fixture("crates/ndtensor/src/stdout.rs");
    assert!(
        diags.iter().all(|d| d.rule == "no-stdout-in-lib"),
        "{diags:?}"
    );
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn recorded_parity_fixture_flags_only_the_orphan() {
    let diags = check_fixture("crates/novelty/src/recorded.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "recorded-parity");
    assert!(diags[0].message.contains("orphan_recorded"));
}

#[test]
fn hot_alloc_fixture_fires_for_every_spelling() {
    let diags = check_fixture("crates/novelty/src/runtime.rs");
    assert!(diags.iter().all(|d| d.rule == "no-hot-alloc"), "{diags:?}");
    // vec!, Vec::with_capacity, .to_vec() — the suppressed setup-path
    // allocation and the #[cfg(test)] module contribute nothing.
    assert_eq!(diags.len(), 3, "{diags:?}");
}

#[test]
fn routines_tree_is_hot_alloc_covered() {
    // The kernel registry lives in a nested `routines/` directory; path
    // classification and the hot-file list must reach it like any flat
    // hot module.
    let diags = check_fixture("crates/ndtensor/src/routines/kernels.rs");
    assert!(diags.iter().all(|d| d.rule == "no-hot-alloc"), "{diags:?}");
    // vec! and .to_vec() fire; the suppressed setup path, the
    // `Vec::new()` lookalike and the #[cfg(test)] module stay silent.
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn suppressed_fixture_is_clean() {
    let diags = check_fixture("crates/ndtensor/src/suppressed.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn stale_allow_fixture_warns_on_hygiene() {
    let diags = check_fixture("crates/ndtensor/src/stale_allow.rs");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Warn));
    assert!(diags.iter().any(|d| d.rule == "unused-suppression"));
    assert!(diags.iter().any(|d| d.rule == "unknown-rule"));
}

#[test]
fn hot_loop_fixture_fires_only_the_transitive_rules() {
    // The acceptance fixture: a bench binary is exempt from every
    // per-line rule, so v1 passed this file clean. The panic, alloc and
    // clock read sit below the `sncheck:hot-root` fn and only the
    // call-graph pass reaches them.
    let diags = check_fixture("crates/bench/src/bin/hot_loop.rs");
    let mut rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rules.sort();
    assert_eq!(
        rules,
        [
            "hot-path-transitive-alloc",
            "hot-path-transitive-clock",
            "hot-path-transitive-panic",
        ],
        "{diags:?}"
    );
    // The unreachable cold_setup fn allocates and unwraps; none of that
    // may appear.
    assert!(diags.iter().all(|d| d.line < 35), "{diags:?}");
}

#[test]
fn drift_fixture_flags_only_the_impure_wrapper() {
    let diags = check_fixture("crates/novelty/src/drift.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "recorded-parity-drift");
    assert!(diags[0].message.contains("classify_window"));
    assert_eq!(diags[0].fn_path, "novelty::classify_window");
}

#[test]
fn locks_fixture_flags_the_inversion_once() {
    let diags = check_fixture("crates/novelty/src/locks.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "lock-order");
    assert_eq!(diags[0].token, "queue<stats");
}

#[test]
fn float_promotion_fixture_fires_only_in_the_marked_fn() {
    let diags = check_fixture("crates/ndtensor/src/floatpromo.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "no-float-promotion");
    assert_eq!(diags[0].fn_path, "ndtensor::qdot");
}

#[test]
fn diamond_fixture_reports_the_shared_leaf_once() {
    let diags = check_fixture("crates/saliency/src/diamond.rs");
    // The per-line rule and the transitive rule both fire on the one
    // unwrap — and the transitive one exactly once despite two paths.
    let mut rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rules.sort();
    assert_eq!(
        rules,
        ["hot-path-transitive-panic", "no-panic-in-lib"],
        "{diags:?}"
    );
    assert_eq!(diags[0].line, diags[1].line);
}

#[test]
fn ambiguous_method_fixture_reaches_both_candidates() {
    let diags = check_fixture("crates/metrics/src/ambig.rs");
    // `w.tick()` fans out to Wall::tick and Counter::tick; the unwrap in
    // the latter is reached via the ambiguous edge.
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "hot-path-transitive-panic"
                && d.fn_path == "metrics::Counter::tick"),
        "{diags:?}"
    );
}

#[test]
fn every_primary_rule_has_a_firing_fixture() {
    let fixture_rels = [
        "crates/ndtensor/src/panics.rs",
        "crates/neural/src/clock.rs",
        "crates/saliency/src/spawn.rs",
        "crates/metrics/src/hashmap.rs",
        "crates/novelty/src/floateq.rs",
        "crates/ndtensor/src/stdout.rs",
        "crates/novelty/src/recorded.rs",
        "crates/novelty/src/runtime.rs",
        "crates/ndtensor/src/stale_allow.rs",
        "crates/bench/src/bin/hot_loop.rs",
        "crates/novelty/src/drift.rs",
        "crates/novelty/src/locks.rs",
        "crates/ndtensor/src/floatpromo.rs",
    ];
    let mut fired: Vec<String> = fixture_rels
        .iter()
        .flat_map(|rel| rules_fired(rel))
        .collect();
    fired.sort();
    fired.dedup();
    let all: Vec<&str> = sncheck::rules::RULES.iter().map(|r| r.id).collect();
    for rule in all {
        assert!(
            fired.iter().any(|f| f == rule),
            "rule {rule} has no fixture that triggers it (fired: {fired:?})"
        );
    }
}

#[test]
fn fixture_report_is_byte_identical_across_runs() {
    let root = fixture_root();
    let files = expand_path(&root).expect("fixture tree readable");
    assert!(!files.is_empty());
    let a = check_files(&root, &files).expect("first run");
    let b = check_files(&root, &files).expect("second run");
    assert!(
        a.report.deny_count() > 0,
        "fixtures must produce denied findings"
    );
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.graph_json, b.graph_json);
}
