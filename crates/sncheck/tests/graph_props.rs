//! Property tests for the v2 call-graph pass: building the graph is
//! total (no panic on arbitrary fragment soup) and deterministic (the
//! report and the graph dump are byte-identical across repeated runs and
//! across any file-walk order).
//!
//! The vendored proptest only generates integers, so files are assembled
//! from integer-indexed fragment tables and orderings from index vectors.

use proptest::prelude::*;
use sncheck::check_sources;

/// Function-name pool. Includes hot-root names, `*_recorded` pairs,
/// std-shadowed method names and plain helpers so every resolution class
/// (unique, ambiguous, std-shadowed, unresolved) is exercised.
const NAMES: &[&str] = &[
    "score_batch",
    "classify_each",
    "helper",
    "helper_recorded",
    "shared_leaf",
    "len",
    "push",
    "tick",
    "prepare",
];

/// Statement fragments, several of which trip rules.
const STMTS: &[&str] = &[
    "let a = 1;",
    "x.unwrap();",
    "let v = vec![0u8; 4];",
    "let t = Instant::now();",
    "self.alpha.lock();",
    "self.beta.lock();",
    "y.expect(\"m\");",
    "other.tick();",
    "helper();",
    "shared_leaf();",
    "if a > 0 { b(); }",
];

/// Crate directories the generated files are spread across.
const CRATES: &[&str] = &["novelty", "saliency", "ndtensor", "bench"];

/// Renders one generated file: a handful of fns (some free, some inside
/// an impl block) whose names and bodies come from the tables.
fn render_file(fns: &[(usize, usize, usize)], in_impl: bool) -> String {
    let mut src = String::new();
    if in_impl {
        src.push_str("impl Widget {\n");
    }
    for &(name, s1, s2) in fns {
        src.push_str(&format!(
            "pub fn {}(&self) {{ {} {} }}\n",
            NAMES[name % NAMES.len()],
            STMTS[s1 % STMTS.len()],
            STMTS[s2 % STMTS.len()],
        ));
    }
    if in_impl {
        src.push_str("}\n");
    }
    src
}

/// One generated file: `(crate index, fns as (name, stmt, stmt), impl flag)`.
/// The impl flag is 0/1 because the vendored proptest only yields integers.
type GenFile = (usize, Vec<(usize, usize, usize)>, usize);

/// Builds the `(path, text)` set from the generated description.
fn render_sources(files: &[GenFile]) -> Vec<(String, String)> {
    files
        .iter()
        .enumerate()
        .map(|(i, (krate, fns, in_impl))| {
            (
                format!("crates/{}/src/gen{}.rs", CRATES[krate % CRATES.len()], i),
                render_file(fns, *in_impl == 1),
            )
        })
        .collect()
}

proptest! {
    /// The whole pipeline is total over fragment soup and its two byte
    /// streams are a pure function of the input set: running twice and
    /// running over a rotated (shuffled) file order give identical
    /// bytes.
    #[test]
    fn analysis_is_total_and_order_independent(
        files in proptest::collection::vec(
            (
                0usize..4,
                proptest::collection::vec((0usize..16, 0usize..16, 0usize..16), 1..4),
                0usize..2,
            ),
            1..6,
        ),
        rotate in 0usize..6,
    ) {
        let sources = render_sources(&files);
        let a = check_sources(&sources);
        let b = check_sources(&sources);
        prop_assert_eq!(a.report.to_json(), b.report.to_json());
        prop_assert_eq!(&a.graph_json, &b.graph_json);

        // Any walk order: rotate the list (with reversal for odd
        // rotations) and re-run.
        let mut shuffled = sources.clone();
        let r = rotate % shuffled.len().max(1);
        shuffled.rotate_left(r);
        if rotate % 2 == 1 {
            shuffled.reverse();
        }
        let c = check_sources(&shuffled);
        prop_assert_eq!(a.report.to_json(), c.report.to_json());
        prop_assert_eq!(&a.graph_json, &c.graph_json);
    }

    /// Fingerprints never embed line numbers: prepending blank lines and
    /// comments to every file changes no fingerprint.
    #[test]
    fn fingerprints_are_line_shift_invariant(
        files in proptest::collection::vec(
            (
                0usize..4,
                proptest::collection::vec((0usize..16, 0usize..16, 0usize..16), 1..4),
                0usize..2,
            ),
            1..4,
        ),
        pad in 1usize..5,
    ) {
        let sources = render_sources(&files);
        let shifted: Vec<(String, String)> = sources
            .iter()
            .map(|(p, t)| (p.clone(), format!("{}{}", "// pad\n\n".repeat(pad), t)))
            .collect();
        let fp = |srcs: &[(String, String)]| {
            let mut v: Vec<String> = check_sources(srcs)
                .report
                .diagnostics
                .iter()
                .map(|d| d.fingerprint.clone())
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(fp(&sources), fp(&shifted));
    }
}
