//! Property tests for the sncheck lexer and suppression protocol.
//!
//! The vendored proptest only generates integers, so source soup is
//! assembled from integer-indexed fragment tables rather than string
//! strategies.

use proptest::prelude::*;
use sncheck::engine::check_source;
use sncheck::lexer::lex;

/// A library path every rule family applies to.
const LIB: &str = "crates/novelty/src/soup.rs";

/// Trigger text for every rule; none of it may fire from inside a
/// literal or comment.
const TRIGGERS: &[&str] = &[
    ".unwrap()",
    ".expect(\\\"m\\\")",
    "panic!(msg)",
    "unreachable!()",
    "HashMap<u32, u32>",
    "HashSet",
    "Instant::now()",
    "SystemTime::now()",
    "thread::spawn(f)",
    "println!(s)",
    "x == 1.0",
    "f32::NAN != y",
];

/// Wraps a trigger in one of the shielding constructs. The surrounding
/// code is deliberately rule-clean.
fn shielded(trigger: &str, wrap: usize) -> String {
    match wrap % 5 {
        0 => format!("let s = \"{trigger}\";\n"),
        1 => format!("// {trigger}\n"),
        2 => format!("/* {trigger} */ let a = 1;\n"),
        3 => format!("let r = r#\"{trigger}\"#;\n"),
        _ => format!("let c = 'x'; // {trigger}\n"),
    }
}

proptest! {
    /// Triggers confined to literals and comments never produce
    /// diagnostics, for any interleaving of shielding constructs.
    #[test]
    fn shielded_triggers_never_fire(
        picks in proptest::collection::vec((0usize..TRIGGERS.len(), 0usize..5), 0..30)
    ) {
        let mut src = String::from("fn soup() {\n");
        for &(t, w) in &picks {
            // Raw strings keep backslashes literal; skip the one
            // fragment that relies on escape processing.
            let trigger = TRIGGERS[t];
            if w % 5 == 3 && trigger.contains('\\') {
                continue;
            }
            src.push_str(&shielded(trigger, w));
        }
        src.push_str("}\n");
        let diags = check_source(LIB, &src);
        prop_assert!(diags.is_empty(), "src:\n{src}\ndiags: {diags:?}");
    }

    /// The lexer is total on arbitrary ASCII soup: no panics, and token
    /// line numbers never decrease.
    #[test]
    fn lexer_is_total_and_positions_are_monotone(
        bytes in proptest::collection::vec(1u32..127, 0..300)
    ) {
        let src: String = bytes
            .iter()
            .map(|&b| char::from_u32(b).expect("sub-ASCII is always a char"))
            .collect();
        let lexed = lex(&src);
        let mut last = 1u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= last, "line went backwards in {src:?}");
            prop_assert!(t.col >= 1);
            last = t.line;
        }
    }

    /// Suppressions are honored exactly on their line: a violation line
    /// is silenced iff it carries an allow, and an allow on a clean line
    /// surfaces as hygiene (`unused-suppression`), never as silence for
    /// a neighbour.
    #[test]
    fn suppressions_apply_exactly_per_line(
        lines in proptest::collection::vec((0usize..2, 0usize..2), 1..40)
    ) {
        let mut src = String::new();
        let mut expected: Vec<(u32, &str)> = Vec::new();
        for (k, &(violate, allow)) in lines.iter().enumerate() {
            let line = (k + 1) as u32;
            match (violate == 1, allow == 1) {
                (true, true) => {
                    src.push_str("x.unwrap(); // sncheck:allow(no-panic-in-lib): fixture\n");
                }
                (true, false) => {
                    src.push_str("x.unwrap();\n");
                    expected.push((line, "no-panic-in-lib"));
                }
                (false, true) => {
                    src.push_str("let q = 3; // sncheck:allow(no-panic-in-lib): stale\n");
                    expected.push((line, "unused-suppression"));
                }
                (false, false) => {
                    src.push_str("let q = 3;\n");
                }
            }
        }
        let mut got: Vec<(u32, &str)> = check_source(LIB, &src)
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect();
        got.sort();
        expected.sort();
        prop_assert_eq!(got, expected, "src:\n{}", src);
    }
}
