//! Temporally-coherent drive simulation.
//!
//! The datasets of [`crate::DatasetConfig::generate`] are i.i.d. frames —
//! fine for training, but a deployed detector (the paper's motivating
//! setting) sees a *stream*. [`DriveConfig`] simulates one: road
//! curvature evolves as a mean-reverting random walk, the vehicle's
//! lateral offset and heading integrate simple kinematics under the
//! pure-pursuit steering law (the loop is closed — the controller that
//! labels the data also drives the car), scenery textures stay fixed and
//! clutter streams past the camera.
//!
//! Pairs with `novelty::monitor::StreamMonitor` for the end-to-end
//! "alarm on persistent novelty" scenario (see the `drive_monitor`
//! example).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

use crate::{
    render_frame, steering_angle, DatasetConfig, DrivingDataset, Frame, SceneParams, Weather, World,
};

/// Configuration for a simulated drive.
///
/// # Example
///
/// ```
/// use simdrive::{DriveConfig, World};
///
/// let drive = DriveConfig::new(World::Outdoor).with_len(16).simulate(3);
/// assert_eq!(drive.len(), 16);
/// // Consecutive frames share scenery: textures are frozen per drive.
/// assert_eq!(
///     drive.frames()[0].scene.texture_seed,
///     drive.frames()[15].scene.texture_seed
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriveConfig {
    world: World,
    len: usize,
    height: usize,
    width: usize,
    supersample: usize,
    clutter_density: f32,
    weather: Weather,
    /// Distance travelled between frames, metres.
    step_m: f32,
}

impl DriveConfig {
    /// A drive through `world` with the paper's 60×160 frame geometry.
    pub fn new(world: World) -> Self {
        let step_m = match world {
            World::Outdoor => 1.8, // ~65 km/h at 10 fps
            World::Indoor => 0.08,
        };
        DriveConfig {
            world,
            len: 100,
            height: crate::DEFAULT_HEIGHT,
            width: crate::DEFAULT_WIDTH,
            supersample: 2,
            clutter_density: 1.0,
            weather: Weather::Clear,
            step_m,
        }
    }

    /// Sets the number of frames.
    pub fn with_len(mut self, len: usize) -> Self {
        self.len = len;
        self
    }

    /// Sets the frame size.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn with_size(mut self, height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "frame dimensions must be non-zero");
        self.height = height;
        self.width = width;
        self
    }

    /// Sets the supersampling factor.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is zero.
    pub fn with_supersample(mut self, factor: usize) -> Self {
        assert!(factor > 0, "supersample factor must be non-zero");
        self.supersample = factor;
        self
    }

    /// Sets the weather for the whole drive.
    pub fn with_weather(mut self, weather: Weather) -> Self {
        self.weather = weather;
        self
    }

    /// Sets the per-frame travel distance in metres.
    ///
    /// # Panics
    ///
    /// Panics when `step_m` is not finite or not positive.
    pub fn with_step_m(mut self, step_m: f32) -> Self {
        assert!(
            step_m.is_finite() && step_m > 0.0,
            "step_m must be positive and finite"
        );
        self.step_m = step_m;
        self
    }

    /// The configured world.
    pub fn world(&self) -> World {
        self.world
    }

    /// The configured frame count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when configured for zero frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Simulates the drive deterministically from `seed`.
    ///
    /// The returned dataset's frames are temporally ordered; scene
    /// geometry evolves smoothly and the steering labels are the
    /// closed-loop controls that keep the vehicle on the road.
    pub fn simulate(&self, seed: u64) -> DrivingDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let world = self.world;
        let max_curv = world.max_curvature();
        // Mean-reverting curvature innovation, scaled so typical drives
        // use about half the curvature envelope.
        let curv_noise = Normal::new(0.0f32, max_curv * 0.18).expect("valid std");
        let offset_noise = Normal::new(0.0f32, world.road_half_width() * 0.02).expect("valid std");

        let mut scene = SceneParams::sample(world, &mut rng).with_weather(self.weather);
        scene.lateral_offset = 0.0;
        scene.heading_error = 0.0;
        let texture_seed = scene.texture_seed;
        let clutter_seed = scene.clutter_seed;

        let mut travel = 0.0f32;
        let mut frames = Vec::with_capacity(self.len);
        for _ in 0..self.len {
            scene.texture_seed = texture_seed;
            scene.clutter_seed = clutter_seed;
            scene.clutter_travel = travel;
            scene.weather = self.weather;

            let rendered = render_frame(
                &scene,
                self.height,
                self.width,
                self.supersample,
                self.clutter_density,
            );
            let angle = steering_angle(&scene);
            frames.push(Frame {
                image: rendered.gray,
                angle,
                lane_mask: rendered.lane_mask,
                scene: scene.clone(),
            });

            // Advance the world: curvature drifts, the vehicle steers,
            // lighting drifts back toward nominal (clouds pass).
            let ds = self.step_m;
            scene.exposure +=
                0.08 * (1.0 - scene.exposure) + curv_noise.sample(&mut rng) / max_curv * 0.01;
            scene.exposure = scene.exposure.clamp(0.75, 1.25);
            scene.curvature =
                (0.92 * scene.curvature + curv_noise.sample(&mut rng)).clamp(-max_curv, max_curv);
            // Steering command turns the vehicle; the road's curvature
            // turns the road. The heading error integrates the difference.
            let commanded_curv = angle * max_curv;
            scene.heading_error =
                (scene.heading_error + (commanded_curv - scene.curvature) * ds).clamp(-0.2, 0.2);
            // Lateral offset integrates the heading error plus drift.
            scene.lateral_offset =
                (scene.lateral_offset + scene.heading_error * ds + offset_noise.sample(&mut rng))
                    .clamp(
                        -0.6 * world.road_half_width(),
                        0.6 * world.road_half_width(),
                    );
            travel += ds;
        }

        let config = DatasetConfig::for_world(world)
            .with_len(self.len)
            .with_size(self.height, self.width)
            .with_supersample(self.supersample)
            .with_weather(self.weather);
        DrivingDataset::from_frames(config, frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::{ssim, SsimConfig};

    fn quick(world: World, len: usize, seed: u64) -> DrivingDataset {
        DriveConfig::new(world)
            .with_len(len)
            .with_size(40, 80)
            .with_supersample(1)
            .simulate(seed)
    }

    #[test]
    fn drive_is_deterministic_and_sized() {
        let a = quick(World::Outdoor, 6, 1);
        let b = quick(World::Outdoor, 6, 1);
        assert_eq!(a.len(), 6);
        for (fa, fb) in a.frames().iter().zip(b.frames()) {
            assert_eq!(fa.image, fb.image);
            assert_eq!(fa.angle, fb.angle);
        }
        let c = quick(World::Outdoor, 6, 2);
        assert_ne!(a.frames()[0].image, c.frames()[0].image);
    }

    #[test]
    fn consecutive_frames_are_more_similar_than_distant_ones() {
        // The defining property of a temporally-coherent stream.
        let drive = quick(World::Outdoor, 12, 3);
        let cfg = SsimConfig::with_window(7);
        let f = drive.frames();
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..6 {
            near += ssim(&f[i].image, &f[i + 1].image, &cfg).unwrap();
            far += ssim(&f[i].image, &f[i + 6].image, &cfg).unwrap();
        }
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn vehicle_stays_on_the_road() {
        for world in [World::Outdoor, World::Indoor] {
            let drive = quick(world, 60, 4);
            for (i, frame) in drive.frames().iter().enumerate() {
                assert!(
                    frame.scene.lateral_offset.abs() <= world.road_half_width(),
                    "frame {i}: off-road at offset {}",
                    frame.scene.lateral_offset
                );
                assert!(frame.angle.is_finite() && frame.angle.abs() <= 1.0);
            }
        }
    }

    #[test]
    fn curvature_path_is_smooth_and_bounded() {
        let drive = quick(World::Outdoor, 40, 5);
        let max_curv = World::Outdoor.max_curvature();
        let mut prev = drive.frames()[0].scene.curvature;
        for frame in &drive.frames()[1..] {
            let c = frame.scene.curvature;
            assert!(c.abs() <= max_curv);
            assert!((c - prev).abs() <= max_curv, "curvature jump {prev} → {c}");
            prev = c;
        }
    }

    #[test]
    fn scenery_is_frozen_but_clutter_streams() {
        let drive = quick(World::Outdoor, 5, 6);
        let f = drive.frames();
        assert_eq!(f[0].scene.texture_seed, f[4].scene.texture_seed);
        assert_eq!(f[0].scene.clutter_seed, f[4].scene.clutter_seed);
        assert!(f[4].scene.clutter_travel > f[0].scene.clutter_travel);
    }

    #[test]
    fn weather_applies_to_every_frame() {
        let drive = DriveConfig::new(World::Outdoor)
            .with_len(3)
            .with_size(40, 80)
            .with_supersample(1)
            .with_weather(Weather::Fog)
            .simulate(7);
        for frame in drive.frames() {
            assert_eq!(frame.scene.weather, Weather::Fog);
            assert!(frame.scene.haze > 0.7);
        }
    }

    #[test]
    fn builder_accessors() {
        let cfg = DriveConfig::new(World::Indoor).with_len(9).with_step_m(0.2);
        assert_eq!(cfg.world(), World::Indoor);
        assert_eq!(cfg.len(), 9);
        assert!(!cfg.is_empty());
        assert!(DriveConfig::new(World::Indoor).with_len(0).is_empty());
    }
}
