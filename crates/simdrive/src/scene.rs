//! Per-frame scene parameters.
//!
//! A [`SceneParams`] captures everything that varies between frames of one
//! world: the local road geometry the vehicle sees (curvature, lateral
//! offset, heading error), photometric conditions, and the seeds that place
//! texture and clutter. The ground-truth steering angle is a pure function
//! of the geometric part (see [`crate::steering_angle`]).

use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::{Weather, World};

/// The sampled state of a single frame.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneParams {
    /// Which world the frame belongs to.
    pub world: World,
    /// Road curvature at the vehicle, 1/metres (positive = curving right
    /// in image space).
    pub curvature: f32,
    /// Lateral offset of the vehicle from the lane centre, metres
    /// (positive = vehicle right of centre).
    pub lateral_offset: f32,
    /// Heading error of the vehicle relative to the road tangent, radians
    /// (positive = pointing right of the road direction).
    pub heading_error: f32,
    /// Global brightness multiplier for the frame (photometric jitter).
    pub exposure: f32,
    /// Haze strength in `[0, 1]` (outdoor only; fades distant ground
    /// towards the sky colour).
    pub haze: f32,
    /// Sun/lamp direction bias in `[-1, 1]`, shifts lateral shading.
    pub light_bias: f32,
    /// Weather condition (outdoor only; extension beyond the paper).
    pub weather: Weather,
    /// Seed for deterministic texture noise.
    pub texture_seed: u64,
    /// Seed for clutter object placement.
    pub clutter_seed: u64,
    /// Distance travelled since the clutter layout was sampled, metres —
    /// used by drive simulation to stream objects past the camera
    /// (0.0 for i.i.d. dataset frames).
    pub clutter_travel: f32,
}

impl SceneParams {
    /// Samples a random scene for `world` from `rng`.
    ///
    /// Geometry is drawn from truncated normals so most frames are mild
    /// and the tails still exercise strong curvature; photometrics differ
    /// per world (outdoor jitters much more, mirroring the paper's note
    /// that DSU is the more varied dataset).
    pub fn sample(world: World, rng: &mut impl Rng) -> Self {
        let max_curv = world.max_curvature();
        let curv_dist = Normal::new(0.0f32, max_curv * 0.5).expect("valid std"); // sncheck:allow(hot-path-transitive-panic): std is a positive world-model constant; reached only through the over-approximated `.sample(` edge
        let curvature = curv_dist.sample(rng).clamp(-max_curv, max_curv);

        let off_std = world.road_half_width() * 0.25;
        let lateral_offset = Normal::new(0.0f32, off_std)
            .expect("valid std") // sncheck:allow(hot-path-transitive-panic): std is a positive world-model constant; reached only through the over-approximated `.sample(` edge
            .sample(rng)
            .clamp(-2.0 * off_std, 2.0 * off_std);

        let heading_error = Normal::new(0.0f32, 0.05)
            .expect("valid std") // sncheck:allow(hot-path-transitive-panic): std is a positive literal; reached only through the over-approximated `.sample(` edge
            .sample(rng)
            .clamp(-0.15, 0.15);

        let (exposure, haze) = match world {
            World::Outdoor => (rng.gen_range(0.75..1.25), rng.gen_range(0.0..0.5)),
            World::Indoor => (rng.gen_range(0.92..1.08), 0.0),
        };

        SceneParams {
            world,
            curvature,
            lateral_offset,
            heading_error,
            exposure,
            haze,
            light_bias: rng.gen_range(-1.0..1.0),
            weather: Weather::Clear,
            texture_seed: rng.gen(),
            clutter_seed: rng.gen(),
            clutter_travel: 0.0,
        }
    }

    /// Returns the scene with a weather condition applied (adjusting the
    /// photometric parameters weather implies).
    pub fn with_weather(mut self, weather: Weather) -> Self {
        self.weather = weather;
        match weather {
            Weather::Clear => {}
            Weather::Fog => {
                self.haze = (self.haze + 0.75).min(1.0);
                self.exposure *= 1.05;
            }
            Weather::Rain => {
                self.exposure *= 0.8;
            }
        }
        self
    }

    /// A canonical straight-road scene with neutral photometrics, useful
    /// for tests and documentation figures.
    pub fn neutral(world: World) -> Self {
        SceneParams {
            world,
            curvature: 0.0,
            lateral_offset: 0.0,
            heading_error: 0.0,
            exposure: 1.0,
            haze: 0.0,
            light_bias: 0.0,
            weather: Weather::Clear,
            texture_seed: 0,
            clutter_seed: 0,
            clutter_travel: 0.0,
        }
    }

    /// Lateral position of the road centreline at distance `z` metres
    /// ahead, in vehicle coordinates (metres, positive right).
    ///
    /// Uses the standard quadratic lane model: offset + heading term +
    /// curvature term.
    pub fn centerline_at(&self, z: f32) -> f32 {
        -self.lateral_offset + self.heading_error * z + 0.5 * self.curvature * z * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_scenes_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for world in [World::Outdoor, World::Indoor] {
            for _ in 0..200 {
                let s = SceneParams::sample(world, &mut rng);
                assert!(s.curvature.abs() <= world.max_curvature());
                assert!(s.lateral_offset.abs() <= world.road_half_width() * 0.5 + 1e-6);
                assert!(s.heading_error.abs() <= 0.15);
                assert!(s.exposure > 0.5 && s.exposure < 1.5);
                assert!((0.0..=1.0).contains(&s.haze));
            }
        }
    }

    #[test]
    fn indoor_photometrics_are_tamer() {
        let mut rng = StdRng::seed_from_u64(2);
        let spread = |w: World, rng: &mut StdRng| {
            let vals: Vec<f32> = (0..300)
                .map(|_| SceneParams::sample(w, rng).exposure)
                .collect();
            let lo = vals.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            hi - lo
        };
        assert!(spread(World::Outdoor, &mut rng) > spread(World::Indoor, &mut rng));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = SceneParams::sample(World::Outdoor, &mut StdRng::seed_from_u64(5));
        let b = SceneParams::sample(World::Outdoor, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn centerline_is_quadratic_in_distance() {
        let mut s = SceneParams::neutral(World::Outdoor);
        s.curvature = 0.01;
        s.heading_error = 0.02;
        s.lateral_offset = 0.5;
        let z = 10.0;
        let expect = -0.5 + 0.02 * 10.0 + 0.5 * 0.01 * 100.0;
        assert!((s.centerline_at(z) - expect).abs() < 1e-6);
        // At z = 0 the centreline sits opposite the vehicle's own offset.
        assert!((s.centerline_at(0.0) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn weather_adjusts_photometrics() {
        let base = SceneParams::neutral(World::Outdoor);
        let fog = base.clone().with_weather(Weather::Fog);
        assert!(fog.haze > base.haze);
        assert_eq!(fog.weather, Weather::Fog);
        let rain = base.clone().with_weather(Weather::Rain);
        assert!(rain.exposure < base.exposure);
        let clear = base.clone().with_weather(Weather::Clear);
        assert_eq!(clear.haze, base.haze);
    }

    #[test]
    fn neutral_scene_is_straight_and_centred() {
        let s = SceneParams::neutral(World::Indoor);
        for z in [0.0f32, 1.0, 5.0] {
            assert_eq!(s.centerline_at(z), 0.0);
        }
    }
}
