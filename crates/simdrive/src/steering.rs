//! Ground-truth steering from scene geometry.

use crate::SceneParams;

/// Computes the normalized ground-truth steering angle in `[-1, 1]` for a
/// scene, using a pure-pursuit controller: aim at the lane centre one
/// look-ahead distance ahead and steer with the curvature of the arc that
/// reaches it, normalized by the world's maximum curvature.
///
/// Positive values steer right (toward positive lateral coordinates).
///
/// # Example
///
/// ```
/// use simdrive::{steering_angle, SceneParams, World};
///
/// let straight = SceneParams::neutral(World::Outdoor);
/// assert_eq!(steering_angle(&straight), 0.0);
///
/// let mut right_curve = SceneParams::neutral(World::Outdoor);
/// right_curve.curvature = 0.01;
/// assert!(steering_angle(&right_curve) > 0.0);
/// ```
pub fn steering_angle(scene: &SceneParams) -> f32 {
    let lookahead = scene.world.lookahead();
    let target_x = scene.centerline_at(lookahead);
    // Pure pursuit: curvature of the circular arc through the origin
    // (vehicle) and the target point, tangent to the heading axis.
    let kappa = 2.0 * target_x / (lookahead * lookahead + target_x * target_x);
    (kappa / scene.world.max_curvature()).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn straight_centred_scene_steers_zero() {
        for world in [World::Outdoor, World::Indoor] {
            assert_eq!(steering_angle(&SceneParams::neutral(world)), 0.0);
        }
    }

    #[test]
    fn steering_sign_follows_curvature() {
        let mut s = SceneParams::neutral(World::Outdoor);
        s.curvature = 0.008;
        assert!(steering_angle(&s) > 0.0);
        s.curvature = -0.008;
        assert!(steering_angle(&s) < 0.0);
    }

    #[test]
    fn offset_correction_steers_back_to_centre() {
        let mut s = SceneParams::neutral(World::Indoor);
        // Vehicle right of centre → centreline appears left → steer left.
        s.lateral_offset = 0.2;
        assert!(steering_angle(&s) < 0.0);
        s.lateral_offset = -0.2;
        assert!(steering_angle(&s) > 0.0);
    }

    #[test]
    fn heading_error_is_corrected() {
        let mut s = SceneParams::neutral(World::Outdoor);
        s.heading_error = 0.1; // pointing right of road → road centre drifts right ahead
        assert!(steering_angle(&s) > 0.0);
    }

    #[test]
    fn output_is_bounded_for_sampled_scenes() {
        let mut rng = StdRng::seed_from_u64(3);
        for world in [World::Outdoor, World::Indoor] {
            for _ in 0..500 {
                let s = SceneParams::sample(world, &mut rng);
                let a = steering_angle(&s);
                assert!((-1.0..=1.0).contains(&a));
                assert!(a.is_finite());
            }
        }
    }

    #[test]
    fn steering_is_monotone_in_curvature() {
        let mut prev = f32::NEG_INFINITY;
        for i in 0..20 {
            let mut s = SceneParams::neutral(World::Outdoor);
            s.curvature = -0.012 + i as f32 * 0.0012;
            let a = steering_angle(&s);
            assert!(a >= prev, "not monotone at step {i}");
            prev = a;
        }
    }
}
