//! Seeded, composable scene modifiers.
//!
//! The paper's separation claims (C3/C5/C7) are only credible if the
//! score distributions separate across *many* visual domains, not just
//! the two worlds. A [`SceneModifier`] turns one rendered frame into a
//! domain-shifted variant — rain streaks, a fog density ramp, glare
//! bloom, night lighting, tunnel/overpass occlusion, traffic objects —
//! as a **pure function of `(seed, frame index, params, input pixels)`**.
//! Two applications with the same inputs are bit-identical, so any
//! composition of modifiers is byte-reproducible and suitable for
//! golden-file pinning and cross-domain evaluation grids.
//!
//! # Contract
//!
//! Every modifier upholds three invariants (property-tested in
//! `tests/scenario_matrix.rs`):
//!
//! 1. **Purity / determinism** — the output depends only on
//!    `(seed, frame_index, params, input)`; no ambient RNG, clocks or
//!    global state. All randomness comes from [`crate::hash::hash01`]-style
//!    hashes, salted per modifier *type* (not stack position) so
//!    reordering a stack never changes an individual modifier's noise.
//! 2. **Range preservation** — pixels in `[0, 1]` stay in `[0, 1]`.
//!    Modifiers only use convex blends (`px + (c − px)·w` with
//!    `w ∈ [0, 1]`, `c ∈ [0, 1]`) and pointwise `min`/`max` against
//!    in-range values, so no clamping is ever needed.
//! 3. **Identity at zero intensity** — `intensity == 0` returns the
//!    input bit-exactly (early return, not a degenerate blend).
//!
//! # Composition and commutativity
//!
//! [`ModifierStack`] applies modifiers in order. Composition is *not*
//! commutative in general (fog-then-night ≠ night-then-fog: the blends
//! are affine and do not commute). The one claimed exception is the
//! **occluder family** ([`TunnelOcclusion`], [`TrafficObjects`]): these
//! paint opaque geometry via `min(px, shade(x, y))` where `shade` never
//! reads the input image, and pointwise `min` is commutative and
//! associative — so occluders commute with each other bit-exactly.
//! [`SceneModifier::is_occluder`] advertises membership and the property
//! tests verify exactly that claim, and nothing stronger.

use vision::Image;

use crate::hash::{hash01, value_noise};

/// Domain salts separating each modifier type's hash stream. Salted by
/// *type* so a modifier draws the same noise wherever it sits in a stack.
const SALT_RAIN: u64 = 0x5CE1_0001;
const SALT_FOG: u64 = 0x5CE1_0002;
const SALT_GLARE: u64 = 0x5CE1_0003;
const SALT_NIGHT: u64 = 0x5CE1_0004;
const SALT_TUNNEL: u64 = 0x5CE1_0005;
const SALT_TRAFFIC: u64 = 0x5CE1_0006;

/// A deterministic, composable transformation of a rendered frame.
///
/// Implementations must be pure: [`SceneModifier::apply`] may depend
/// only on the seed, the frame index, the modifier's own parameters and
/// the input pixels. See the module docs for the full contract.
pub trait SceneModifier: std::fmt::Debug + Send + Sync {
    /// Stable lower-case name, used in CLI specs, domain labels and
    /// reports.
    fn name(&self) -> &'static str;

    /// Effect strength in `[0, 1]`; `0` is the bit-exact identity.
    fn intensity(&self) -> f32;

    /// Produces the modified frame. Pure function of
    /// `(seed, frame_index, self, image)`.
    fn apply(&self, seed: u64, frame_index: u64, image: &Image) -> Image;

    /// `true` for modifiers that only paint opaque geometry via
    /// pointwise `min` — these commute with each other bit-exactly (the
    /// only commutativity this module claims).
    fn is_occluder(&self) -> bool {
        false
    }
}

/// Validates an intensity parameter at construction time.
///
/// # Panics
///
/// Panics when `intensity` is not finite or outside `[0, 1]` — modifier
/// construction is configuration-time code, matching the panicking
/// validation style of [`crate::DatasetConfig`].
fn checked_intensity(name: &str, intensity: f32) -> f32 {
    assert!(
        intensity.is_finite() && (0.0..=1.0).contains(&intensity),
        "{name} intensity must be in [0, 1], got {intensity}"
    );
    intensity
}

/// Convex blend of `px` towards `target` with weight `w ∈ [0, 1]` —
/// range-preserving by construction when both operands are in `[0, 1]`.
#[inline]
fn blend(px: f32, target: f32, w: f32) -> f32 {
    px + (target - px) * w
}

/// Rain: slanted bright streaks drifting down-frame, over a mildly
/// darkened (wet, overcast) scene.
///
/// Streaks are placed by hashing a slanted column index and a coarse row
/// band, and drift with the frame index so a streamed sequence animates
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RainStreaks {
    intensity: f32,
}

/// Fog: a depth-graded convex blend towards a uniform fog luminance,
/// strongest near the top of the frame (far geometry), with slow
/// value-noise patchiness drifting across frames.
///
/// Because the blend target is mid-grey (0.72), fog at *any* intensity
/// can neither black out nor saturate a frame — the `FrameGate` must
/// keep admitting foggy frames (property-tested).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FogRamp {
    intensity: f32,
}

/// Glare: an elliptical bloom around a seeded sun position in the upper
/// part of the frame, blending pixels towards white with a quadratic
/// falloff.
///
/// The bloom is spatially localized (falloff support is a bounded
/// ellipse), so the frame-wide mean stays far from the gate's
/// `saturated` threshold even at full intensity — glare is a *scene*,
/// not a sensor fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlareBloom {
    intensity: f32,
}

/// Night/dusk: a global gain roll-off towards an ambient floor plus
/// faint sensor grain.
///
/// The ambient floor (`0.05 · intensity`) keeps even a full-night frame
/// above the gate's `all-black` mean threshold: night is darker, never
/// dead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NightLighting {
    intensity: f32,
}

/// Tunnel/overpass: structured occlusion — a dark concrete ceiling band
/// descending from the top of the frame plus two drifting support
/// pillars, painted with pointwise `min` (an occluder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunnelOcclusion {
    intensity: f32,
}

/// Traffic: up to three vehicle-shaped occluders on the road surface,
/// approaching cyclically with the frame index, painted with pointwise
/// `min` (an occluder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficObjects {
    intensity: f32,
}

macro_rules! modifier_ctor {
    ($ty:ident, $label:literal) => {
        impl $ty {
            #[doc = concat!("A `", $label, "` modifier at `intensity`.")]
            ///
            /// # Panics
            ///
            /// Panics when `intensity` is not finite or outside `[0, 1]`.
            pub fn new(intensity: f32) -> Self {
                Self {
                    intensity: checked_intensity($label, intensity),
                }
            }
        }
    };
}

modifier_ctor!(RainStreaks, "rain");
modifier_ctor!(FogRamp, "fog");
modifier_ctor!(GlareBloom, "glare");
modifier_ctor!(NightLighting, "night");
modifier_ctor!(TunnelOcclusion, "tunnel");
modifier_ctor!(TrafficObjects, "traffic");

impl SceneModifier for FogRamp {
    fn name(&self) -> &'static str {
        "fog"
    }

    fn intensity(&self) -> f32 {
        self.intensity
    }

    fn apply(&self, seed: u64, frame_index: u64, image: &Image) -> Image {
        if self.intensity <= 0.0 {
            return image.clone();
        }
        let s = seed ^ SALT_FOG;
        let h = image.height() as f32;
        // Fog banks drift slowly across the frame sequence.
        let drift = frame_index as f32 * 0.35;
        const FOG_LUMA: f32 = 0.72;
        Image::from_fn(image.height(), image.width(), |y, x| {
            // Depth ramp: rows near the top of the frame (far geometry)
            // fog the hardest; the foreground keeps some contrast.
            let ramp = ((h - y as f32) / h).powf(1.2);
            let patch = 0.8 + 0.2 * value_noise(s, x as f32 * 0.06 + drift, y as f32 * 0.1, 1.0);
            let w = self.intensity * (0.35 + 0.65 * ramp) * patch;
            blend(image.get(y, x), FOG_LUMA, w.min(1.0))
        })
        .expect("input image dimensions are non-zero")
    }
}

impl SceneModifier for RainStreaks {
    fn name(&self) -> &'static str {
        "rain"
    }

    fn intensity(&self) -> f32 {
        self.intensity
    }

    fn apply(&self, seed: u64, frame_index: u64, image: &Image) -> Image {
        if self.intensity <= 0.0 {
            return image.clone();
        }
        let s = seed ^ SALT_RAIN;
        // Overcast wet-scene dimming, well clear of the gate's
        // `all-black` threshold even at full intensity.
        let dim = 1.0 - 0.18 * self.intensity;
        let fall = frame_index as f32 * 2.0;
        Image::from_fn(image.height(), image.width(), |y, x| {
            let px = image.get(y, x) * dim;
            // Slanted streak coordinate: streaks lean ~17° and fall with
            // the frame index.
            let u = x as f32 - 0.3 * y as f32 + fall;
            let col = u.floor() as i64 as u64;
            let band = (y as u64) / 9;
            // Which slanted columns carry a streak, and where each
            // streak's dashes sit, are independent hash draws.
            let active = hash01(s, col, 0) < 0.35 * self.intensity;
            let dash = hash01(s ^ 0xD5, col, band) < 0.65;
            if active && dash {
                // Streak brightness varies per streak; blend is convex.
                let streak_luma = 0.58 + 0.20 * hash01(s ^ 0x1F, col, 1);
                blend(px, streak_luma, 0.55 * self.intensity)
            } else {
                px
            }
        })
        .expect("input image dimensions are non-zero")
    }
}

impl SceneModifier for GlareBloom {
    fn name(&self) -> &'static str {
        "glare"
    }

    fn intensity(&self) -> f32 {
        self.intensity
    }

    fn apply(&self, seed: u64, frame_index: u64, image: &Image) -> Image {
        if self.intensity <= 0.0 {
            return image.clone();
        }
        let s = seed ^ SALT_GLARE;
        let (h, w) = (image.height() as f32, image.width() as f32);
        // Sun position: seeded, in the upper middle band of the frame.
        let cx = (0.2 + 0.6 * hash01(s, 0, 0)) * w;
        let cy = (0.05 + 0.25 * hash01(s, 1, 0)) * h;
        // Per-frame shimmer modulates bloom strength a little.
        let shimmer = 0.9 + 0.1 * hash01(s, frame_index, 2);
        Image::from_fn(image.height(), image.width(), |y, x| {
            let dx = (x as f32 - cx) / (0.35 * w);
            let dy = (y as f32 - cy) / (0.35 * h);
            let falloff = (1.0 - (dx * dx + dy * dy)).max(0.0);
            // Quadratic falloff keeps the bloom localized: the
            // frame-mean added brightness stays small at any intensity.
            let wgt = self.intensity * shimmer * falloff * falloff;
            blend(image.get(y, x), 1.0, wgt.min(1.0))
        })
        .expect("input image dimensions are non-zero")
    }
}

impl SceneModifier for NightLighting {
    fn name(&self) -> &'static str {
        "night"
    }

    fn intensity(&self) -> f32 {
        self.intensity
    }

    fn apply(&self, seed: u64, frame_index: u64, image: &Image) -> Image {
        if self.intensity <= 0.0 {
            return image.clone();
        }
        let s = seed ^ SALT_NIGHT ^ frame_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Gain roll-off with an ambient floor: gain + floor + grain ≤ 1
        // and floor − grain ≥ 0, so the output range needs no clamping.
        let gain = 1.0 - 0.78 * self.intensity;
        let floor = 0.05 * self.intensity;
        let grain = 0.02 * self.intensity;
        Image::from_fn(image.height(), image.width(), |y, x| {
            image.get(y, x) * gain + floor + grain * hash01(s, x as u64, y as u64)
        })
        .expect("input image dimensions are non-zero")
    }
}

impl SceneModifier for TunnelOcclusion {
    fn name(&self) -> &'static str {
        "tunnel"
    }

    fn intensity(&self) -> f32 {
        self.intensity
    }

    fn is_occluder(&self) -> bool {
        true
    }

    fn apply(&self, seed: u64, frame_index: u64, image: &Image) -> Image {
        if self.intensity <= 0.0 {
            return image.clone();
        }
        let s = seed ^ SALT_TUNNEL;
        let (h, w) = (image.height(), image.width());
        // Ceiling band: at most the top 45 % of the frame, so the road
        // ahead (and the frame mean) survives full intensity.
        let ceiling_rows = (self.intensity * 0.45 * h as f32) as usize;
        // Two support pillars drift past the camera with the frame index.
        let pillar_w = ((0.05 * w as f32) as usize).max(1);
        let pillar_x = |p: u64| -> usize {
            let base = hash01(s, p, 0) * w as f32;
            ((base + frame_index as f32 * 1.5) as usize) % w
        };
        let (p0, p1) = (pillar_x(0), pillar_x(1));
        let pillar_rows = (0.8 * h as f32) as usize;
        Image::from_fn(h, w, |y, x| {
            let px = image.get(y, x);
            let in_ceiling = y < ceiling_rows;
            let in_pillar = y < pillar_rows
                && ((x >= p0 && x < (p0 + pillar_w).min(w))
                    || (x >= p1 && x < (p1 + pillar_w).min(w)));
            if in_ceiling || in_pillar {
                // Occluders paint with pointwise `min` against a shade
                // that never reads the input — the commuting family.
                let shade = 0.10 + 0.06 * value_noise(s, x as f32 * 0.2, y as f32 * 0.2, 1.0);
                px.min(shade)
            } else {
                px
            }
        })
        .expect("input image dimensions are non-zero")
    }
}

impl SceneModifier for TrafficObjects {
    fn name(&self) -> &'static str {
        "traffic"
    }

    fn intensity(&self) -> f32 {
        self.intensity
    }

    fn is_occluder(&self) -> bool {
        true
    }

    fn apply(&self, seed: u64, frame_index: u64, image: &Image) -> Image {
        if self.intensity <= 0.0 {
            return image.clone();
        }
        let s = seed ^ SALT_TRAFFIC;
        let (h, w) = (image.height() as f32, image.width() as f32);
        // 1–3 vehicles depending on intensity.
        let count = (self.intensity * 3.0).ceil() as u64;
        // Precompute each vehicle's screen rectangle; painting is then a
        // pointwise `min` against a shade independent of the input.
        let mut rects: Vec<(usize, usize, usize, usize, f32)> = Vec::new();
        for v in 0..count {
            // Approach cycle: proximity grows 0→1 then the vehicle
            // resets far away; phase and lane are per-vehicle draws.
            let speed = 0.008 + 0.012 * hash01(s, v, 1);
            let phase = hash01(s, v, 2);
            let prox = (frame_index as f32 * speed + phase).fract();
            // Lane position: somewhere in the middle half of the frame,
            // spreading outwards slightly as the vehicle nears.
            let lane = 0.3 + 0.4 * hash01(s, v, 3);
            let spread = 1.0 + 0.3 * prox;
            let cx = (0.5 + (lane - 0.5) * spread) * w;
            // Vehicles sit low in the frame and grow as they approach.
            let cy = (0.52 + 0.30 * prox) * h;
            let half_w = (0.025 + 0.06 * prox) * w;
            let half_h = half_w * 0.45;
            let x0 = (cx - half_w).max(0.0) as usize;
            let x1 = ((cx + half_w) as usize).min(w as usize);
            let y0 = (cy - half_h).max(0.0) as usize;
            let y1 = ((cy + half_h) as usize).min(h as usize);
            let shade = 0.14 + 0.08 * hash01(s, v, 4);
            if x0 < x1 && y0 < y1 {
                rects.push((y0, y1, x0, x1, shade));
            }
        }
        Image::from_fn(image.height(), image.width(), |y, x| {
            let mut px = image.get(y, x);
            for &(y0, y1, x0, x1, shade) in &rects {
                if y >= y0 && y < y1 && x >= x0 && x < x1 {
                    px = px.min(shade);
                }
            }
            px
        })
        .expect("input image dimensions are non-zero")
    }
}

/// An ordered composition of modifiers, applied front-to-back.
///
/// The stack itself adds no randomness: it threads the same
/// `(seed, frame_index)` through every member (each modifier salts the
/// seed by its own type). An empty stack is the identity.
///
/// # Example
///
/// ```
/// use simdrive::{FogRamp, ModifierStack, NightLighting};
/// use vision::Image;
///
/// let stack = ModifierStack::new()
///     .with(FogRamp::new(0.6))
///     .with(NightLighting::new(0.8));
/// let frame = Image::from_fn(8, 16, |y, x| ((y + x) % 7) as f32 / 7.0).unwrap();
/// let a = stack.apply(42, 0, &frame);
/// let b = stack.apply(42, 0, &frame);
/// assert_eq!(a, b); // byte-reproducible
/// ```
#[derive(Debug, Default)]
pub struct ModifierStack {
    modifiers: Vec<Box<dyn SceneModifier>>,
}

impl ModifierStack {
    /// An empty (identity) stack.
    pub fn new() -> Self {
        ModifierStack {
            modifiers: Vec::new(),
        }
    }

    /// Appends a modifier, builder-style.
    pub fn with(mut self, modifier: impl SceneModifier + 'static) -> Self {
        self.modifiers.push(Box::new(modifier));
        self
    }

    /// Appends a boxed modifier.
    pub fn push(&mut self, modifier: Box<dyn SceneModifier>) {
        self.modifiers.push(modifier);
    }

    /// Number of modifiers in the stack.
    pub fn len(&self) -> usize {
        self.modifiers.len()
    }

    /// `true` when the stack is the identity.
    pub fn is_empty(&self) -> bool {
        self.modifiers.is_empty()
    }

    /// The modifiers, in application order.
    pub fn modifiers(&self) -> &[Box<dyn SceneModifier>] {
        &self.modifiers
    }

    /// Canonical spec string (`"fog@0.60+night@0.80"`, `"clear"` when
    /// empty) — parses back via [`ModifierStack::parse`].
    pub fn spec(&self) -> String {
        if self.modifiers.is_empty() {
            return "clear".to_string();
        }
        self.modifiers
            .iter()
            .map(|m| format!("{}@{:.2}", m.name(), m.intensity()))
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Applies every modifier in order. Pure function of
    /// `(seed, frame_index, stack, image)`.
    #[must_use = "apply returns the modified frame; the input is untouched"]
    pub fn apply(&self, seed: u64, frame_index: u64, image: &Image) -> Image {
        let mut out = image.clone();
        for modifier in &self.modifiers {
            out = modifier.apply(seed, frame_index, &out);
        }
        out
    }

    /// Parses a composition spec: `+`-separated `name@intensity` parts
    /// (`fog@0.6+night@0.8`); a bare name means full intensity; the
    /// spec `clear` (or an empty string) is the identity stack.
    ///
    /// Known names: `rain`, `fog`, `glare`, `night`, `tunnel`,
    /// `traffic`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names or
    /// out-of-range intensities.
    pub fn parse(spec: &str) -> Result<ModifierStack, String> {
        let mut stack = ModifierStack::new();
        let trimmed = spec.trim();
        if trimmed.is_empty() || trimmed == "clear" {
            return Ok(stack);
        }
        for part in trimmed.split('+').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, intensity) = match part.split_once('@') {
                Some((name, value)) => {
                    let intensity: f32 = value.parse().map_err(|_| {
                        format!("modifier {part:?}: intensity {value:?} is not a number")
                    })?;
                    if !intensity.is_finite() || !(0.0..=1.0).contains(&intensity) {
                        return Err(format!(
                            "modifier {part:?}: intensity must be in [0, 1], got {intensity}"
                        ));
                    }
                    (name, intensity)
                }
                None => (part, 1.0),
            };
            stack.push(boxed_modifier(name, intensity).ok_or_else(|| {
                format!(
                    "unknown modifier {name:?} (rain|fog|glare|night|tunnel|traffic, \
                     or clear for none)"
                )
            })?);
        }
        Ok(stack)
    }
}

/// Constructs a modifier by [`SceneModifier::name`]; `None` for unknown
/// names. Intensity must already be validated to `[0, 1]`.
pub fn boxed_modifier(name: &str, intensity: f32) -> Option<Box<dyn SceneModifier>> {
    Some(match name {
        "rain" => Box::new(RainStreaks::new(intensity)),
        "fog" => Box::new(FogRamp::new(intensity)),
        "glare" => Box::new(GlareBloom::new(intensity)),
        "night" => Box::new(NightLighting::new(intensity)),
        "tunnel" => Box::new(TunnelOcclusion::new(intensity)),
        "traffic" => Box::new(TrafficObjects::new(intensity)),
        _ => return None,
    })
}

/// Every modifier name, in a stable order (for exhaustive sweeps).
pub fn modifier_names() -> [&'static str; 6] {
    ["rain", "fog", "glare", "night", "tunnel", "traffic"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame_digest;

    fn base_frame() -> Image {
        // Textured, mid-intensity frame resembling a rendered scene.
        Image::from_fn(24, 64, |y, x| {
            0.25 + 0.5 * ((y as f32 * 0.31 + x as f32 * 0.17).sin().abs())
        })
        .unwrap()
    }

    fn all_modifiers(intensity: f32) -> Vec<Box<dyn SceneModifier>> {
        modifier_names()
            .iter()
            .map(|n| boxed_modifier(n, intensity).unwrap())
            .collect()
    }

    #[test]
    fn every_modifier_is_deterministic_and_seed_sensitive() {
        let frame = base_frame();
        for m in all_modifiers(0.7) {
            let a = m.apply(1, 3, &frame);
            let b = m.apply(1, 3, &frame);
            assert_eq!(
                frame_digest(&a),
                frame_digest(&b),
                "{} not deterministic",
                m.name()
            );
            let c = m.apply(2, 3, &frame);
            assert_ne!(
                frame_digest(&a),
                frame_digest(&c),
                "{} ignores its seed",
                m.name()
            );
        }
    }

    #[test]
    fn every_modifier_is_identity_at_zero_intensity() {
        let frame = base_frame();
        for m in all_modifiers(0.0) {
            assert_eq!(m.apply(9, 4, &frame), frame, "{} at zero", m.name());
        }
    }

    #[test]
    fn every_modifier_preserves_unit_range() {
        let frame = base_frame();
        for intensity in [0.25, 1.0] {
            for m in all_modifiers(intensity) {
                let out = m.apply(5, 7, &frame);
                assert!(
                    out.tensor().min_value() >= 0.0 && out.tensor().max_value() <= 1.0,
                    "{} at {intensity} escapes [0, 1]",
                    m.name()
                );
                assert!(!out.tensor().has_non_finite());
            }
        }
    }

    #[test]
    fn every_modifier_actually_changes_the_frame() {
        let frame = base_frame();
        for m in all_modifiers(0.9) {
            assert_ne!(
                frame_digest(&m.apply(3, 2, &frame)),
                frame_digest(&frame),
                "{} at 0.9 is a no-op",
                m.name()
            );
        }
    }

    #[test]
    fn modifiers_animate_with_the_frame_index() {
        let frame = base_frame();
        // Every modifier whose physics moves (rain falls, fog drifts,
        // traffic approaches, pillars pass, grain re-rolls, glare
        // shimmers) must vary with the frame index.
        for m in all_modifiers(0.8) {
            assert_ne!(
                frame_digest(&m.apply(4, 0, &frame)),
                frame_digest(&m.apply(4, 25, &frame)),
                "{} is frozen in time",
                m.name()
            );
        }
    }

    #[test]
    fn occluders_commute_bit_exactly() {
        let frame = base_frame();
        let tunnel = TunnelOcclusion::new(0.8);
        let traffic = TrafficObjects::new(0.9);
        assert!(tunnel.is_occluder() && traffic.is_occluder());
        let ab = traffic.apply(6, 11, &tunnel.apply(6, 11, &frame));
        let ba = tunnel.apply(6, 11, &traffic.apply(6, 11, &frame));
        assert_eq!(frame_digest(&ab), frame_digest(&ba));
    }

    #[test]
    fn non_occluders_do_not_claim_commutativity() {
        let frame = base_frame();
        let fog = FogRamp::new(0.7);
        let night = NightLighting::new(0.7);
        assert!(!fog.is_occluder() && !night.is_occluder());
        let ab = night.apply(6, 1, &fog.apply(6, 1, &frame));
        let ba = fog.apply(6, 1, &night.apply(6, 1, &frame));
        // Affine blends do not commute — and we do not claim they do.
        assert_ne!(frame_digest(&ab), frame_digest(&ba));
    }

    #[test]
    fn stack_applies_in_order_and_roundtrips_specs() {
        let frame = base_frame();
        let stack = ModifierStack::parse("fog@0.5+night@0.75").unwrap();
        assert_eq!(stack.len(), 2);
        assert_eq!(stack.spec(), "fog@0.50+night@0.75");
        let manual = NightLighting::new(0.75).apply(8, 2, &FogRamp::new(0.5).apply(8, 2, &frame));
        assert_eq!(stack.apply(8, 2, &frame), manual);
        // Identity stack.
        let clear = ModifierStack::parse("clear").unwrap();
        assert!(clear.is_empty());
        assert_eq!(clear.spec(), "clear");
        assert_eq!(clear.apply(8, 2, &frame), frame);
        // Bare names mean full intensity.
        let bare = ModifierStack::parse("rain").unwrap();
        assert_eq!(bare.modifiers()[0].intensity(), 1.0);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(ModifierStack::parse("smoke@0.5").is_err());
        assert!(ModifierStack::parse("fog@1.5").is_err());
        assert!(ModifierStack::parse("fog@lots").is_err());
        assert!(ModifierStack::parse("fog@-0.1").is_err());
    }

    #[test]
    #[should_panic(expected = "intensity must be in [0, 1]")]
    fn constructors_validate_intensity() {
        let _ = FogRamp::new(1.2);
    }

    #[test]
    fn modifier_noise_is_position_independent() {
        // A modifier draws the same noise wherever it sits in a stack:
        // fog applied alone and fog applied after an occluder see the
        // same fog field (only the underlying pixels differ).
        let frame = base_frame();
        let fog = FogRamp::new(0.6);
        let tunnel = TunnelOcclusion::new(0.0); // identity occluder
        let direct = fog.apply(3, 5, &frame);
        let after_identity = fog.apply(3, 5, &tunnel.apply(3, 5, &frame));
        assert_eq!(frame_digest(&direct), frame_digest(&after_identity));
    }
}
