#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! Synthetic driving-scene data generator.
//!
//! The paper evaluates on two datasets we cannot ship: the Udacity
//! self-driving dataset (45k dash-cam frames, Mountain View) and an
//! in-house indoor RC-track set. This crate substitutes both with a
//! procedural renderer that preserves the properties the experiments
//! actually exercise:
//!
//! * **ground-plane road geometry** (curvature, lateral offset, heading
//!   error) that determines a ground-truth steering angle — so a CNN can
//!   genuinely *learn* lane following,
//! * **nuisance variance** (terrain texture, clutter objects, clouds,
//!   photometric jitter) that defeats raw-pixel autoencoders exactly as
//!   real backgrounds do,
//! * **two visually distinct worlds** ([`World::Outdoor`] ≈ DSU,
//!   [`World::Indoor`] ≈ DSI) so the cross-dataset novelty experiment is
//!   meaningful.
//!
//! Everything is deterministic given a `u64` seed.
//!
//! # Example
//!
//! ```
//! use simdrive::DatasetConfig;
//!
//! let ds = DatasetConfig::outdoor().with_len(8).generate(42);
//! assert_eq!(ds.len(), 8);
//! assert_eq!(ds.images()[0].height(), 60);
//! assert_eq!(ds.images()[0].width(), 160);
//! assert!(ds.angles().iter().all(|a| a.abs() <= 1.0));
//! ```

mod config;
mod dataset;
mod drive;
mod fault;
mod hash;
mod modifier;
mod render;
mod scene;
mod steering;
mod traffic;

pub use config::{DatasetConfig, Weather, World, DEFAULT_HEIGHT, DEFAULT_WIDTH};
pub use dataset::{DrivingDataset, Frame};
pub use drive::DriveConfig;
pub use fault::{FaultBurst, FaultConfig, FaultInjector, FaultKind, InjectedFrame};
pub use hash::frame_digest;
pub use modifier::{
    boxed_modifier, modifier_names, FogRamp, GlareBloom, ModifierStack, NightLighting, RainStreaks,
    SceneModifier, TrafficObjects, TunnelOcclusion,
};
pub use render::{region_masks, render_frame, RegionMasks, RenderedFrame};
pub use scene::SceneParams;
pub use steering::steering_angle;
pub use traffic::{standard_mix, TenantTraffic, TrafficConfig};
