//! Dataset generation, splitting and labelled frames.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vision::Image;

use crate::{render_frame, steering_angle, DatasetConfig, SceneParams, World};

/// One labelled sample: a grayscale frame, its steering label and the
/// scene it was rendered from.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Grayscale image, pixels in `[0, 1]`.
    pub image: Image,
    /// Normalized ground-truth steering angle in `[-1, 1]`.
    pub angle: f32,
    /// The scene parameters the frame was rendered from (ground truth for
    /// diagnostics; not available to the learner in the paper's setting).
    pub scene: SceneParams,
    /// Lane-marking ground-truth mask (for saliency evaluation, Fig. 2).
    pub lane_mask: Image,
}

/// A generated driving dataset: frames plus the configuration that
/// produced them.
///
/// # Example
///
/// ```
/// use simdrive::DatasetConfig;
///
/// let ds = DatasetConfig::indoor().with_len(10).generate(7);
/// let (train, test) = ds.split(0.8);
/// assert_eq!(train.len(), 8);
/// assert_eq!(test.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DrivingDataset {
    config: DatasetConfig,
    frames: Vec<Frame>,
}

impl DatasetConfig {
    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> DrivingDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = (0..self.len())
            .map(|_| {
                let scene =
                    SceneParams::sample(self.world(), &mut rng).with_weather(self.weather());
                let rendered = render_frame(
                    &scene,
                    self.height(),
                    self.width(),
                    self.supersample(),
                    self.clutter_density(),
                );
                Frame {
                    angle: steering_angle(&scene),
                    image: rendered.gray,
                    lane_mask: rendered.lane_mask,
                    scene,
                }
            })
            .collect();
        DrivingDataset {
            config: self.clone(),
            frames,
        }
    }
}

impl DrivingDataset {
    /// Builds a dataset from pre-existing frames (used by tests and by
    /// transformations such as [`DrivingDataset::with_random_angles`]).
    pub fn from_frames(config: DatasetConfig, frames: Vec<Frame>) -> Self {
        DrivingDataset { config, frames }
    }

    /// The configuration that produced this dataset.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The world the frames come from.
    pub fn world(&self) -> World {
        self.config.world()
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the dataset holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// All frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The grayscale images, in order.
    pub fn images(&self) -> Vec<&Image> {
        self.frames.iter().map(|f| &f.image).collect()
    }

    /// The steering labels, in order.
    pub fn angles(&self) -> Vec<f32> {
        self.frames.iter().map(|f| f.angle).collect()
    }

    /// Splits into `(front, back)` at `fraction` (e.g. 0.8 → 80 % / 20 %),
    /// preserving order. The paper uses an 80/20 train/test split.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `[0, 1]`.
    pub fn split(&self, fraction: f32) -> (DrivingDataset, DrivingDataset) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "split fraction must be in [0, 1]"
        );
        let k = ((self.frames.len() as f32) * fraction).round() as usize;
        let k = k.min(self.frames.len());
        (
            DrivingDataset {
                config: self.config.clone(),
                frames: self.frames[..k].to_vec(),
            },
            DrivingDataset {
                config: self.config.clone(),
                frames: self.frames[k..].to_vec(),
            },
        )
    }

    /// Draws `n` frames uniformly at random (without replacement when
    /// possible) — the paper samples 500 test images this way.
    pub fn sample(&self, n: usize, seed: u64) -> DrivingDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.frames.len()).collect();
        // Fisher–Yates prefix shuffle.
        let take = n.min(idx.len());
        for i in 0..take {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        DrivingDataset {
            config: self.config.clone(),
            frames: idx[..take]
                .iter()
                .map(|&i| self.frames[i].clone())
                .collect(),
        }
    }

    /// Returns a copy whose steering labels are replaced with uniform
    /// random angles in `[-1, 1]` — the control condition of Fig. 2
    /// (a network trained on random labels learns no road features, so
    /// its VBP masks are unstructured).
    pub fn with_random_angles(&self, seed: u64) -> DrivingDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = self
            .frames
            .iter()
            .map(|f| {
                let mut f = f.clone();
                f.angle = rng.gen_range(-1.0..1.0);
                f
            })
            .collect();
        DrivingDataset {
            config: self.config.clone(),
            frames,
        }
    }

    /// Applies a [`crate::ModifierStack`] to every frame, threading the
    /// frame's position as the modifier frame index — the seeded,
    /// byte-reproducible way to derive a domain-shifted variant of a
    /// dataset (labels and scenes are kept; only pixels change).
    pub fn modified(&self, stack: &crate::ModifierStack, seed: u64) -> DrivingDataset {
        let frames = self
            .frames
            .iter()
            .enumerate()
            .map(|(i, fr)| {
                let mut fr = fr.clone();
                fr.image = stack.apply(seed, i as u64, &fr.image);
                fr
            })
            .collect();
        DrivingDataset {
            config: self.config.clone(),
            frames,
        }
    }

    /// Applies `f` to every image, keeping labels and scenes — used to
    /// build perturbed (noisy / brightened) variants of a dataset.
    pub fn map_images(&self, mut f: impl FnMut(&Image) -> Image) -> DrivingDataset {
        let frames = self
            .frames
            .iter()
            .map(|fr| {
                let mut fr = fr.clone();
                fr.image = f(&fr.image);
                fr
            })
            .collect();
        DrivingDataset {
            config: self.config.clone(),
            frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(world: World, n: usize, seed: u64) -> DrivingDataset {
        DatasetConfig::for_world(world)
            .with_len(n)
            .with_size(24, 64)
            .with_supersample(1)
            .generate(seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny(World::Outdoor, 4, 9);
        let b = tiny(World::Outdoor, 4, 9);
        assert_eq!(a.len(), 4);
        for (fa, fb) in a.frames().iter().zip(b.frames()) {
            assert_eq!(fa.image, fb.image);
            assert_eq!(fa.angle, fb.angle);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny(World::Outdoor, 3, 1);
        let b = tiny(World::Outdoor, 3, 2);
        assert_ne!(a.frames()[0].image, b.frames()[0].image);
    }

    #[test]
    fn angles_match_scenes() {
        let ds = tiny(World::Indoor, 6, 3);
        for f in ds.frames() {
            assert_eq!(f.angle, steering_angle(&f.scene));
        }
    }

    #[test]
    fn split_preserves_all_frames() {
        let ds = tiny(World::Outdoor, 10, 4);
        let (train, test) = ds.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.frames()[0].image, ds.frames()[0].image);
        assert_eq!(test.frames()[0].image, ds.frames()[8].image);
        let (all, none) = ds.split(1.0);
        assert_eq!(all.len(), 10);
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn split_rejects_bad_fraction() {
        tiny(World::Outdoor, 2, 0).split(1.5);
    }

    #[test]
    fn sample_without_replacement() {
        let ds = tiny(World::Outdoor, 8, 5);
        let s = ds.sample(5, 11);
        assert_eq!(s.len(), 5);
        // Oversampling caps at the dataset size.
        assert_eq!(ds.sample(100, 11).len(), 8);
        // Deterministic.
        let s2 = ds.sample(5, 11);
        for (a, b) in s.frames().iter().zip(s2.frames()) {
            assert_eq!(a.image, b.image);
        }
    }

    #[test]
    fn random_angles_replace_labels_but_keep_images() {
        let ds = tiny(World::Outdoor, 6, 6);
        let rnd = ds.with_random_angles(42);
        assert_eq!(ds.len(), rnd.len());
        let mut changed = 0;
        for (a, b) in ds.frames().iter().zip(rnd.frames()) {
            assert_eq!(a.image, b.image);
            assert!((-1.0..=1.0).contains(&b.angle));
            if a.angle != b.angle {
                changed += 1;
            }
        }
        assert!(changed >= 5);
    }

    #[test]
    fn map_images_transforms_pixels_only() {
        let ds = tiny(World::Indoor, 3, 7);
        let inverted = ds.map_images(|img| img.map(|v| 1.0 - v));
        for (a, b) in ds.frames().iter().zip(inverted.frames()) {
            assert_eq!(a.angle, b.angle);
            assert!((a.image.get(10, 10) + b.image.get(10, 10) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn weather_config_flows_into_frames() {
        let clear = DatasetConfig::outdoor()
            .with_len(2)
            .with_size(24, 64)
            .with_supersample(1)
            .generate(3);
        let foggy = DatasetConfig::outdoor()
            .with_len(2)
            .with_size(24, 64)
            .with_supersample(1)
            .with_weather(crate::Weather::Fog)
            .generate(3);
        assert_eq!(foggy.frames()[0].scene.weather, crate::Weather::Fog);
        // Same geometry seeds, different appearance.
        assert_eq!(clear.frames()[0].angle, foggy.frames()[0].angle);
        assert_ne!(clear.frames()[0].image, foggy.frames()[0].image);
    }

    #[test]
    fn modified_datasets_are_reproducible_and_label_preserving() {
        let ds = tiny(World::Outdoor, 4, 9);
        let stack = crate::ModifierStack::parse("fog@0.6+night@0.5").unwrap();
        let a = ds.modified(&stack, 77);
        let b = ds.modified(&stack, 77);
        for ((fa, fb), orig) in a.frames().iter().zip(b.frames()).zip(ds.frames()) {
            assert_eq!(fa.image, fb.image, "modification must be deterministic");
            assert_eq!(fa.angle, orig.angle, "labels must survive modification");
            assert_eq!(fa.scene, orig.scene);
            assert_ne!(fa.image, orig.image, "fog+night must change pixels");
        }
        // Frames at different indices draw different modifier noise even
        // from identical source pixels (the frame index is threaded).
        let constant = DrivingDataset::from_frames(
            ds.config().clone(),
            vec![ds.frames()[0].clone(), ds.frames()[0].clone()],
        );
        let shifted = constant.modified(&stack, 77);
        assert_ne!(shifted.frames()[0].image, shifted.frames()[1].image);
    }

    #[test]
    fn steering_labels_have_variance() {
        // If all labels were identical the CNN could not learn steering.
        let ds = tiny(World::Indoor, 40, 8);
        let angles = ds.angles();
        let mean = angles.iter().sum::<f32>() / angles.len() as f32;
        let var: f32 =
            angles.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / angles.len() as f32;
        assert!(var > 1e-3, "steering labels nearly constant: var {var}");
    }
}
