//! Dataset and world configuration.

/// Default image height used throughout the paper (60×160 grayscale).
pub const DEFAULT_HEIGHT: usize = 60;
/// Default image width used throughout the paper (60×160 grayscale).
pub const DEFAULT_WIDTH: usize = 160;

/// Which synthetic driving world a frame comes from.
///
/// The two worlds play the roles of the paper's datasets:
///
/// * [`World::Outdoor`] — DSU stand-in: varied terrain texture, clouds,
///   roadside clutter, wide asphalt road with dashed centre line, strong
///   photometric jitter.
/// * [`World::Indoor`] — DSI stand-in: uniform floor, tape-marked narrow
///   track, walls, sparse box-shaped obstacles, mild lighting variation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum World {
    /// Outdoor highway-like world (stand-in for the Udacity dataset, DSU).
    Outdoor,
    /// Indoor RC-track world (stand-in for the in-house dataset, DSI).
    Indoor,
}

impl World {
    /// Short lowercase name (`"outdoor"` / `"indoor"`), used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            World::Outdoor => "outdoor",
            World::Indoor => "indoor",
        }
    }

    /// Camera height above the ground plane, metres.
    pub fn camera_height(&self) -> f32 {
        match self {
            World::Outdoor => 1.4,
            World::Indoor => 0.12,
        }
    }

    /// Half-width of the drivable road surface, metres.
    pub fn road_half_width(&self) -> f32 {
        match self {
            World::Outdoor => 3.4,
            World::Indoor => 0.35,
        }
    }

    /// Maximum |curvature| sampled for scenes, 1/metres.
    pub fn max_curvature(&self) -> f32 {
        match self {
            World::Outdoor => 0.012,
            World::Indoor => 0.45,
        }
    }

    /// Look-ahead distance used by the steering controller, metres.
    pub fn lookahead(&self) -> f32 {
        match self {
            World::Outdoor => 25.0,
            World::Indoor => 1.2,
        }
    }
}

impl std::fmt::Display for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Weather conditions applied to outdoor scenes (extension beyond the
/// paper, exercising its future-work direction of "altered, yet similar
/// images of a seen environment"). Indoor scenes ignore weather.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Weather {
    /// Clear conditions (the paper's setting).
    #[default]
    Clear,
    /// Dense fog: strong depth haze, washed-out contrast.
    Fog,
    /// Rain: darker exposure, streak overlay, wet-road sheen.
    Rain,
}

impl Weather {
    /// Short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Weather::Clear => "clear",
            Weather::Fog => "fog",
            Weather::Rain => "rain",
        }
    }
}

impl std::fmt::Display for Weather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder-style configuration for generating a [`crate::DrivingDataset`].
///
/// # Example
///
/// ```
/// use simdrive::{DatasetConfig, World};
///
/// let cfg = DatasetConfig::indoor().with_len(100).with_size(48, 128);
/// assert_eq!(cfg.world(), World::Indoor);
/// assert_eq!(cfg.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    world: World,
    len: usize,
    height: usize,
    width: usize,
    supersample: usize,
    clutter_density: f32,
    weather: Weather,
}

impl DatasetConfig {
    /// Configuration for the outdoor (DSU stand-in) world with the paper's
    /// 60×160 image size.
    pub fn outdoor() -> Self {
        DatasetConfig {
            world: World::Outdoor,
            len: 1000,
            height: DEFAULT_HEIGHT,
            width: DEFAULT_WIDTH,
            supersample: 2,
            clutter_density: 1.0,
            weather: Weather::Clear,
        }
    }

    /// Configuration for the indoor (DSI stand-in) world with the paper's
    /// 60×160 image size.
    pub fn indoor() -> Self {
        DatasetConfig {
            world: World::Indoor,
            len: 1000,
            height: DEFAULT_HEIGHT,
            width: DEFAULT_WIDTH,
            supersample: 2,
            clutter_density: 1.0,
            weather: Weather::Clear,
        }
    }

    /// Configuration for an arbitrary world.
    pub fn for_world(world: World) -> Self {
        match world {
            World::Outdoor => Self::outdoor(),
            World::Indoor => Self::indoor(),
        }
    }

    /// Sets the number of frames to generate.
    pub fn with_len(mut self, len: usize) -> Self {
        self.len = len;
        self
    }

    /// Sets the output image size.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn with_size(mut self, height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "image dimensions must be non-zero");
        self.height = height;
        self.width = width;
        self
    }

    /// Sets the supersampling factor (render at `factor ×` resolution,
    /// then box-downsample). 1 disables antialiasing.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is zero.
    pub fn with_supersample(mut self, factor: usize) -> Self {
        assert!(factor > 0, "supersample factor must be non-zero");
        self.supersample = factor;
        self
    }

    /// Scales the amount of roadside clutter (0.0 = bare road,
    /// 1.0 = default density).
    ///
    /// # Panics
    ///
    /// Panics when `density` is negative or not finite.
    pub fn with_clutter_density(mut self, density: f32) -> Self {
        assert!(
            density.is_finite() && density >= 0.0,
            "clutter density must be finite and non-negative"
        );
        self.clutter_density = density;
        self
    }

    /// The configured world.
    pub fn world(&self) -> World {
        self.world
    }

    /// The configured number of frames.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when configured to generate zero frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configured image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The configured supersampling factor.
    pub fn supersample(&self) -> usize {
        self.supersample
    }

    /// The configured clutter density multiplier.
    pub fn clutter_density(&self) -> f32 {
        self.clutter_density
    }

    /// Sets the weather condition (outdoor scenes only; see [`Weather`]).
    pub fn with_weather(mut self, weather: Weather) -> Self {
        self.weather = weather;
        self
    }

    /// The configured weather condition.
    pub fn weather(&self) -> Weather {
        self.weather
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let cfg = DatasetConfig::outdoor()
            .with_len(5)
            .with_size(30, 80)
            .with_supersample(1)
            .with_clutter_density(0.5);
        assert_eq!(cfg.world(), World::Outdoor);
        assert_eq!(cfg.len(), 5);
        assert_eq!((cfg.height(), cfg.width()), (30, 80));
        assert_eq!(cfg.supersample(), 1);
        assert_eq!(cfg.clutter_density(), 0.5);
        assert!(!cfg.is_empty());
        assert!(DatasetConfig::indoor().with_len(0).is_empty());
    }

    #[test]
    fn for_world_matches_direct_constructors() {
        assert_eq!(
            DatasetConfig::for_world(World::Outdoor),
            DatasetConfig::outdoor()
        );
        assert_eq!(
            DatasetConfig::for_world(World::Indoor),
            DatasetConfig::indoor()
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_panics() {
        let _ = DatasetConfig::outdoor().with_size(0, 10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_supersample_panics() {
        let _ = DatasetConfig::outdoor().with_supersample(0);
    }

    #[test]
    fn weather_builder_and_names() {
        let cfg = DatasetConfig::outdoor().with_weather(Weather::Fog);
        assert_eq!(cfg.weather(), Weather::Fog);
        assert_eq!(DatasetConfig::outdoor().weather(), Weather::Clear);
        assert_eq!(Weather::Rain.to_string(), "rain");
        assert_eq!(Weather::default(), Weather::Clear);
    }

    #[test]
    fn world_names() {
        assert_eq!(World::Outdoor.to_string(), "outdoor");
        assert_eq!(World::Indoor.name(), "indoor");
    }

    #[test]
    fn worlds_have_distinct_geometry() {
        assert!(World::Outdoor.camera_height() > World::Indoor.camera_height());
        assert!(World::Outdoor.road_half_width() > World::Indoor.road_half_width());
        assert!(World::Indoor.max_curvature() > World::Outdoor.max_curvature());
    }
}
