//! Seeded multi-tenant traffic generation.
//!
//! A stream server guards *many* camera feeds at once, and the
//! interesting failure modes (one hostile tenant, skewed arrival rates,
//! correlated weather) only show up when the feeds differ. This module
//! packages per-tenant traffic as a pure function of a master seed and
//! the tenant's index: each tenant gets its own temporally-coherent
//! drive ([`crate::DriveConfig`]), its own scenario stack
//! ([`crate::ModifierStack`]) and its own fault schedule
//! ([`crate::FaultInjector`]), all derived from decorrelated sub-seeds.
//!
//! Traffic is **pre-materialized**: [`TrafficConfig::generate`] renders
//! the full arrival sequence up front, so what a tenant offers the
//! server is independent of how the server schedules other tenants —
//! the property the serve layer's determinism and isolation proofs rest
//! on.
//!
//! ```
//! use simdrive::{TrafficConfig, World};
//!
//! let mut traffic = TrafficConfig::new("cam-0", World::Outdoor)
//!     .with_len(6)
//!     .with_size(40, 80)
//!     .generate(7, 0)
//!     .unwrap();
//! let first = traffic.next_round();
//! assert_eq!(first.len(), 1); // one arrival per round by default
//! ```

use vision::Image;

use crate::{
    DriveConfig, FaultBurst, FaultConfig, FaultInjector, FaultKind, InjectedFrame, ModifierStack,
    World,
};

/// Salt separating the drive seed from the master seed.
const SALT_DRIVE: u64 = 0x7A01;
/// Salt separating the scenario-modifier seed.
const SALT_SCENARIO: u64 = 0x7A02;
/// Salt separating the fault-schedule seed.
const SALT_FAULT: u64 = 0x7A03;

/// SplitMix64-style avalanche, used to derive decorrelated per-tenant
/// sub-seeds from `(master_seed, tenant_index, salt)`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn sub_seed(master_seed: u64, tenant_index: usize, salt: u64) -> u64 {
    mix(master_seed ^ mix((tenant_index as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ salt))
}

/// Recipe for one tenant's arrival stream: world, length, scenario
/// stack, fault schedule and arrival cadence. Turn it into frames with
/// [`TrafficConfig::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Tenant name (also the per-tenant log stem on the serve CLI).
    pub name: String,
    /// World the tenant's camera drives through.
    pub world: World,
    /// Number of frames the tenant will offer in total.
    pub len: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Renderer supersampling factor.
    pub supersample: usize,
    /// Scenario-modifier spec (`"fog@0.6+night@0.8"`, `"clear"`),
    /// parsed by [`ModifierStack::parse`].
    pub scenario: String,
    /// Per-frame probability that a random fault burst starts.
    pub fault_rate: f32,
    /// Maximum random fault-burst length.
    pub fault_burst_len: usize,
    /// Scripted fault bursts, on top of the random schedule.
    pub fault_bursts: Vec<FaultBurst>,
    /// Frames offered per scheduling round (≥ 1). Tenants with higher
    /// cadence model faster cameras and create queue pressure.
    pub arrivals_per_round: usize,
}

impl TrafficConfig {
    /// A clean, fault-free tenant at one arrival per round with the
    /// paper's default frame geometry.
    pub fn new(name: impl Into<String>, world: World) -> Self {
        TrafficConfig {
            name: name.into(),
            world,
            len: 100,
            height: crate::DEFAULT_HEIGHT,
            width: crate::DEFAULT_WIDTH,
            supersample: 2,
            scenario: "clear".to_string(),
            fault_rate: 0.0,
            fault_burst_len: 4,
            fault_bursts: Vec::new(),
            arrivals_per_round: 1,
        }
    }

    /// Sets the total frame count.
    pub fn with_len(mut self, len: usize) -> Self {
        self.len = len;
        self
    }

    /// Sets the frame geometry.
    pub fn with_size(mut self, height: usize, width: usize) -> Self {
        self.height = height;
        self.width = width;
        self
    }

    /// Sets the renderer supersampling factor.
    pub fn with_supersample(mut self, factor: usize) -> Self {
        self.supersample = factor;
        self
    }

    /// Sets the scenario-modifier spec.
    pub fn with_scenario(mut self, spec: impl Into<String>) -> Self {
        self.scenario = spec.into();
        self
    }

    /// Enables random fault bursts at `rate` with bursts up to
    /// `max_burst_len` frames.
    pub fn with_fault_rate(mut self, rate: f32, max_burst_len: usize) -> Self {
        self.fault_rate = rate;
        self.fault_burst_len = max_burst_len;
        self
    }

    /// Adds one scripted fault burst.
    pub fn with_fault_burst(mut self, burst: FaultBurst) -> Self {
        self.fault_bursts.push(burst);
        self
    }

    /// Sets the arrival cadence (frames offered per round).
    pub fn with_arrivals_per_round(mut self, arrivals: usize) -> Self {
        self.arrivals_per_round = arrivals;
        self
    }

    /// Materializes the tenant's full arrival sequence. Deterministic in
    /// `(config, master_seed, tenant_index)` and independent of every
    /// other tenant: drive, scenario and fault sub-seeds are derived by
    /// hashing the master seed with the tenant index under distinct
    /// salts.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the scenario spec does not
    /// parse, or when `len`, frame geometry, `supersample` or
    /// `arrivals_per_round` are zero.
    pub fn generate(&self, master_seed: u64, tenant_index: usize) -> Result<TenantTraffic, String> {
        if self.len == 0 {
            return Err(format!(
                "tenant {:?}: traffic length must be > 0",
                self.name
            ));
        }
        if self.height == 0 || self.width == 0 {
            return Err(format!(
                "tenant {:?}: frame dimensions must be non-zero",
                self.name
            ));
        }
        if self.supersample == 0 {
            return Err(format!("tenant {:?}: supersample must be > 0", self.name));
        }
        if self.arrivals_per_round == 0 {
            return Err(format!(
                "tenant {:?}: arrivals_per_round must be > 0",
                self.name
            ));
        }
        let stack = ModifierStack::parse(&self.scenario)
            .map_err(|e| format!("tenant {:?}: {e}", self.name))?;

        let drive_seed = sub_seed(master_seed, tenant_index, SALT_DRIVE);
        let scenario_seed = sub_seed(master_seed, tenant_index, SALT_SCENARIO);
        let fault_seed = sub_seed(master_seed, tenant_index, SALT_FAULT);

        let drive = DriveConfig::new(self.world)
            .with_len(self.len)
            .with_size(self.height, self.width)
            .with_supersample(self.supersample)
            .simulate(drive_seed);

        let mut fault_config = FaultConfig::new(fault_seed);
        fault_config.rate = self.fault_rate.clamp(0.0, 1.0);
        fault_config.max_burst_len = self.fault_burst_len.max(1);
        fault_config.bursts = self.fault_bursts.clone();
        let mut injector = FaultInjector::new(fault_config);

        let mut frames = Vec::with_capacity(self.len);
        for (i, frame) in drive.frames().iter().enumerate() {
            let staged = if stack.is_empty() {
                frame.image.clone()
            } else {
                stack.apply(scenario_seed, i as u64, &frame.image)
            };
            frames.push(injector.apply(i, &staged));
        }

        Ok(TenantTraffic {
            name: self.name.clone(),
            frames,
            arrivals_per_round: self.arrivals_per_round,
            cursor: 0,
        })
    }
}

/// A tenant's fully-materialized arrival stream, consumed round by
/// round via [`TenantTraffic::next_round`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTraffic {
    name: String,
    frames: Vec<InjectedFrame>,
    arrivals_per_round: usize,
    cursor: usize,
}

impl TenantTraffic {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total frames in the stream.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the stream holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames not yet handed out by [`TenantTraffic::next_round`].
    pub fn remaining(&self) -> usize {
        self.frames.len() - self.cursor
    }

    /// The full arrival sequence, in frame order.
    pub fn frames(&self) -> &[InjectedFrame] {
        &self.frames
    }

    /// The fault injected into frame `index`, if any.
    pub fn fault_at(&self, index: usize) -> Option<FaultKind> {
        self.frames.get(index).and_then(|f| f.fault)
    }

    /// The delivered image of frame `index` (`None` when the frame was
    /// dropped by a fault, or the index is out of range).
    pub fn image_at(&self, index: usize) -> Option<&Image> {
        self.frames.get(index).and_then(|f| f.image.as_ref())
    }

    /// This round's arrivals (up to `arrivals_per_round` frames),
    /// advancing the cursor. Empty once the stream is exhausted.
    pub fn next_round(&mut self) -> &[InjectedFrame] {
        let start = self.cursor;
        let end = (start + self.arrivals_per_round).min(self.frames.len());
        self.cursor = end;
        &self.frames[start..end]
    }

    /// Rewinds the cursor so the stream can be replayed.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// A standard heterogeneous fleet for smoke tests and benchmarks:
/// `count` tenants cycling through worlds, scenario stacks and arrival
/// cadences, with tenant `hostile` (when set) running a 100 % fault
/// schedule — every one of its frames is corrupted. Tenant traffic
/// stays a pure function of `(master seed, index)`; the mix only varies
/// the recipes.
pub fn standard_mix(count: usize, len: usize, hostile: Option<usize>) -> Vec<TrafficConfig> {
    const SCENARIOS: [&str; 4] = ["clear", "fog@0.60", "night@0.70", "rain@0.50+glare@0.40"];
    (0..count)
        .map(|i| {
            let world = if i % 2 == 0 {
                World::Outdoor
            } else {
                World::Indoor
            };
            let mut config = TrafficConfig::new(format!("tenant-{i}"), world)
                .with_len(len)
                .with_scenario(SCENARIOS[i % SCENARIOS.len()])
                .with_arrivals_per_round(1 + (i % 3));
            if hostile == Some(i) {
                // A camera in total failure: random bursts start every
                // frame, so no frame arrives clean.
                config = config.with_fault_rate(1.0, 4);
            } else if i % 3 == 2 {
                // Mild background fault pressure on every third tenant.
                config = config.with_fault_rate(0.05, 3);
            }
            config
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(name: &str) -> TrafficConfig {
        TrafficConfig::new(name, World::Outdoor)
            .with_len(5)
            .with_size(40, 80)
            .with_supersample(1)
    }

    #[test]
    fn traffic_is_deterministic_in_seed_and_index() {
        let a = quick("t").generate(7, 3).unwrap();
        let b = quick("t").generate(7, 3).unwrap();
        assert_eq!(a, b);
        let c = quick("t").generate(8, 3).unwrap();
        assert_ne!(a, c, "master seed must matter");
        let d = quick("t").generate(7, 4).unwrap();
        assert_ne!(a, d, "tenant index must matter");
    }

    #[test]
    fn traffic_is_independent_of_other_tenants() {
        // The same (seed, index) recipe yields the same frames whether
        // generated alone or as part of a fleet — generation has no
        // cross-tenant state at all.
        let solo = quick("t").generate(9, 2).unwrap();
        let fleet: Vec<_> = (0..4).map(|i| quick("t").generate(9, i).unwrap()).collect();
        assert_eq!(solo, fleet[2]);
    }

    #[test]
    fn rounds_respect_cadence_and_exhaust() {
        let mut traffic = quick("t")
            .with_arrivals_per_round(2)
            .generate(1, 0)
            .unwrap();
        assert_eq!(traffic.len(), 5);
        assert_eq!(traffic.next_round().len(), 2);
        assert_eq!(traffic.next_round().len(), 2);
        assert_eq!(traffic.next_round().len(), 1);
        assert_eq!(traffic.next_round().len(), 0);
        assert_eq!(traffic.remaining(), 0);
        traffic.reset();
        assert_eq!(traffic.remaining(), 5);
    }

    #[test]
    fn hostile_tenant_faults_every_frame() {
        let configs = standard_mix(4, 6, Some(1));
        let hostile = configs[1].generate(11, 1).unwrap();
        for i in 0..hostile.len() {
            assert!(hostile.fault_at(i).is_some(), "frame {i} arrived clean");
        }
        // And the clean tenant is untouched.
        let clean = configs[0].generate(11, 0).unwrap();
        assert!((0..clean.len()).all(|i| clean.fault_at(i).is_none()));
    }

    #[test]
    fn scenario_and_bursts_apply() {
        let foggy = quick("t").with_scenario("fog@0.8").generate(3, 0).unwrap();
        let clear = quick("t").generate(3, 0).unwrap();
        assert_ne!(foggy.frames()[0].image, clear.frames()[0].image);

        let burst = quick("t")
            .with_fault_burst(FaultBurst::new(FaultKind::Drop, 1, 2))
            .generate(3, 0)
            .unwrap();
        assert!(burst.image_at(0).is_some());
        assert!(burst.image_at(1).is_none());
        assert!(burst.image_at(2).is_none());
        assert!(burst.image_at(3).is_some());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(quick("t").with_scenario("blizzard").generate(1, 0).is_err());
        assert!(quick("t").with_len(0).generate(1, 0).is_err());
        assert!(quick("t")
            .with_arrivals_per_round(0)
            .generate(1, 0)
            .is_err());
    }
}
