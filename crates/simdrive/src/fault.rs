//! Deterministic sensor-fault injection for frame streams.
//!
//! A deployed safety monitor (the paper's motivating setting) sees more
//! than out-of-distribution scenery: cameras drop frames, freeze on a
//! stale buffer, deliver NaN-poisoned or blown-out exposures, and
//! truncate transfers mid-frame. [`FaultInjector`] wraps a frame stream
//! and injects exactly those faults on a schedule that is a pure function
//! of `(seed, frame index)` — two runs with the same seed and
//! configuration corrupt the same frames in the same way, so robustness
//! tests and fault-injection CI jobs are byte-reproducible.
//!
//! Faults come from two sources, both deterministic:
//!
//! * **explicit bursts** ([`FaultBurst`]): `kind` applied to frames
//!   `[start, start + len)`, for scripted scenarios;
//! * **seeded random bursts**: each frame index starts a burst with
//!   probability `rate`, with kind and length drawn from
//!   [`crate::hash::hash01`]-style hashes of the index.
//!
//! Explicit bursts take precedence over random ones on overlap.

use vision::Image;

use crate::hash::hash01;

/// The classes of sensor fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The frame never arrives (sensor drop / bus timeout).
    Drop,
    /// The sensor re-delivers its previous frame (stale DMA buffer).
    Freeze,
    /// A contiguous block of pixels reads NaN (corrupt transfer).
    NanBurst,
    /// Exposure blows out: pixels scaled far beyond the unit range.
    BrightnessSpike,
    /// Only a prefix of the rows arrives (interrupted transfer), so the
    /// delivered image has the wrong height.
    Truncate,
}

impl FaultKind {
    /// Stable lower-case name, used in CLI specs and alarm logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Freeze => "freeze",
            FaultKind::NanBurst => "nan",
            FaultKind::BrightnessSpike => "spike",
            FaultKind::Truncate => "truncate",
        }
    }

    /// Parses a name produced by [`FaultKind::name`].
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Every fault class, in a stable order.
    pub fn all() -> [FaultKind; 5] {
        [
            FaultKind::Drop,
            FaultKind::Freeze,
            FaultKind::NanBurst,
            FaultKind::BrightnessSpike,
            FaultKind::Truncate,
        ]
    }
}

/// One scripted fault window: `kind` hits frames `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBurst {
    /// The fault class to inject.
    pub kind: FaultKind,
    /// First affected frame index.
    pub start: usize,
    /// Number of consecutive affected frames.
    pub len: usize,
}

impl FaultBurst {
    /// A burst of `kind` covering frames `[start, start + len)`.
    pub fn new(kind: FaultKind, start: usize, len: usize) -> Self {
        FaultBurst { kind, start, len }
    }

    fn covers(&self, index: usize) -> bool {
        index >= self.start && index < self.start.saturating_add(self.len)
    }
}

/// Configuration for a [`FaultInjector`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the random schedule (and for corruption patterns such as
    /// NaN block placement).
    pub seed: u64,
    /// Per-frame probability that a random burst starts, in `[0, 1]`.
    /// Zero (the default) disables random faults entirely.
    pub rate: f32,
    /// Maximum length of a random burst (lengths are drawn uniformly in
    /// `1..=max_burst_len`).
    pub max_burst_len: usize,
    /// Scripted bursts, applied on top of (and with precedence over) the
    /// random schedule.
    pub bursts: Vec<FaultBurst>,
}

impl FaultConfig {
    /// A schedule with no random faults; add scripted bursts with
    /// [`FaultConfig::with_burst`].
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            rate: 0.0,
            max_burst_len: 4,
            bursts: Vec::new(),
        }
    }

    /// Adds one scripted burst.
    pub fn with_burst(mut self, burst: FaultBurst) -> Self {
        self.bursts.push(burst);
        self
    }

    /// Enables seeded random bursts at `rate` starts per frame.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not a probability or `max_burst_len` is zero.
    pub fn with_random(mut self, rate: f32, max_burst_len: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be in [0, 1], got {rate}"
        );
        assert!(max_burst_len > 0, "max_burst_len must be non-zero");
        self.rate = rate;
        self.max_burst_len = max_burst_len;
        self
    }
}

/// What the injector delivered for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFrame {
    /// The delivered image; `None` when the frame was dropped (either a
    /// [`FaultKind::Drop`], or a [`FaultKind::Freeze`] with no previous
    /// frame to re-deliver).
    pub image: Option<Image>,
    /// The fault applied to this frame, if any.
    pub fault: Option<FaultKind>,
}

/// A deterministic, seeded fault injector over a frame stream.
///
/// Feed frames in order through [`FaultInjector::apply`]; the injector
/// decides per index whether (and how) to corrupt them. The only state is
/// the last cleanly delivered frame (needed to re-deliver it during a
/// freeze), so the output stream is a pure function of the input stream,
/// the configuration, and the seed.
///
/// # Example
///
/// ```
/// use simdrive::{FaultBurst, FaultConfig, FaultInjector, FaultKind};
/// use vision::Image;
///
/// let config = FaultConfig::new(7).with_burst(FaultBurst::new(FaultKind::Drop, 1, 1));
/// let mut injector = FaultInjector::new(config);
/// let frame = Image::filled(4, 4, 0.5).unwrap();
/// assert!(injector.apply(0, &frame).image.is_some());
/// assert!(injector.apply(1, &frame).image.is_none()); // dropped
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    last_delivered: Option<Image>,
}

/// Hash salts separating the independent random draws of the schedule.
const SALT_START: u64 = 0xFA01;
const SALT_KIND: u64 = 0xFA02;
const SALT_LEN: u64 = 0xFA03;
const SALT_BLOCK: u64 = 0xFA04;

impl FaultInjector {
    /// An injector running `config`'s schedule.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            config,
            last_delivered: None,
        }
    }

    /// The fault (if any) scheduled for frame `index` — a pure function
    /// of the configuration, usable to inspect a schedule without frames.
    pub fn fault_at(&self, index: usize) -> Option<FaultKind> {
        // Scripted bursts win; the first covering burst applies.
        if let Some(burst) = self.config.bursts.iter().find(|b| b.covers(index)) {
            return Some(burst.kind);
        }
        if self.config.rate <= 0.0 {
            return None;
        }
        // A random burst starting at s covers index when
        // index − len(s) < s ≤ index; scan the window of possible starts
        // (most recent start wins, matching "a new fault preempts").
        let earliest = index.saturating_sub(self.config.max_burst_len.saturating_sub(1));
        for start in (earliest..=index).rev() {
            if hash01(self.config.seed ^ SALT_START, start as u64, 0) < self.config.rate {
                let len = 1
                    + (hash01(self.config.seed ^ SALT_LEN, start as u64, 0)
                        * self.config.max_burst_len as f32) as usize;
                let len = len.min(self.config.max_burst_len);
                if index < start + len {
                    let kinds = FaultKind::all();
                    let pick = (hash01(self.config.seed ^ SALT_KIND, start as u64, 0)
                        * kinds.len() as f32) as usize;
                    return Some(kinds[pick.min(kinds.len() - 1)]);
                }
            }
        }
        None
    }

    /// Passes frame `index` through the schedule, corrupting it when a
    /// fault is scheduled. Cleanly delivered frames are remembered so a
    /// later freeze can re-deliver them.
    pub fn apply(&mut self, index: usize, frame: &Image) -> InjectedFrame {
        let fault = self.fault_at(index);
        let image = match fault {
            None => {
                self.last_delivered = Some(frame.clone());
                Some(frame.clone())
            }
            Some(FaultKind::Drop) => None,
            Some(FaultKind::Freeze) => self.last_delivered.clone(),
            Some(FaultKind::NanBurst) => Some(self.poison_nan(index, frame)),
            Some(FaultKind::BrightnessSpike) => Some(frame.map(|v| v * 4.0 + 0.5)),
            Some(FaultKind::Truncate) => Some(Self::truncate(frame)),
        };
        InjectedFrame { image, fault }
    }

    /// Overwrites a deterministic block (roughly a ninth of the frame)
    /// with NaN, positioned by hashing the frame index.
    fn poison_nan(&self, index: usize, frame: &Image) -> Image {
        let (h, w) = (frame.height(), frame.width());
        let bh = (h / 3).max(1);
        let bw = (w / 3).max(1);
        let y0 =
            (hash01(self.config.seed ^ SALT_BLOCK, index as u64, 0) * (h - bh + 1) as f32) as usize;
        let x0 =
            (hash01(self.config.seed ^ SALT_BLOCK, index as u64, 1) * (w - bw + 1) as f32) as usize;
        let mut out = frame.clone();
        for y in y0..(y0 + bh).min(h) {
            for x in x0..(x0 + bw).min(w) {
                out.put(y, x, f32::NAN);
            }
        }
        out
    }

    /// Keeps only the first ~40 % of rows (at least one), modelling an
    /// interrupted transfer: the delivered image has the wrong height.
    fn truncate(frame: &Image) -> Image {
        let rows = (frame.height() * 2 / 5).max(1);
        Image::from_fn(rows, frame.width(), |y, x| frame.get(y, x))
            .expect("non-zero truncated dimensions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(v: f32) -> Image {
        Image::filled(9, 12, v).unwrap()
    }

    #[test]
    fn names_roundtrip() {
        for kind in FaultKind::all() {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::from_name("warp"), None);
    }

    #[test]
    fn scripted_bursts_cover_exact_windows() {
        let injector = FaultInjector::new(FaultConfig::new(0).with_burst(FaultBurst::new(
            FaultKind::NanBurst,
            3,
            2,
        )));
        assert_eq!(injector.fault_at(2), None);
        assert_eq!(injector.fault_at(3), Some(FaultKind::NanBurst));
        assert_eq!(injector.fault_at(4), Some(FaultKind::NanBurst));
        assert_eq!(injector.fault_at(5), None);
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let cfg = |seed| FaultConfig::new(seed).with_random(0.3, 4);
        let a: Vec<_> = {
            let inj = FaultInjector::new(cfg(5));
            (0..200).map(|i| inj.fault_at(i)).collect()
        };
        let b: Vec<_> = {
            let inj = FaultInjector::new(cfg(5));
            (0..200).map(|i| inj.fault_at(i)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<_> = {
            let inj = FaultInjector::new(cfg(6));
            (0..200).map(|i| inj.fault_at(i)).collect()
        };
        assert_ne!(a, c);
        // At 30 % start rate over 200 frames every class should appear.
        let hit: std::collections::HashSet<_> = a.iter().flatten().collect();
        assert!(
            hit.len() >= 4,
            "only {} fault classes drawn: {hit:?}",
            hit.len()
        );
    }

    #[test]
    fn drop_and_freeze_semantics() {
        let config = FaultConfig::new(1)
            .with_burst(FaultBurst::new(FaultKind::Freeze, 0, 1)) // freeze before any delivery
            .with_burst(FaultBurst::new(FaultKind::Drop, 2, 1))
            .with_burst(FaultBurst::new(FaultKind::Freeze, 3, 2));
        let mut injector = FaultInjector::new(config);
        // Freeze with no prior frame degenerates to a drop.
        assert_eq!(injector.apply(0, &frame(0.1)).image, None);
        // Clean delivery is remembered.
        let delivered = injector.apply(1, &frame(0.2));
        assert_eq!(delivered.fault, None);
        assert_eq!(delivered.image.as_ref().unwrap().get(0, 0), 0.2);
        // Drop delivers nothing but keeps the freeze buffer.
        assert_eq!(injector.apply(2, &frame(0.3)).image, None);
        // Both frozen frames re-deliver the last clean frame, bit-exact.
        for i in 3..5 {
            let frozen = injector.apply(i, &frame(0.9));
            assert_eq!(frozen.fault, Some(FaultKind::Freeze));
            assert_eq!(frozen.image.as_ref().unwrap().get(0, 0), 0.2, "frame {i}");
        }
    }

    #[test]
    fn nan_spike_and_truncate_corrupt_as_advertised() {
        let config = FaultConfig::new(2)
            .with_burst(FaultBurst::new(FaultKind::NanBurst, 0, 1))
            .with_burst(FaultBurst::new(FaultKind::BrightnessSpike, 1, 1))
            .with_burst(FaultBurst::new(FaultKind::Truncate, 2, 1));
        let mut injector = FaultInjector::new(config);
        let clean = frame(0.4);

        let nan = injector.apply(0, &clean).image.unwrap();
        assert!(nan.tensor().has_non_finite());
        assert_eq!((nan.height(), nan.width()), (9, 12));

        let spiked = injector.apply(1, &clean).image.unwrap();
        assert!(spiked.tensor().max_value() > 1.5);
        assert!(!spiked.tensor().has_non_finite());

        let cut = injector.apply(2, &clean).image.unwrap();
        assert!(cut.height() < clean.height());
        assert_eq!(cut.width(), clean.width());
    }

    #[test]
    fn clean_frames_pass_through_bit_exact() {
        let mut injector = FaultInjector::new(FaultConfig::new(3));
        let clean = frame(0.7);
        let out = injector.apply(0, &clean);
        assert_eq!(out.fault, None);
        assert_eq!(out.image.unwrap(), clean);
    }
}
