//! Deterministic per-pixel hash noise.
//!
//! Terrain texture, road speckle and cloud placement need noise that is a
//! pure function of `(seed, coordinates)` so rendering the same frame twice
//! yields identical pixels, independent of evaluation order.

/// SplitMix64-style avalanche of a 64-bit state.
fn avalanche(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a seed and two coordinates into a uniform value in `[0, 1)`.
pub fn hash01(seed: u64, a: u64, b: u64) -> f32 {
    let h = avalanche(seed ^ avalanche(a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.rotate_left(32)));
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Hashes into a symmetric value in `[-1, 1)`.
pub fn hash_sym(seed: u64, a: u64, b: u64) -> f32 {
    2.0 * hash01(seed, a, b) - 1.0
}

/// Order-sensitive 64-bit digest of an image's exact pixel bits.
///
/// Two images digest equal iff they are bit-identical (same dimensions,
/// same `f32` bit patterns — NaNs included), which makes the digest
/// suitable for stuck-frame detection in a streaming monitor: a camera
/// that keeps delivering the same buffer produces a run of equal digests,
/// while even a one-ulp pixel change breaks the run.
pub fn frame_digest(image: &vision::Image) -> u64 {
    let mut state = avalanche(
        (image.height() as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ (image.width() as u64),
    );
    for &px in image.as_slice() {
        state = avalanche(state ^ px.to_bits() as u64);
    }
    state
}

/// Smooth value noise in `[0, 1]`: bilinear interpolation of lattice hashes
/// at integer coordinates, with `scale` lattice cells per unit.
pub fn value_noise(seed: u64, x: f32, y: f32, scale: f32) -> f32 {
    let fx = x * scale;
    let fy = y * scale;
    let x0 = fx.floor();
    let y0 = fy.floor();
    let tx = fx - x0;
    let ty = fy - y0;
    // Smoothstep for C1 continuity.
    let sx = tx * tx * (3.0 - 2.0 * tx);
    let sy = ty * ty * (3.0 - 2.0 * ty);
    let xi = x0 as i64 as u64;
    let yi = y0 as i64 as u64;
    let v00 = hash01(seed, xi, yi);
    let v10 = hash01(seed, xi.wrapping_add(1), yi);
    let v01 = hash01(seed, xi, yi.wrapping_add(1));
    let v11 = hash01(seed, xi.wrapping_add(1), yi.wrapping_add(1));
    let top = v00 + sx * (v10 - v00);
    let bot = v01 + sx * (v11 - v01);
    top + sy * (bot - top)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        assert_eq!(hash01(1, 2, 3), hash01(1, 2, 3));
        assert_ne!(hash01(1, 2, 3), hash01(2, 2, 3));
        assert_ne!(hash01(1, 2, 3), hash01(1, 3, 2));
    }

    #[test]
    fn hash_is_in_unit_interval_and_well_spread() {
        let mut sum = 0.0f64;
        let n = 10_000u64;
        for i in 0..n {
            let v = hash01(7, i, i * 31);
            assert!((0.0..1.0).contains(&v));
            sum += v as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sym_hash_covers_both_signs() {
        let vals: Vec<f32> = (0..100).map(|i| hash_sym(3, i, 0)).collect();
        assert!(vals.iter().any(|&v| v > 0.0));
        assert!(vals.iter().any(|&v| v < 0.0));
        assert!(vals.iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn value_noise_is_smooth() {
        // Adjacent samples differ much less than distant ones on average.
        let mut near = 0.0f32;
        let mut far = 0.0f32;
        for i in 0..200 {
            let x = i as f32 * 0.01;
            near += (value_noise(5, x + 0.01, 0.3, 1.0) - value_noise(5, x, 0.3, 1.0)).abs();
            far += (value_noise(5, x + 7.3, 0.3, 1.0) - value_noise(5, x, 0.3, 1.0)).abs();
        }
        assert!(near < far, "near {near} vs far {far}");
    }

    #[test]
    fn value_noise_handles_negative_coordinates() {
        let v = value_noise(9, -3.7, -12.2, 2.0);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn frame_digest_detects_any_pixel_change() {
        let mut img = vision::Image::from_fn(6, 9, |y, x| hash01(1, y as u64, x as u64)).unwrap();
        let base = frame_digest(&img);
        assert_eq!(
            base,
            frame_digest(&img.clone()),
            "digest is a pure function"
        );
        let original = img.get(3, 4);
        img.put(3, 4, original + 1e-7);
        assert_ne!(
            base,
            frame_digest(&img),
            "one-ulp-scale change breaks the digest"
        );
        img.put(3, 4, original);
        assert_eq!(base, frame_digest(&img));
    }

    #[test]
    fn frame_digest_is_dimension_and_nan_sensitive() {
        let a = vision::Image::filled(4, 6, 0.5).unwrap();
        let b = vision::Image::filled(6, 4, 0.5).unwrap();
        assert_ne!(frame_digest(&a), frame_digest(&b));
        // NaN frames still digest deterministically (gating needs this to
        // spot a sensor stuck on a corrupt buffer).
        let nan = vision::Image::filled(4, 6, f32::NAN).unwrap();
        assert_eq!(frame_digest(&nan), frame_digest(&nan.clone()));
        assert_ne!(frame_digest(&nan), frame_digest(&a));
    }
}
