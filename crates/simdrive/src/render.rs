//! Software renderer for driving scenes.
//!
//! Frames are painted with a classical ground-plane projection: every pixel
//! below the horizon back-projects to a point on the road plane, whose
//! lateral distance from the quadratic lane model decides whether it shows
//! asphalt, lane marking or terrain. Clutter objects (trees, buildings,
//! boxes) are billboarded rectangles sorted far-to-near. Rendering happens
//! at `supersample ×` resolution and is box-downsampled for antialiasing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vision::{draw, Image, RgbImage};

use crate::hash::{hash_sym, value_noise};
use crate::{SceneParams, Weather, World};

/// A rendered frame: the colour image, its grayscale version, and the
/// ground-truth lane-marking mask (1.0 where a lane marking is visible).
///
/// The lane mask is not part of the paper's pipeline — it is ground truth
/// used by experiment E1 (Fig. 2) to quantify how much VBP saliency mass
/// falls on the features that matter.
#[derive(Debug, Clone)]
pub struct RenderedFrame {
    /// Colour frame at the configured output resolution.
    pub rgb: RgbImage,
    /// Grayscale frame (BT.601 luma), pixels in `[0, 1]`.
    pub gray: Image,
    /// Lane-marking ground truth in `[0, 1]` (antialiased at borders).
    pub lane_mask: Image,
}

struct Camera {
    focal: f32,
    cx: f32,
    horizon: f32,
    cam_height: f32,
    z_far: f32,
}

impl Camera {
    fn for_world(world: World, width: usize, height: usize) -> Self {
        let (horizon_frac, z_far) = match world {
            World::Outdoor => (0.34, 130.0),
            World::Indoor => (0.30, 7.0),
        };
        Camera {
            focal: width as f32 * 0.9,
            cx: width as f32 / 2.0,
            horizon: height as f32 * horizon_frac,
            cam_height: world.camera_height(),
            z_far,
        }
    }

    /// Depth of the ground-plane point seen by image row `y` (below the
    /// horizon), metres.
    fn depth_at_row(&self, y: f32) -> f32 {
        self.focal * self.cam_height / (y - self.horizon).max(1e-3)
    }

    /// Lateral world coordinate of column `x` at depth `z`, metres.
    fn lateral_at(&self, x: f32, z: f32) -> f32 {
        (x - self.cx) * z / self.focal
    }

    /// Screen row of the ground contact at depth `z`.
    fn row_of_depth(&self, z: f32) -> f32 {
        self.horizon + self.focal * self.cam_height / z
    }

    /// Screen column of lateral coordinate `lat` at depth `z`.
    fn col_of_lateral(&self, lat: f32, z: f32) -> f32 {
        self.cx + self.focal * lat / z
    }
}

fn mix(a: [f32; 3], b: [f32; 3], t: f32) -> [f32; 3] {
    [
        a[0] + (b[0] - a[0]) * t,
        a[1] + (b[1] - a[1]) * t,
        a[2] + (b[2] - a[2]) * t,
    ]
}

fn scale_rgb(c: [f32; 3], s: f32) -> [f32; 3] {
    [c[0] * s, c[1] * s, c[2] * s]
}

const OUTDOOR_SKY_TOP: [f32; 3] = [0.62, 0.74, 0.92];
const OUTDOOR_SKY_HORIZON: [f32; 3] = [0.84, 0.88, 0.94];
const OUTDOOR_ASPHALT: [f32; 3] = [0.33, 0.33, 0.35];
const OUTDOOR_MARKING: [f32; 3] = [0.93, 0.93, 0.88];
const INDOOR_FLOOR: [f32; 3] = [0.62, 0.60, 0.56];
const INDOOR_TRACK: [f32; 3] = [0.20, 0.20, 0.22];
const INDOOR_TAPE: [f32; 3] = [0.95, 0.95, 0.92];
const INDOOR_WALL: [f32; 3] = [0.52, 0.50, 0.47];

/// Lane-marking membership for a ground point `d` metres from the road
/// centre at depth `z`. Returns `true` when the point lies on a painted
/// marking.
fn is_marking(world: World, d: f32, z: f32) -> bool {
    let half = world.road_half_width();
    match world {
        World::Outdoor => {
            let edge = d.abs() >= half - 0.35 && d.abs() <= half - 0.12;
            let dashed = d.abs() <= 0.10 && (z / 4.0).fract() < 0.55;
            edge || dashed
        }
        World::Indoor => {
            let tape = d.abs() >= half - 0.045 && d.abs() <= half;
            let dashed = d.abs() <= 0.012 && (z / 0.45).fract() < 0.6;
            tape || dashed
        }
    }
}

fn sky_color(scene: &SceneParams, x: f32, y: f32, cam: &Camera, width: f32) -> [f32; 3] {
    match scene.world {
        World::Outdoor => {
            let t = (y / cam.horizon.max(1.0)).clamp(0.0, 1.0);
            let base = mix(OUTDOOR_SKY_TOP, OUTDOOR_SKY_HORIZON, t);
            // Clouds: thresholded smooth noise, denser near the top.
            let n = value_noise(
                scene.texture_seed ^ 0xC10D,
                x / width * 8.0,
                y / width * 8.0,
                1.0,
            );
            let cloud = ((n - 0.55) * 4.0).clamp(0.0, 1.0) * (1.0 - t * 0.6);
            mix(base, [0.97, 0.97, 0.97], cloud)
        }
        World::Indoor => {
            // Wall with vertical panel stripes and a dark baseboard just
            // above the horizon.
            let stripe = value_noise(scene.texture_seed ^ 0x3A11, x * 0.045, 0.0, 1.0);
            let mut c = scale_rgb(INDOOR_WALL, 0.9 + 0.2 * stripe);
            let from_horizon = cam.horizon - y;
            if from_horizon < cam.horizon * 0.08 {
                c = scale_rgb(c, 0.55);
            }
            c
        }
    }
}

fn ground_color(
    scene: &SceneParams,
    d: f32,
    z: f32,
    world_x: f32,
    cam: &Camera,
) -> ([f32; 3], bool) {
    let world = scene.world;
    let half = world.road_half_width();
    let on_road = d.abs() <= half;
    let marking = on_road && is_marking(world, d, z);
    let color = match world {
        World::Outdoor => {
            if marking {
                OUTDOOR_MARKING
            } else if on_road {
                // Asphalt speckle.
                let n = value_noise(scene.texture_seed, world_x * 1.8, z * 1.8, 1.0);
                scale_rgb(OUTDOOR_ASPHALT, 0.9 + 0.2 * n)
            } else {
                // Terrain: grass/dirt patches from two noise octaves.
                let n1 = value_noise(scene.texture_seed ^ 1, world_x * 0.25, z * 0.25, 1.0);
                let n2 = value_noise(scene.texture_seed ^ 2, world_x * 1.1, z * 1.1, 1.0);
                let grass = [0.28 + 0.16 * n2, 0.42 + 0.18 * n1, 0.20 + 0.10 * n2];
                let dirt = [0.48 + 0.1 * n2, 0.40 + 0.08 * n2, 0.30];
                mix(grass, dirt, ((n1 - 0.45) * 3.0).clamp(0.0, 1.0))
            }
        }
        World::Indoor => {
            if marking {
                INDOOR_TAPE
            } else if on_road {
                let n = value_noise(scene.texture_seed, world_x * 6.0, z * 6.0, 1.0);
                scale_rgb(INDOOR_TRACK, 0.92 + 0.16 * n)
            } else {
                let n = value_noise(scene.texture_seed ^ 3, world_x * 2.0, z * 2.0, 1.0);
                scale_rgb(INDOOR_FLOOR, 0.95 + 0.1 * n)
            }
        }
    };
    // Haze: fade distant ground toward the horizon colour.
    let hazed = if scene.haze > 0.0 {
        let t = (scene.haze * (z / cam.z_far)).clamp(0.0, 1.0);
        mix(color, OUTDOOR_SKY_HORIZON, t)
    } else {
        color
    };
    (hazed, marking)
}

struct Clutter {
    z: f32,
    lateral: f32,
    width_m: f32,
    height_m: f32,
    color: [f32; 3],
}

fn sample_clutter(scene: &SceneParams, density: f32) -> Vec<Clutter> {
    let mut rng = StdRng::seed_from_u64(scene.clutter_seed);
    let world = scene.world;
    let base = match world {
        World::Outdoor => 14.0,
        World::Indoor => 5.0,
    };
    let count = (base * density).round() as usize;
    let half = world.road_half_width();
    let mut objs = Vec::with_capacity(count);
    for _ in 0..count {
        let (z, side_span, wm, hm, color) = match world {
            World::Outdoor => {
                let z = rng.gen_range(8.0f32..100.0);
                let lat = rng.gen_range(1.0f32..18.0);
                let tree = rng.gen_bool(0.6);
                let (wm, hm, color) = if tree {
                    let g = rng.gen_range(0.25f32..0.5);
                    (
                        rng.gen_range(1.5f32..4.0),
                        rng.gen_range(3.0f32..9.0),
                        [0.12, g, 0.10],
                    )
                } else {
                    let v = rng.gen_range(0.35f32..0.75);
                    (
                        rng.gen_range(4.0f32..12.0),
                        rng.gen_range(3.0f32..10.0),
                        [v, v * rng.gen_range(0.85..1.0), v * rng.gen_range(0.8..1.0)],
                    )
                };
                (z, lat, wm, hm, color)
            }
            World::Indoor => {
                let z = rng.gen_range(1.0f32..6.0);
                let lat = rng.gen_range(0.15f32..1.6);
                let v = rng.gen_range(0.3f32..0.8);
                (
                    z,
                    lat,
                    rng.gen_range(0.15f32..0.5),
                    rng.gen_range(0.1f32..0.45),
                    [v, v * rng.gen_range(0.7..1.0), rng.gen_range(0.2..0.9)],
                )
            }
        };
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        // Drive simulation: objects stream toward the camera as the
        // vehicle travels, recycling over the sampled depth range.
        let (z_near, z_far_range) = match world {
            World::Outdoor => (8.0f32, 92.0f32),
            World::Indoor => (1.0f32, 5.0f32),
        };
        let z = z_near + (z - z_near - scene.clutter_travel).rem_euclid(z_far_range);
        objs.push(Clutter {
            z,
            lateral: scene.centerline_at(z) + sign * (half + side_span),
            width_m: wm,
            height_m: hm,
            color,
        });
    }
    // Far-to-near painter's order.
    objs.sort_by(|a, b| b.z.partial_cmp(&a.z).expect("depths are finite"));
    objs
}

fn paint_clutter(img: &mut RgbImage, cam: &Camera, objs: &[Clutter], exposure: f32) {
    for o in objs {
        if o.z <= 0.5 || o.z > cam.z_far {
            continue;
        }
        let ground_y = cam.row_of_depth(o.z);
        let top_y = ground_y - cam.focal * o.height_m / o.z;
        let x_mid = cam.col_of_lateral(o.lateral, o.z);
        let half_w = cam.focal * o.width_m / o.z / 2.0;
        draw::fill_rect(
            img,
            (x_mid - half_w).round() as i64,
            top_y.round() as i64,
            (x_mid + half_w).round() as i64,
            ground_y.round() as i64,
            scale_rgb(o.color, exposure),
        );
    }
}

/// Rain overlay: slanted bright streaks plus a wet-road sheen band near
/// the bottom of the frame (a crude specular reflection of the sky).
fn paint_rain(img: &mut RgbImage, scene: &SceneParams, cam: &Camera) {
    let (h, w) = (img.height(), img.width());
    let mut rng = StdRng::seed_from_u64(scene.texture_seed ^ 0x4A1A);
    let streaks = (h * w) / 180;
    for _ in 0..streaks {
        let x0 = rng.gen_range(0.0..w as f32);
        let y0 = rng.gen_range(0.0..h as f32);
        let len = rng.gen_range(2.0f32..6.0);
        let slant = rng.gen_range(0.2f32..0.5);
        draw::draw_line(
            img,
            draw::Point::new(x0, y0),
            draw::Point::new(x0 + slant * len, y0 + len),
            0.9,
            [0.78, 0.80, 0.84],
        );
    }
    // Wet sheen: blend the near road rows toward the sky colour.
    let sheen_top = (cam.horizon as usize + (h - cam.horizon as usize) / 2).min(h);
    for y in sheen_top..h {
        let t = 0.25 * (y - sheen_top) as f32 / (h - sheen_top).max(1) as f32;
        for x in 0..w {
            img.put(y, x, mix(img.get(y, x), OUTDOOR_SKY_HORIZON, t));
        }
    }
}

fn box_downsample_rgb(src: &RgbImage, factor: usize) -> RgbImage {
    if factor == 1 {
        return src.clone();
    }
    let h = src.height() / factor;
    let w = src.width() / factor;
    let mut out = RgbImage::new(h, w).expect("non-zero output size");
    let inv = 1.0 / (factor * factor) as f32;
    for y in 0..h {
        for x in 0..w {
            let mut acc = [0.0f32; 3];
            for sy in 0..factor {
                for sx in 0..factor {
                    let p = src.get(y * factor + sy, x * factor + sx);
                    acc[0] += p[0];
                    acc[1] += p[1];
                    acc[2] += p[2];
                }
            }
            out.put(y, x, scale_rgb(acc, inv));
        }
    }
    out
}

fn box_downsample_gray(src: &Image, factor: usize) -> Image {
    if factor == 1 {
        return src.clone();
    }
    let h = src.height() / factor;
    let w = src.width() / factor;
    let inv = 1.0 / (factor * factor) as f32;
    Image::from_fn(h, w, |y, x| {
        let mut acc = 0.0;
        for sy in 0..factor {
            for sx in 0..factor {
                acc += src.get(y * factor + sy, x * factor + sx);
            }
        }
        acc * inv
    })
    .expect("non-zero output size")
}

/// Ground-truth region masks for saliency evaluation (experiment E1):
/// which pixels belong to the road surface, its edge band, and the
/// painted markings.
#[derive(Debug, Clone)]
pub struct RegionMasks {
    /// 1.0 where the pixel shows the drivable road surface.
    pub road: Image,
    /// 1.0 in a band around the road boundary (the paper's "edge of the
    /// road" — the feature a steering network should attend to).
    pub edge_band: Image,
    /// 1.0 on painted lane markings (same definition as
    /// [`RenderedFrame::lane_mask`]).
    pub markings: Image,
}

/// Computes the analytic ground-truth region masks of a scene at the
/// given output resolution (no rendering involved; pure geometry).
///
/// # Panics
///
/// Panics when `height` or `width` is zero.
pub fn region_masks(scene: &SceneParams, height: usize, width: usize) -> RegionMasks {
    assert!(
        height > 0 && width > 0,
        "region_masks: dimensions must be non-zero"
    );
    let cam = Camera::for_world(scene.world, width, height);
    let half = scene.world.road_half_width();
    // Edge band: ±12 % of the road half-width around each boundary.
    let band = half * 0.24;
    let mut road = Image::new(height, width).expect("non-zero size");
    let mut edge = Image::new(height, width).expect("non-zero size");
    let mut markings = Image::new(height, width).expect("non-zero size");
    for y in 0..height {
        let yf = y as f32;
        if yf < cam.horizon {
            continue;
        }
        let z = cam.depth_at_row(yf + 0.5);
        if z > cam.z_far {
            continue;
        }
        for x in 0..width {
            let lat = cam.lateral_at(x as f32 + 0.5, z);
            let d = lat - scene.centerline_at(z);
            if d.abs() <= half {
                road.put(y, x, 1.0);
                if is_marking(scene.world, d, z) {
                    markings.put(y, x, 1.0);
                }
            }
            if (d.abs() - half).abs() <= band {
                edge.put(y, x, 1.0);
            }
        }
    }
    RegionMasks {
        road,
        edge_band: edge,
        markings,
    }
}

/// Renders a scene to a [`RenderedFrame`] of `height × width` pixels.
///
/// `supersample` renders at that multiple of the output resolution and
/// box-downsamples (2 is a good default); `clutter_density` scales the
/// number of roadside objects (1.0 = default).
///
/// # Panics
///
/// Panics when `height`, `width` or `supersample` is zero (these are
/// validated by [`crate::DatasetConfig`]; direct callers must uphold them).
pub fn render_frame(
    scene: &SceneParams,
    height: usize,
    width: usize,
    supersample: usize,
    clutter_density: f32,
) -> RenderedFrame {
    assert!(
        height > 0 && width > 0 && supersample > 0,
        "render_frame: dimensions and supersample must be non-zero"
    );
    let hh = height * supersample;
    let ww = width * supersample;
    let cam = Camera::for_world(scene.world, ww, hh);
    let mut rgb = RgbImage::new(hh, ww).expect("non-zero size");
    let mut mask = Image::new(hh, ww).expect("non-zero size");

    for y in 0..hh {
        let yf = y as f32;
        let below_horizon = yf >= cam.horizon;
        let z = if below_horizon {
            cam.depth_at_row(yf + 0.5)
        } else {
            0.0
        };
        for x in 0..ww {
            let xf = x as f32;
            let color = if below_horizon && z <= cam.z_far {
                // Sample at the pixel centre so straight roads render
                // mirror-symmetrically.
                let lat = cam.lateral_at(xf + 0.5, z);
                let d = lat - scene.centerline_at(z);
                let (c, marking) = ground_color(scene, d, z, lat, &cam);
                if marking {
                    mask.put(y, x, 1.0);
                }
                c
            } else {
                sky_color(scene, xf, yf.min(cam.horizon), &cam, ww as f32)
            };
            // Lateral light bias + global exposure.
            let shade =
                scene.exposure * (1.0 + 0.08 * scene.light_bias * (xf / ww as f32 * 2.0 - 1.0));
            rgb.put(y, x, scale_rgb(color, shade));
        }
    }

    let clutter = sample_clutter(scene, clutter_density);
    paint_clutter(&mut rgb, &cam, &clutter, scene.exposure);

    if scene.weather == Weather::Rain && scene.world == World::Outdoor {
        paint_rain(&mut rgb, scene, &cam);
    }

    // Subtle per-pixel sensor noise so no two pixels are bitwise-flat.
    let hw = ww as u64;
    for y in 0..hh {
        for x in 0..ww {
            let p = rgb.get(y, x);
            let n = hash_sym(scene.texture_seed ^ 0x5EED, y as u64 * hw + x as u64, 17) * 0.0075;
            rgb.put(y, x, [p[0] + n, p[1] + n, p[2] + n]);
        }
    }

    let rgb = box_downsample_rgb(&rgb, supersample).clamp_unit();
    let mask = box_downsample_gray(&mask, supersample);
    let gray = rgb.to_grayscale();
    RenderedFrame {
        rgb,
        gray,
        lane_mask: mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neutral_frame(world: World) -> RenderedFrame {
        render_frame(&SceneParams::neutral(world), 60, 160, 1, 1.0)
    }

    #[test]
    fn output_dimensions_match_request() {
        let f = render_frame(&SceneParams::neutral(World::Outdoor), 30, 80, 2, 1.0);
        assert_eq!((f.rgb.height(), f.rgb.width()), (30, 80));
        assert_eq!((f.gray.height(), f.gray.width()), (30, 80));
        assert_eq!((f.lane_mask.height(), f.lane_mask.width()), (30, 80));
    }

    #[test]
    fn pixels_are_in_unit_range() {
        for world in [World::Outdoor, World::Indoor] {
            let f = neutral_frame(world);
            assert!(f.gray.tensor().min_value() >= 0.0);
            assert!(f.gray.tensor().max_value() <= 1.0);
            assert!(!f.gray.tensor().has_non_finite());
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let s = SceneParams::neutral(World::Outdoor);
        let a = render_frame(&s, 40, 100, 2, 1.0);
        let b = render_frame(&s, 40, 100, 2, 1.0);
        assert_eq!(a.gray, b.gray);
        assert_eq!(a.rgb, b.rgb);
        assert_eq!(a.lane_mask, b.lane_mask);
    }

    #[test]
    fn straight_road_is_left_right_symmetricish() {
        // On a neutral straight road, the lane mask must be (nearly)
        // mirror-symmetric.
        let f = neutral_frame(World::Outdoor);
        let m = &f.lane_mask;
        let mut asym = 0.0;
        let mut total = 0.0;
        for y in 0..m.height() {
            for x in 0..m.width() {
                asym += (m.get(y, x) - m.get(y, m.width() - 1 - x)).abs();
                total += m.get(y, x);
            }
        }
        assert!(total > 0.0, "no lane markings rendered");
        assert!(asym / total < 0.2, "asymmetry {asym} vs mass {total}");
    }

    #[test]
    fn lane_mask_lies_on_bright_road_pixels() {
        // Markings are painted bright; where the mask is 1 the grayscale
        // must be brighter than the road average.
        let f = neutral_frame(World::Outdoor);
        let mut marked = Vec::new();
        let mut unmarked_road_rows = Vec::new();
        for y in (f.gray.height() * 2 / 3)..f.gray.height() {
            for x in 0..f.gray.width() {
                if f.lane_mask.get(y, x) > 0.9 {
                    marked.push(f.gray.get(y, x));
                } else {
                    unmarked_road_rows.push(f.gray.get(y, x));
                }
            }
        }
        assert!(!marked.is_empty());
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&marked) > mean(&unmarked_road_rows) + 0.2);
    }

    #[test]
    fn worlds_are_visually_distinct() {
        let a = neutral_frame(World::Outdoor).gray;
        let b = neutral_frame(World::Indoor).gray;
        let diff: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / a.len() as f32;
        assert!(diff > 0.05, "worlds too similar: mean abs diff {diff}");
    }

    #[test]
    fn curvature_bends_the_lane_mask() {
        let mut left = SceneParams::neutral(World::Outdoor);
        left.curvature = -0.01;
        let mut right = SceneParams::neutral(World::Outdoor);
        right.curvature = 0.01;
        let fl = render_frame(&left, 60, 160, 1, 0.0);
        let fr = render_frame(&right, 60, 160, 1, 0.0);
        // Compare mask centroids in the upper (far) half of the road region.
        let centroid = |m: &Image| {
            let mut sx = 0.0;
            let mut n = 0.0;
            for y in 22..34 {
                for x in 0..m.width() {
                    let v = m.get(y, x);
                    sx += v * x as f32;
                    n += v;
                }
            }
            sx / n.max(1e-9)
        };
        assert!(
            centroid(&fr.lane_mask) > centroid(&fl.lane_mask) + 2.0,
            "curvature did not shift mask centroid"
        );
    }

    #[test]
    fn region_masks_are_geometrically_consistent() {
        let scene = SceneParams::neutral(World::Outdoor);
        let regions = region_masks(&scene, 60, 160);
        let frame = render_frame(&scene, 60, 160, 1, 0.0);
        // Markings from the analytic mask agree with the rendered mask.
        let mut agree = 0usize;
        let mut total = 0usize;
        for (a, b) in regions
            .markings
            .as_slice()
            .iter()
            .zip(frame.lane_mask.as_slice())
        {
            if *b > 0.5 || *a > 0.5 {
                total += 1;
                if (*a > 0.5) == (*b > 0.5) {
                    agree += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(agree as f32 / total as f32 > 0.95, "{agree}/{total}");
        // Markings lie on the road; the edge band straddles the boundary.
        for i in 0..regions.road.len() {
            if regions.markings.as_slice()[i] > 0.5 {
                assert!(regions.road.as_slice()[i] > 0.5);
            }
        }
        let road_area: f32 = regions.road.as_slice().iter().sum();
        let edge_area: f32 = regions.edge_band.as_slice().iter().sum();
        assert!(road_area > 0.0 && edge_area > 0.0);
        assert!(edge_area < road_area);
    }

    #[test]
    fn clutter_travel_moves_objects() {
        let mut a = SceneParams::neutral(World::Outdoor);
        a.clutter_seed = 42;
        let mut b = a.clone();
        b.clutter_travel = 15.0;
        let fa = render_frame(&a, 60, 160, 1, 1.0);
        let fb = render_frame(&b, 60, 160, 1, 1.0);
        assert_ne!(fa.gray, fb.gray, "travel must move clutter");
        assert_eq!(fa.lane_mask, fb.lane_mask, "travel must not move the road");
    }

    #[test]
    fn weather_variants_change_appearance_not_geometry() {
        let base = SceneParams::neutral(World::Outdoor);
        let clear = render_frame(&base, 60, 160, 1, 0.0);
        let fog = render_frame(
            &base.clone().with_weather(crate::Weather::Fog),
            60,
            160,
            1,
            0.0,
        );
        let rain = render_frame(
            &base.clone().with_weather(crate::Weather::Rain),
            60,
            160,
            1,
            0.0,
        );
        assert_ne!(clear.gray, fog.gray);
        assert_ne!(clear.gray, rain.gray);
        // Geometry (lane mask) is weather-independent.
        assert_eq!(clear.lane_mask, fog.lane_mask);
        assert_eq!(clear.lane_mask, rain.lane_mask);
        // Fog lifts the dark far-field pixels toward the bright sky
        // colour: the 10th-percentile intensity of the band just below
        // the horizon rises substantially.
        let dark_level = |img: &vision::Image| {
            let mut vals = Vec::new();
            for y in 22..30 {
                for x in 0..img.width() {
                    vals.push(img.get(y, x));
                }
            }
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vals[vals.len() / 10]
        };
        assert!(
            dark_level(&fog.gray) > dark_level(&clear.gray) + 0.05,
            "fog did not wash out the far field: {} vs {}",
            dark_level(&fog.gray),
            dark_level(&clear.gray)
        );
    }

    #[test]
    fn exposure_scales_brightness() {
        let mut dark = SceneParams::neutral(World::Outdoor);
        dark.exposure = 0.7;
        let mut bright = SceneParams::neutral(World::Outdoor);
        bright.exposure = 1.3;
        let fd = render_frame(&dark, 30, 80, 1, 0.0);
        let fb = render_frame(&bright, 30, 80, 1, 0.0);
        assert!(fb.gray.mean() > fd.gray.mean() + 0.1);
    }

    #[test]
    fn clutter_density_zero_removes_objects() {
        let mut s = SceneParams::neutral(World::Outdoor);
        s.clutter_seed = 1234;
        let with = render_frame(&s, 60, 160, 1, 1.0);
        let without = render_frame(&s, 60, 160, 1, 0.0);
        let diff: f32 = with
            .gray
            .as_slice()
            .iter()
            .zip(without.gray.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.0, "clutter had no visual effect");
    }

    #[test]
    fn different_texture_seeds_change_background_not_geometry() {
        let mut a = SceneParams::neutral(World::Outdoor);
        a.texture_seed = 1;
        let mut b = SceneParams::neutral(World::Outdoor);
        b.texture_seed = 2;
        let fa = render_frame(&a, 60, 160, 1, 0.0);
        let fb = render_frame(&b, 60, 160, 1, 0.0);
        assert_eq!(
            fa.lane_mask, fb.lane_mask,
            "geometry must not depend on texture seed"
        );
        assert_ne!(fa.gray, fb.gray, "texture seed must change appearance");
    }
}
