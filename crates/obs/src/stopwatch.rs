//! The workspace's only sanctioned wall-clock access point.
//!
//! Library crates outside `obs` are forbidden (statically, by
//! `sncheck`'s `no-ambient-clock` rule) from calling [`Instant::now`]
//! directly: a stray clock read in a scoring or calibration branch is
//! exactly the kind of nondeterminism the reproduction's bit-identical
//! guarantees exclude. Code that legitimately needs elapsed time — epoch
//! timing, scoring latency, the streaming runtime's deadline check —
//! starts a [`Stopwatch`] instead, which makes the clock dependency
//! explicit, optional, and auditable in one place.

use std::time::{Duration, Instant};

/// An optionally-running monotonic timer.
///
/// A stopwatch started with [`Stopwatch::started_if(false)`] never touches
/// the clock: every query returns `None` at the cost of one branch. This
/// mirrors the recorder contract — when observability is disabled, the
/// instrumented code performs zero clock reads and therefore cannot
/// perturb (or be perturbed by) timing.
///
/// ```
/// let off = obs::Stopwatch::started_if(false);
/// assert_eq!(off.elapsed_secs(), None);
/// let on = obs::Stopwatch::started();
/// assert!(on.elapsed().is_some());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn started() -> Self {
        Stopwatch {
            start: Some(Instant::now()),
        }
    }

    /// Starts timing only when `enabled`; otherwise the stopwatch is
    /// inert and performs no clock reads, ever.
    #[must_use]
    pub fn started_if(enabled: bool) -> Self {
        Stopwatch {
            start: enabled.then(Instant::now),
        }
    }

    /// A stopwatch that was never started.
    #[must_use]
    pub fn disabled() -> Self {
        Stopwatch { start: None }
    }

    /// Whether the stopwatch was started.
    pub fn is_running(&self) -> bool {
        self.start.is_some()
    }

    /// Time since start, or `None` for a disabled stopwatch.
    pub fn elapsed(&self) -> Option<Duration> {
        self.start.map(|s| s.elapsed())
    }

    /// Seconds since start, or `None` for a disabled stopwatch.
    pub fn elapsed_secs(&self) -> Option<f64> {
        self.elapsed().map(|d| d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_reports() {
        let sw = Stopwatch::disabled();
        assert!(!sw.is_running());
        assert_eq!(sw.elapsed(), None);
        assert_eq!(sw.elapsed_secs(), None);
        let sw = Stopwatch::started_if(false);
        assert!(!sw.is_running());
        assert_eq!(sw.elapsed(), None);
    }

    #[test]
    fn started_reports_monotonic_time() {
        let sw = Stopwatch::started();
        assert!(sw.is_running());
        let a = sw.elapsed().expect("running");
        let b = sw.elapsed().expect("running");
        assert!(b >= a);
        assert!(sw.elapsed_secs().expect("running") >= 0.0);
    }

    #[test]
    fn started_if_true_runs() {
        let sw = Stopwatch::started_if(true);
        assert!(sw.is_running());
        assert!(sw.elapsed_secs().is_some());
    }
}
