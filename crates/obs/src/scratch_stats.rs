//! Bridge from [`ndtensor::scratch`]'s always-on pool counters into a
//! [`Recorder`].
//!
//! Same pattern as [`crate::par_stats`]: `ndtensor` sits below `obs` in
//! the crate graph, so the scratch pool keeps cheap global atomics
//! ([`ndtensor::scratch::ScratchStats`]) and observers diff snapshots
//! around the region they care about. The hit rate is the headline
//! number: a warmed hot path should sit at 1.0 (every buffer reused,
//! zero allocator traffic).

use crate::Recorder;
use ndtensor::scratch::{stats, ScratchStats};

/// Takes a scratch-pool snapshot to later diff with
/// [`record_scratch_delta`].
pub fn scratch_snapshot() -> ScratchStats {
    stats()
}

/// Records the scratch-pool activity since `before` as `scratch.*`
/// counters plus a `scratch.hit_rate` gauge (hits over takes; 0 when the
/// pool was idle).
///
/// No-op when the recorder is disabled.
pub fn record_scratch_delta(recorder: &dyn Recorder, before: ScratchStats) {
    if !recorder.enabled() {
        return;
    }
    let d = stats().since(before);
    recorder.add("scratch.hits", d.hits);
    recorder.add("scratch.misses", d.misses);
    recorder.add("scratch.bytes_allocated", d.bytes_allocated);
    let takes = d.hits + d.misses;
    let hit_rate = if takes > 0 {
        d.hits as f64 / takes as f64
    } else {
        0.0
    };
    recorder.gauge("scratch.hit_rate", hit_rate);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunRecorder;

    #[test]
    fn delta_lands_in_recorder() {
        let rec = RunRecorder::new();
        let before = scratch_snapshot();
        // Cycle a buffer through the pool: the second take of the same
        // size class is a guaranteed hit.
        let buf = ndtensor::scratch::take(256);
        ndtensor::scratch::give(buf);
        let buf = ndtensor::scratch::take(256);
        ndtensor::scratch::give(buf);
        record_scratch_delta(&rec, before);
        let report = rec.report("t");
        let hits = report.counter("scratch.hits").unwrap_or(0);
        let misses = report.counter("scratch.misses").unwrap_or(0);
        assert!(hits + misses >= 2, "takes not counted");
        assert!(hits >= 1, "pooled reuse not counted as a hit");
        assert!(report.gauge("scratch.hit_rate").is_some());
    }

    #[test]
    fn disabled_recorder_skips_the_snapshot_diff() {
        let before = scratch_snapshot();
        record_scratch_delta(crate::noop(), before);
        // Nothing to assert beyond "does not panic": noop keeps nothing.
    }
}
