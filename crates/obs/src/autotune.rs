//! Bridge from the sanctioned clock into `ndtensor`'s kernel autotuner.
//!
//! Same dependency direction as [`crate::par_stats`]: `ndtensor` sits
//! below `obs`, so it cannot time anything itself — its routine selector
//! exposes a [`ndtensor::routines::KernelTimer`] injection point and
//! degrades to the static heuristic until one is installed. This module
//! installs the only sanctioned implementation, backed by
//! [`crate::Stopwatch`], keeping every wall-clock read in the workspace
//! inside `crates/obs`.
//!
//! Installation is idempotent and cheap; anything that wants
//! `SALIENCY_AUTOTUNE=on` to mean *measured* selection (detector
//! constructors, the bench binaries) calls [`install_kernel_timer`]
//! once during setup. The timer only ever runs inside the autotuner's
//! one-shot per-shape measurement — never on a per-frame path — and
//! selection can never change output bits (all routines of a family are
//! bitwise-equal), so installing it preserves the "observation never
//! perturbs results" invariant.

use crate::Stopwatch;

/// Runs `body` once and returns elapsed nanoseconds (saturating at
/// `u64::MAX`, which a kernel measurement cannot reach).
fn stopwatch_timer(body: &mut dyn FnMut()) -> u64 {
    let sw = Stopwatch::started();
    body();
    sw.elapsed()
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Installs the [`Stopwatch`]-backed kernel timer into
/// `ndtensor::routines`. Idempotent: returns whether this call was the
/// one that installed it.
pub fn install_kernel_timer() -> bool {
    ndtensor::routines::install_timer(stopwatch_timer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_once_and_reports_time() {
        install_kernel_timer();
        assert!(ndtensor::routines::timer_installed());
        // Second install is a no-op, not an error.
        assert!(!install_kernel_timer() || ndtensor::routines::timer_installed());
        let mut ran = false;
        let ns = stopwatch_timer(&mut || ran = true);
        assert!(ran);
        // Monotonic clock: a timed spin is non-negative and finite.
        assert!(ns < u64::MAX);
    }
}
