//! Error type for report serialization and validation.

use std::fmt;

/// Error type for building, saving and loading run reports.
#[derive(Debug)]
pub enum ObsError {
    /// A report-level invariant was violated.
    Invalid {
        /// Short name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// Report (de)serialization failed.
    Serde(String),
    /// File I/O failed.
    Io(std::io::Error),
}

impl ObsError {
    /// Builds an [`ObsError::Invalid`].
    pub fn invalid(op: &'static str, reason: impl Into<String>) -> Self {
        ObsError::Invalid {
            op,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Invalid { op, reason } => write!(f, "{op}: {reason}"),
            ObsError::Serde(msg) => write!(f, "report serialization error: {msg}"),
            ObsError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ObsError::invalid("report", "no stages");
        assert!(e.to_string().contains("report"));
        assert!(e.source().is_none());
        let e = ObsError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "x"));
        assert!(e.source().is_some());
    }
}
