//! Serializable run reports: the JSON snapshot of a [`RunRecorder`].

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::recorder::RunRecorder;
use crate::{ObsError, Result};
use metrics::ecdf::Ecdf;
use metrics::histogram::Histogram;

/// Version of the report JSON layout. Bump on breaking schema changes.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Number of bins used when bucketing latency samples.
const HISTOGRAM_BINS: usize = 16;

/// Aggregate wall-clock time of one span path (pipeline stage or
/// sub-stage, e.g. `train.cnn-train`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Dotted span path; the first segment is the stage name.
    pub name: String,
    /// How many times the span ran.
    pub count: u64,
    /// Total wall-clock seconds across all runs of the span.
    pub total_secs: f64,
}

/// Final value of one monotonic counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterReport {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Last-written value of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeReport {
    /// Gauge name.
    pub name: String,
    /// Latest value.
    pub value: f64,
}

/// An ordered series of values (e.g. per-epoch training loss).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesReport {
    /// Series name.
    pub name: String,
    /// Values in recording order.
    pub values: Vec<f64>,
}

/// Summary of one latency/value distribution: moments, nearest-rank
/// percentiles, and equal-width bin counts over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    /// Histogram name.
    pub name: String,
    /// Number of samples observed.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Lower edge of the bucketed range.
    pub lo: f64,
    /// Upper edge of the bucketed range.
    pub hi: f64,
    /// Per-bin sample counts over `[lo, hi]`, equal width.
    pub bin_counts: Vec<u64>,
}

/// Everything one instrumented run produced, in a stable JSON layout.
///
/// `--obs-out` files, the `report` subcommand, and `crates/bench`
/// `BENCH_*.json` files all share this schema, so perf trajectories are
/// directly comparable across PRs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// [`REPORT_SCHEMA_VERSION`] at the time the report was written.
    pub schema_version: u32,
    /// What produced the report (`train`, `eval`, `bench:fig3`, …).
    pub command: String,
    /// Configured worker-thread count (`ndtensor::par::thread_config`).
    pub threads: u64,
    /// Span wall-times, sorted by path.
    pub stages: Vec<StageReport>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterReport>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeReport>,
    /// Ordered series, sorted by name.
    pub series: Vec<SeriesReport>,
    /// Latency/value distributions, sorted by name.
    pub histograms: Vec<HistogramReport>,
}

/// Builds a [`HistogramReport`] from raw samples.
///
/// Non-finite samples are dropped (probe-side bugs must not poison the
/// whole report); a degenerate range (all samples equal) is widened by
/// ±0.5 so [`Histogram`]'s `lo < hi` invariant holds.
fn summarize(name: &str, samples: &[f64]) -> HistogramReport {
    let finite: Vec<f32> = samples
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .map(|v| v as f32)
        .collect();
    if finite.is_empty() {
        return HistogramReport {
            name: name.to_string(),
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            lo: 0.0,
            hi: 0.0,
            bin_counts: vec![0; HISTOGRAM_BINS],
        };
    }
    let min = finite.iter().copied().fold(f32::INFINITY, f32::min);
    let max = finite.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mean = finite.iter().map(|&v| v as f64).sum::<f64>() / finite.len() as f64;
    let ecdf = Ecdf::new(finite.clone()).expect("samples are non-empty and finite");
    let q = |p: f32| ecdf.quantile(p).expect("quantile in range") as f64;
    let (lo, hi) = if min < max {
        (min, max)
    } else {
        (min - 0.5, max + 0.5)
    };
    let hist = Histogram::from_values(&finite, lo, hi, HISTOGRAM_BINS)
        .expect("range widened to be non-degenerate");
    HistogramReport {
        name: name.to_string(),
        count: finite.len() as u64,
        min: min as f64,
        max: max as f64,
        mean,
        p50: q(0.5),
        p90: q(0.9),
        p99: q(0.99),
        lo: lo as f64,
        hi: hi as f64,
        bin_counts: hist.counts().to_vec(),
    }
}

impl RunRecorder {
    /// Snapshots everything recorded so far into a [`RunReport`].
    ///
    /// `command` labels what produced the report. The report's `threads`
    /// field is read from the process-wide [`ndtensor::par`] config.
    pub fn report(&self, command: &str) -> RunReport {
        self.snapshot(|s| RunReport {
            schema_version: REPORT_SCHEMA_VERSION,
            command: command.to_string(),
            threads: ndtensor::par::thread_config().threads() as u64,
            stages: s
                .spans
                .iter()
                .map(|(name, agg)| StageReport {
                    name: name.clone(),
                    count: agg.count,
                    total_secs: agg.total_secs,
                })
                .collect(),
            counters: s
                .counters
                .iter()
                .map(|(name, &value)| CounterReport {
                    name: name.clone(),
                    value,
                })
                .collect(),
            gauges: s
                .gauges
                .iter()
                .map(|(name, &value)| GaugeReport {
                    name: name.clone(),
                    value,
                })
                .collect(),
            series: s
                .series
                .iter()
                .map(|(name, values)| SeriesReport {
                    name: name.clone(),
                    values: values.clone(),
                })
                .collect(),
            histograms: s
                .samples
                .iter()
                .map(|(name, samples)| summarize(name, samples))
                .collect(),
        })
    }
}

impl RunReport {
    /// Looks up a span aggregate by exact dotted path.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Looks up a counter's final value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge's last value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&SeriesReport> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramReport> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Returns the subset of `expected` stage names that are missing or
    /// recorded zero wall time. A stage name matches if any span path
    /// equals it or starts with `name.`.
    pub fn missing_stages(&self, expected: &[&str]) -> Vec<String> {
        expected
            .iter()
            .filter(|&&name| {
                let prefix = format!("{name}.");
                !self
                    .stages
                    .iter()
                    .any(|s| (s.name == name || s.name.starts_with(&prefix)) && s.total_secs > 0.0)
            })
            .map(|&name| name.to_string())
            .collect()
    }

    /// Serializes the report to a JSON string.
    ///
    /// # Errors
    ///
    /// Fails if any recorded value is non-finite (the vendored
    /// `serde_json` refuses NaN/infinity).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| ObsError::Serde(e.to_string()))
    }

    /// Parses a report from a JSON string, checking the schema version.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a schema-version mismatch.
    pub fn from_json(json: &str) -> Result<Self> {
        let report: RunReport =
            serde_json::from_str(json).map_err(|e| ObsError::Serde(e.to_string()))?;
        if report.schema_version != REPORT_SCHEMA_VERSION {
            return Err(ObsError::invalid(
                "report",
                format!(
                    "unsupported report schema version {} (this build reads version {})",
                    report.schema_version, REPORT_SCHEMA_VERSION
                ),
            ));
        }
        Ok(report)
    }

    /// Writes the report as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Fails on serialization or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads a report previously written by [`RunReport::save`].
    ///
    /// # Errors
    ///
    /// Fails on I/O, parse, or schema-version errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run report · command={} · threads={} · schema v{}",
            self.command, self.threads, self.schema_version
        )?;
        if !self.stages.is_empty() {
            writeln!(f, "\nstages (wall-clock):")?;
            for s in &self.stages {
                writeln!(
                    f,
                    "  {:<40} {:>6}x {:>12.6}s",
                    s.name, s.count, s.total_secs
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "\ncounters:")?;
            for c in &self.counters {
                writeln!(f, "  {:<40} {:>12}", c.name, c.value)?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "\ngauges:")?;
            for g in &self.gauges {
                writeln!(f, "  {:<40} {:>12.6}", g.name, g.value)?;
            }
        }
        if !self.series.is_empty() {
            writeln!(f, "\nseries:")?;
            for s in &self.series {
                let head: Vec<String> =
                    s.values.iter().take(8).map(|v| format!("{v:.6}")).collect();
                let ellipsis = if s.values.len() > 8 { ", …" } else { "" };
                writeln!(
                    f,
                    "  {:<40} [{} values] {}{}",
                    s.name,
                    s.values.len(),
                    head.join(", "),
                    ellipsis
                )?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "\nhistograms:")?;
            for h in &self.histograms {
                writeln!(
                    f,
                    "  {:<40} n={} min={:.6} mean={:.6} max={:.6} p50={:.6} p90={:.6} p99={:.6}",
                    h.name, h.count, h.min, h.mean, h.max, h.p50, h.p90, h.p99
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_report() -> RunReport {
        let rec = RunRecorder::new();
        crate::time(&rec, "scoring", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        rec.add("scoring.scores_computed", 7);
        rec.gauge("calibration.threshold", 0.42);
        rec.push("cnn-train.epoch_loss", 1.5);
        rec.push("cnn-train.epoch_loss", 0.5);
        for i in 1..=100 {
            rec.observe("scoring.latency_secs", i as f64 / 100.0);
        }
        rec.report("test")
    }

    #[test]
    fn report_snapshot_contents() {
        let r = sample_report();
        assert_eq!(r.schema_version, REPORT_SCHEMA_VERSION);
        assert_eq!(r.command, "test");
        assert!(r.threads >= 1);
        assert_eq!(r.counter("scoring.scores_computed"), Some(7));
        assert_eq!(r.gauge("calibration.threshold"), Some(0.42));
        assert_eq!(
            r.series("cnn-train.epoch_loss").unwrap().values,
            vec![1.5, 0.5]
        );
        assert!(r.stage("scoring").unwrap().total_secs > 0.0);
        assert!(r.stage("absent").is_none());
    }

    #[test]
    fn histogram_quantiles_are_nearest_rank() {
        let r = sample_report();
        let h = r.histogram("scoring.latency_secs").unwrap();
        assert_eq!(h.count, 100);
        assert!((h.min - 0.01).abs() < 1e-6);
        assert!((h.max - 1.0).abs() < 1e-6);
        assert!((h.mean - 0.505).abs() < 1e-6);
        assert!((h.p50 - 0.50).abs() < 1e-6);
        assert!((h.p90 - 0.90).abs() < 1e-6);
        assert!((h.p99 - 0.99).abs() < 1e-6);
        assert_eq!(h.bin_counts.len(), 16);
        assert_eq!(h.bin_counts.iter().sum::<u64>(), 100);
    }

    #[test]
    fn degenerate_histogram_range_is_widened() {
        let rec = RunRecorder::new();
        rec.observe("lat", 2.0);
        rec.observe("lat", 2.0);
        let h = rec.report("t");
        let h = h.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.lo < 2.0 && h.hi > 2.0);
        assert_eq!(h.bin_counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn non_finite_samples_are_dropped_not_fatal() {
        let rec = RunRecorder::new();
        rec.observe("lat", f64::NAN);
        rec.observe("lat", 1.0);
        let r = rec.report("t");
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.count, 1);
        // And the report still serializes (vendored serde_json rejects NaN).
        assert!(r.to_json().is_ok());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = summarize("x", &[]);
        assert_eq!(h.count, 0);
        assert_eq!(h.bin_counts, vec![0; HISTOGRAM_BINS]);
    }

    #[test]
    fn json_round_trip() {
        let r = sample_report();
        let json = r.to_json().unwrap();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let mut r = sample_report();
        r.schema_version = REPORT_SCHEMA_VERSION + 1;
        let json = r.to_json().unwrap();
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn save_load_round_trip() {
        let r = sample_report();
        let dir = std::env::temp_dir().join(format!("obs-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        r.save(&path).unwrap();
        assert_eq!(RunReport::load(&path).unwrap(), r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_stages_detects_absent_and_zero_time() {
        let rec = RunRecorder::new();
        crate::time(&rec, "vbp", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        rec.record_span("calibration.inner", 0.001);
        rec.record_span("scoring", 0.0);
        let r = rec.report("t");
        let missing = r.missing_stages(&["vbp", "calibration", "scoring", "ae-train"]);
        assert_eq!(missing, vec!["scoring".to_string(), "ae-train".to_string()]);
    }

    #[test]
    fn display_pretty_prints_all_sections() {
        let text = sample_report().to_string();
        for needle in ["stages", "counters", "gauges", "series", "histograms"] {
            assert!(text.contains(needle), "missing section {needle}");
        }
        assert!(text.contains("scoring.scores_computed"));
    }
}
