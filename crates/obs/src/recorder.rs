//! The [`Recorder`] trait and its two implementations.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// The instrumentation sink.
///
/// Instrumented code calls these methods unconditionally; implementations
/// decide what (if anything) to keep. All methods take `&self` so one
/// recorder can be shared across the worker threads of
/// [`ndtensor::par`].
///
/// Probe names are dotted paths (`"scoring.latency_secs"`); the first
/// segment conventionally names the pipeline stage.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// `false` when every probe is a no-op. Instrumented code uses this
    /// to skip clock reads and other probe-only work; it must never
    /// change *what* is computed.
    fn enabled(&self) -> bool;

    /// Increments a monotonic counter.
    fn add(&self, counter: &str, delta: u64);

    /// Sets a gauge to its latest value (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Records one sample into a latency/value histogram.
    fn observe(&self, histogram: &str, value: f64);

    /// Appends one value to an ordered series (e.g. per-epoch losses).
    fn push(&self, series: &str, value: f64);

    /// Records one completed span: `wall_secs` of wall-clock time under
    /// the dotted `path`. Called by [`Span`]; rarely called directly.
    fn record_span(&self, path: &str, wall_secs: f64);
}

/// The default sink: records nothing, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&self, _counter: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn observe(&self, _histogram: &str, _value: f64) {}
    fn push(&self, _series: &str, _value: f64) {}
    fn record_span(&self, _path: &str, _wall_secs: f64) {}
}

static NOOP: NoopRecorder = NoopRecorder;

/// The shared no-op recorder, for call sites without instrumentation.
pub fn noop() -> &'static NoopRecorder {
    &NOOP
}

/// Aggregate of one span path: invocation count and total wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct SpanAgg {
    pub count: u64,
    pub total_secs: f64,
}

/// Everything one run recorded, keyed by probe name.
///
/// `BTreeMap` keeps report ordering deterministic.
#[derive(Debug, Default)]
pub(crate) struct RunState {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub samples: BTreeMap<String, Vec<f64>>,
    pub series: BTreeMap<String, Vec<f64>>,
    pub spans: BTreeMap<String, SpanAgg>,
}

/// A thread-safe recorder that aggregates everything in memory, to be
/// snapshotted into a [`crate::RunReport`] at the end of the run.
#[derive(Debug, Default)]
pub struct RunRecorder {
    state: Mutex<RunState>,
}

impl RunRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_state<T>(&self, f: impl FnOnce(&mut RunState) -> T) -> T {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut state)
    }

    pub(crate) fn snapshot<T>(&self, f: impl FnOnce(&RunState) -> T) -> T {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f(&state)
    }
}

impl Recorder for RunRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: &str, delta: u64) {
        self.with_state(|s| *s.counters.entry(counter.to_string()).or_insert(0) += delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.with_state(|s| {
            s.gauges.insert(name.to_string(), value);
        });
    }

    fn observe(&self, histogram: &str, value: f64) {
        self.with_state(|s| {
            s.samples
                .entry(histogram.to_string())
                .or_default()
                .push(value)
        });
    }

    fn push(&self, series: &str, value: f64) {
        self.with_state(|s| s.series.entry(series.to_string()).or_default().push(value));
    }

    fn record_span(&self, path: &str, wall_secs: f64) {
        self.with_state(|s| {
            let agg = s.spans.entry(path.to_string()).or_default();
            agg.count += 1;
            agg.total_secs += wall_secs;
        });
    }
}

/// An RAII wall-clock timer. On drop (or [`Span::finish`]) it records its
/// elapsed time under its dotted path; children extend the path, so
/// nested spans aggregate as `parent`, `parent.child`, ….
///
/// With a disabled recorder the span never reads the clock and never
/// builds its path string.
#[derive(Debug)]
pub struct Span<'r> {
    recorder: &'r dyn Recorder,
    /// `None` when the recorder is disabled.
    path: Option<String>,
    start: Option<Instant>,
}

impl<'r> Span<'r> {
    /// Starts a top-level span named `name`.
    pub fn root(recorder: &'r dyn Recorder, name: &str) -> Span<'r> {
        if recorder.enabled() {
            Span {
                recorder,
                path: Some(name.to_string()),
                start: Some(Instant::now()),
            }
        } else {
            Span {
                recorder,
                path: None,
                start: None,
            }
        }
    }

    /// Starts a child span recorded under `self`'s path plus `.name`.
    ///
    /// The child borrows nothing from the parent besides the recorder, so
    /// it may outlive sibling work but must end before the parent's
    /// lifetime `'r` does.
    pub fn child(&self, name: &str) -> Span<'r> {
        match &self.path {
            Some(parent) => Span {
                recorder: self.recorder,
                path: Some(format!("{parent}.{name}")),
                start: Some(Instant::now()),
            },
            None => Span {
                recorder: self.recorder,
                path: None,
                start: None,
            },
        }
    }

    /// Ends the span now, recording its wall time (same as dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let (Some(path), Some(start)) = (self.path.take(), self.start.take()) {
            self.recorder
                .record_span(&path, start.elapsed().as_secs_f64());
        }
    }
}

/// An adapter that prefixes every probe name with `prefix.`, so a
/// callee's metrics land in the caller's namespace (e.g. `neural::fit`'s
/// `epoch_loss` series becomes `cnn-train.epoch_loss`).
#[derive(Debug)]
pub struct Scoped<'r> {
    inner: &'r dyn Recorder,
    prefix: String,
}

impl<'r> Scoped<'r> {
    /// Wraps `inner`, prefixing every probe name with `prefix.`.
    pub fn new(inner: &'r dyn Recorder, prefix: &str) -> Scoped<'r> {
        Scoped {
            inner,
            prefix: prefix.to_string(),
        }
    }

    fn scoped(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }
}

impl Recorder for Scoped<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn add(&self, counter: &str, delta: u64) {
        if self.inner.enabled() {
            self.inner.add(&self.scoped(counter), delta);
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        if self.inner.enabled() {
            self.inner.gauge(&self.scoped(name), value);
        }
    }

    fn observe(&self, histogram: &str, value: f64) {
        if self.inner.enabled() {
            self.inner.observe(&self.scoped(histogram), value);
        }
    }

    fn push(&self, series: &str, value: f64) {
        if self.inner.enabled() {
            self.inner.push(&self.scoped(series), value);
        }
    }

    fn record_span(&self, path: &str, wall_secs: f64) {
        if self.inner.enabled() {
            self.inner.record_span(&self.scoped(path), wall_secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let rec = noop();
        assert!(!rec.enabled());
        rec.add("c", 1);
        rec.gauge("g", 1.0);
        rec.observe("h", 1.0);
        rec.push("s", 1.0);
        let span = Span::root(rec, "stage");
        // Disabled spans never build a path or read the clock.
        assert!(span.path.is_none() && span.start.is_none());
        let child = span.child("inner");
        assert!(child.path.is_none());
        child.finish();
        span.finish();
    }

    #[test]
    fn run_recorder_aggregates_counters_gauges_series() {
        let rec = RunRecorder::new();
        assert!(rec.enabled());
        rec.add("jobs", 2);
        rec.add("jobs", 3);
        rec.gauge("threshold", 0.5);
        rec.gauge("threshold", 0.7); // last write wins
        rec.push("loss", 1.0);
        rec.push("loss", 0.5);
        rec.observe("lat", 0.1);
        rec.snapshot(|s| {
            assert_eq!(s.counters["jobs"], 5);
            assert_eq!(s.gauges["threshold"], 0.7);
            assert_eq!(s.series["loss"], vec![1.0, 0.5]);
            assert_eq!(s.samples["lat"], vec![0.1]);
        });
    }

    #[test]
    fn span_nesting_builds_dotted_paths() {
        let rec = RunRecorder::new();
        {
            let outer = Span::root(&rec, "train");
            {
                let inner = outer.child("fit");
                let deepest = inner.child("epoch");
                std::thread::sleep(std::time::Duration::from_millis(2));
                deepest.finish();
                inner.finish();
            }
            outer.finish();
        }
        rec.snapshot(|s| {
            assert_eq!(s.spans["train"].count, 1);
            assert_eq!(s.spans["train.fit"].count, 1);
            assert_eq!(s.spans["train.fit.epoch"].count, 1);
            // A parent's wall time covers its children's.
            assert!(s.spans["train"].total_secs >= s.spans["train.fit"].total_secs);
            assert!(s.spans["train.fit"].total_secs >= s.spans["train.fit.epoch"].total_secs);
            assert!(s.spans["train.fit.epoch"].total_secs > 0.0);
        });
    }

    #[test]
    fn repeated_spans_accumulate() {
        let rec = RunRecorder::new();
        for _ in 0..3 {
            crate::time(&rec, "step", || std::hint::black_box(1 + 1));
        }
        rec.snapshot(|s| {
            assert_eq!(s.spans["step"].count, 3);
            assert!(s.spans["step"].total_secs > 0.0);
        });
    }

    #[test]
    fn scoped_prefixes_every_probe() {
        let rec = RunRecorder::new();
        let scoped = Scoped::new(&rec, "cnn-train");
        assert!(scoped.enabled());
        scoped.add("epochs", 1);
        scoped.push("epoch_loss", 0.25);
        scoped.gauge("lr", 1e-3);
        scoped.observe("lat", 0.2);
        Span::root(&scoped, "fit").finish();
        rec.snapshot(|s| {
            assert_eq!(s.counters["cnn-train.epochs"], 1);
            assert_eq!(s.series["cnn-train.epoch_loss"], vec![0.25]);
            assert_eq!(s.gauges["cnn-train.lr"], 1e-3);
            assert_eq!(s.samples["cnn-train.lat"], vec![0.2]);
            assert_eq!(s.spans["cnn-train.fit"].count, 1);
        });
        // Scoped over a disabled recorder stays disabled.
        let dead = Scoped::new(noop(), "x");
        assert!(!dead.enabled());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = RunRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.add("hits", 1);
                    }
                });
            }
        });
        rec.snapshot(|s| assert_eq!(s.counters["hits"], 400));
    }
}
