//! Bridge from [`ndtensor::par`]'s always-on pool counters into a
//! [`Recorder`].
//!
//! `ndtensor` sits below `obs` in the crate graph, so it cannot record
//! into a `Recorder` directly; instead its pool keeps cheap global
//! atomics ([`ndtensor::par::ParStats`]) and observers diff snapshots
//! around the region they care about.

use crate::Recorder;
use ndtensor::par::{stats, thread_config, ParStats};

/// Takes a pool-stats snapshot to later diff with [`record_par_delta`].
pub fn par_snapshot() -> ParStats {
    stats()
}

/// Records the pool activity since `before` as `par.*` counters plus a
/// `par.pool_utilization` gauge (mean fraction of the configured pool
/// actually used per parallel job; 0 when no job went parallel).
///
/// No-op when the recorder is disabled.
pub fn record_par_delta(recorder: &dyn Recorder, before: ParStats) {
    if !recorder.enabled() {
        return;
    }
    let d = stats().since(before);
    recorder.add("par.jobs", d.jobs);
    recorder.add("par.serial_jobs", d.serial_jobs);
    recorder.add("par.parallel_jobs", d.parallel_jobs);
    recorder.add("par.tasks_dispatched", d.tasks_dispatched);
    recorder.add("par.items_processed", d.items_processed);
    let pool = thread_config().threads() as f64;
    let utilization = if d.parallel_jobs > 0 && pool > 0.0 {
        d.tasks_dispatched as f64 / (d.parallel_jobs as f64 * pool)
    } else {
        0.0
    };
    recorder.gauge("par.pool_utilization", utilization);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunRecorder;

    #[test]
    fn delta_lands_in_recorder() {
        let rec = RunRecorder::new();
        let before = par_snapshot();
        // A job below the parallel threshold still counts as a job.
        ndtensor::par::for_each_block(&mut [0.0f32; 8], 1, 1, |_, _| {});
        record_par_delta(&rec, before);
        let report = rec.report("t");
        assert!(report.counter("par.jobs").unwrap_or(0) >= 1);
        assert!(report.counter("par.items_processed").unwrap_or(0) >= 8);
        assert!(report.gauge("par.pool_utilization").is_some());
    }

    #[test]
    fn disabled_recorder_skips_the_snapshot_diff() {
        let before = par_snapshot();
        record_par_delta(crate::noop(), before);
        // Nothing to assert beyond "does not panic": noop keeps nothing.
    }
}
