#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! Observability for the train→saliency→novelty pipeline.
//!
//! The paper's framework is a runtime safety monitor; a deployed monitor
//! needs to be observable itself. This crate provides the plumbing:
//!
//! * [`Recorder`] — the instrumentation sink trait. Instrumented code
//!   (the novelty pipeline, `neural::fit`, VBP batching) writes counters,
//!   gauges, per-epoch series, latency samples and span wall-times into a
//!   recorder without knowing what backs it.
//! * [`NoopRecorder`] — the default sink. Every method is an empty body
//!   and [`Recorder::enabled`] is `false`, so instrumented code skips even
//!   the clock reads; overhead with recording off is a branch per probe.
//! * [`RunRecorder`] — the real sink: thread-safe aggregation of
//!   everything recorded during one run.
//! * [`Span`] — RAII wall-clock timers with dotted-path nesting
//!   (`train.cnn-train.fit`).
//! * [`Scoped`] — a prefixing adapter so a callee's metrics land under
//!   the caller's namespace.
//! * [`RunReport`] — the serializable snapshot of a [`RunRecorder`]:
//!   per-stage wall-times, counters, gauges, series, and latency
//!   histograms (bucketed with [`metrics::histogram::Histogram`],
//!   quantiled with [`metrics::ecdf::Ecdf`]). Round-trips through the
//!   vendored `serde_json`; `BENCH_*.json` and `--obs-out` files share
//!   this schema so perf trajectories are comparable across PRs.
//!
//! # Invariant: observation never perturbs results
//!
//! Recorders only *observe*. Nothing in this crate feeds back into any
//! computation, so detector JSON and novelty scores are bit-identical
//! with recording on or off, at any thread count (enforced by
//! `tests/observability.rs`).
//!
//! # Example
//!
//! ```
//! use obs::{Recorder, RunRecorder, Span};
//!
//! let rec = RunRecorder::new();
//! {
//!     let span = Span::root(&rec, "scoring");
//!     rec.add("scoring.scores_computed", 3);
//!     rec.observe("scoring.latency_secs", 0.002);
//!     span.finish();
//! }
//! let report = rec.report("demo");
//! assert_eq!(report.counter("scoring.scores_computed"), Some(3));
//! assert!(report.stage("scoring").unwrap().total_secs > 0.0);
//! ```

mod autotune;
mod error;
mod par_stats;
mod recorder;
mod report;
mod scratch_stats;
mod stopwatch;

pub use autotune::install_kernel_timer;
pub use error::ObsError;
pub use par_stats::{par_snapshot, record_par_delta};
pub use recorder::{noop, NoopRecorder, Recorder, RunRecorder, Scoped, Span};
pub use report::{
    CounterReport, GaugeReport, HistogramReport, RunReport, SeriesReport, StageReport,
    REPORT_SCHEMA_VERSION,
};
pub use scratch_stats::{record_scratch_delta, scratch_snapshot};
pub use stopwatch::Stopwatch;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ObsError>;

/// Times a closure under a root span on `recorder`.
///
/// Equivalent to wrapping `f()` in [`Span::root`]/[`Span::finish`].
pub fn time<T>(recorder: &dyn Recorder, name: &str, f: impl FnOnce() -> T) -> T {
    let span = Span::root(recorder, name);
    let out = f();
    span.finish();
    out
}
