//! Cross-domain scenario-matrix benchmark.
//!
//! Trains one detector per scenario domain (a `simdrive::ModifierStack`
//! spec over the outdoor world) and scores every domain's test set with
//! every detector, emitting the full train-domain × score-domain grid —
//! per-cell AUROC, threshold-exceedance rate and mean SSIM — as
//! schema-versioned `BENCH_evalgrid.json` (see `novelty::evalgrid`).
//!
//! Usage:
//!   evalgrid [--out PATH] [--seed N] [--quick] [--ensemble]
//!            [--domains name=spec,name=spec,...] [--check-separation]
//!
//! `--ensemble` trains every registered score backend per domain (on a
//! shared steering CNN) and reports per-backend columns plus the fused
//! majority-vote verdict; without it the sizing preset decides (quick =
//! vbp+ssim only, full = all backends fused).
//!
//! `--check-separation` exits non-zero unless the on-diagonal mean
//! AUROC is below the off-diagonal mean AUROC — the grid-level form of
//! the paper's separation claim, used as a CI gate. The run is a pure
//! function of `--seed`: CI runs it twice and byte-compares the JSON.

use novelty::evalgrid::{run_evalgrid, GridConfig, GridDomain};

fn default_domains() -> Vec<GridDomain> {
    vec![
        GridDomain::new("clear", "clear"),
        GridDomain::new("fog", "fog@0.8"),
        GridDomain::new("night", "night@0.7"),
        GridDomain::new("stormdusk", "rain@0.8+fog@0.4+night@0.5"),
    ]
}

fn parse_domains(arg: &str) -> Result<Vec<GridDomain>, String> {
    let mut out = Vec::new();
    for part in arg.split(',').filter(|p| !p.is_empty()) {
        let (name, spec) = part
            .split_once('=')
            .ok_or_else(|| format!("domain `{part}` is not name=spec"))?;
        out.push(GridDomain::new(name, spec));
    }
    if out.is_empty() {
        return Err("--domains list is empty".to_string());
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_evalgrid.json".to_string();
    let mut seed = 17u64;
    let mut quick = false;
    let mut ensemble = false;
    let mut check_separation = false;
    let mut domains = default_domains();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or_else(|e| {
                    eprintln!("evalgrid: bad --seed: {e}");
                    std::process::exit(2);
                });
                i += 1;
            }
            "--domains" if i + 1 < args.len() => {
                domains = parse_domains(&args[i + 1]).unwrap_or_else(|e| {
                    eprintln!("evalgrid: {e}");
                    std::process::exit(2);
                });
                i += 1;
            }
            "--quick" => quick = true,
            "--ensemble" => ensemble = true,
            "--check-separation" => check_separation = true,
            other => {
                eprintln!("evalgrid: unknown argument `{other}`");
                eprintln!(
                    "usage: evalgrid [--out PATH] [--seed N] [--quick] [--ensemble] \
                     [--domains name=spec,...] [--check-separation]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut cfg = if quick {
        GridConfig::quick(seed)
    } else {
        GridConfig::full(seed)
    };
    if ensemble {
        cfg = cfg.with_ensemble();
    }
    eprintln!(
        "evalgrid: {} domains, {} backends (ensemble {}), {} train / {} test frames, \
         {}x{}, seed {seed}",
        domains.len(),
        cfg.backends.len(),
        cfg.ensemble,
        cfg.train_len,
        cfg.test_len,
        cfg.height,
        cfg.width
    );

    let sink = bench::ObsSink::from_env();
    let report = run_evalgrid(&domains, &cfg, sink.recorder()).unwrap_or_else(|e| {
        eprintln!("evalgrid: {e}");
        std::process::exit(1);
    });
    sink.flush("evalgrid");

    println!("{}", report.render_table());

    let json = report.to_json().expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("report is written");
    eprintln!("evalgrid: wrote {out_path}");

    if check_separation {
        let diag = report.diagonal_mean_auroc();
        let off = report.off_diagonal_mean_auroc();
        if diag < off {
            eprintln!("evalgrid: separation holds (diagonal {diag:.3} < off-diagonal {off:.3})");
        } else {
            eprintln!("evalgrid: SEPARATION FAILED (diagonal {diag:.3} >= off-diagonal {off:.3})");
            std::process::exit(1);
        }
    }
}
