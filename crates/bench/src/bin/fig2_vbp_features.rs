//! Experiment E1 — reproduces **Figure 2**: are VBP masks tied to
//! *learned* features?
//!
//! The paper trains the steering CNN twice — once with real steering
//! angles, once with random angles — and shows qualitatively that only
//! the properly-trained network's VBP masks highlight road features.
//!
//! We quantify the comparison on the synthetic substrate: the renderer
//! provides analytic ground truth for the road-edge band and lane
//! markings, so we measure each network's *concentration ratio* (fraction
//! of VBP mass on road-relevant pixels over that region's area fraction;
//! 1.0 = chance) plus the structural similarity between the two
//! networks' masks.
//!
//! **Honest finding (see EXPERIMENTS.md):** on this substrate the effect
//! is much weaker than the paper's panels suggest. Our compact CNN can
//! learn steering from edge features that are already present at random
//! initialisation, so supervised training barely reshapes the conv stack
//! that VBP reads — trained and random-label masks stay similar. The
//! qualitative panels are still produced for inspection, and the numbers
//! below report whatever difference exists.

use bench::{dump_pgm, outdoor_dataset, print_header, Scale};
use metrics::{ssim, SsimConfig};
use novelty::NoveltyDetectorBuilder;
use saliency::mask::{concentration_ratio, overlay};
use saliency::visual_backprop;
use simdrive::region_masks;
use vision::Image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    print_header(
        "fig2_vbp_features",
        "Figure 2 (VBP tied to learned features)",
        scale,
    );

    let data = outdoor_dataset(scale, scale.train_len(), 0xF162);
    let (train, test) = data.split(0.8);
    let builder = NoveltyDetectorBuilder::paper()
        .cnn_epochs(scale.cnn_epochs())
        .seed(2);

    println!(
        "training steering CNN on real angles ({} frames)…",
        train.len()
    );
    let trained = builder.train_steering_cnn(&train)?;
    println!("training steering CNN on random angles (control)…");
    let control = builder.train_steering_cnn(&train.with_random_angles(99))?;

    let probe = test.sample(scale.test_len().min(test.len()), 7);
    let mut conc_trained = 0.0f32;
    let mut conc_random = 0.0f32;
    let mut mask_similarity = 0.0f32;
    for frame in probe.frames() {
        let regions = region_masks(&frame.scene, frame.image.height(), frame.image.width());
        // "Road-relevant" = edge band ∪ painted markings (the features the
        // paper's Fig. 2 points at).
        let relevant = Image::from_fn(frame.image.height(), frame.image.width(), |y, x| {
            regions.edge_band.get(y, x).max(regions.markings.get(y, x))
        })?;
        let mask_t = visual_backprop(&trained, &frame.image)?;
        let mask_r = visual_backprop(&control, &frame.image)?;
        conc_trained += concentration_ratio(&mask_t, &relevant, 0.5)?;
        conc_random += concentration_ratio(&mask_r, &relevant, 0.5)?;
        mask_similarity += ssim(&mask_t, &mask_r, &SsimConfig::default())?;
    }
    let n = probe.len() as f32;
    let (ct, cr, sim) = (conc_trained / n, conc_random / n, mask_similarity / n);

    println!();
    println!("VBP saliency concentration on road-relevant pixels (edge band + markings)");
    println!(
        "(mass fraction / area fraction; 1.0 = chance)  n = {}",
        probe.len()
    );
    println!();
    println!("  network trained on        mean concentration");
    println!("  ---------------------     ------------------");
    println!("  actual steering angles    {ct:>18.2}");
    println!("  random steering angles    {cr:>18.2}");
    println!();
    println!("  lift of trained over random: {:.2}x", ct / cr.max(1e-6));
    println!("  mean SSIM between the two networks' masks: {sim:.2}");
    println!();
    println!("  paper: trained masks show road edges, random-label masks are unstructured.");
    println!("  here: the compact CNN solves steering with near-initialisation conv");
    println!("  features, so both masks remain generic edge responses (similarity {sim:.2});");
    println!("  the claim reproduces only weakly on this substrate — see EXPERIMENTS.md.");

    // Qualitative panel, as in the figure: input / random-mask / trained-mask.
    let example = &probe.frames()[0];
    let mask_t = visual_backprop(&trained, &example.image)?;
    let mask_r = visual_backprop(&control, &example.image)?;
    for (name, img) in [
        ("fig2_input", &example.image),
        ("fig2_mask_random", &mask_r),
        ("fig2_mask_trained", &mask_t),
    ] {
        if let Some(p) = dump_pgm(name, img) {
            println!("  wrote {}", p.display());
        }
    }
    if let Ok(rgb) = overlay(&example.image, &mask_t) {
        if let Some(p) = bench::dump_ppm("fig2_overlay_trained", &rgb) {
            println!("  wrote {}", p.display());
        }
    }
    Ok(())
}
