//! Experiment E4 — reproduces **Figure 5**: the three-way histogram
//! comparison on cross-dataset novelty.
//!
//! Protocol (paper §IV.B.2): train on 80 % of the outdoor (DSU stand-in)
//! dataset; test on 500 held-out outdoor frames (target class) and 500
//! indoor (DSI stand-in) frames (novel class); repeat for the three
//! pipelines:
//!
//! * raw images + MSE autoencoder (Richter & Roy baseline — left panel),
//! * VBP masks + MSE autoencoder (middle panel),
//! * VBP masks + SSIM autoencoder (the paper's method — right panel).
//!
//! Expected shape: the baseline's histograms overlap, VBP+MSE separates
//! better, VBP+SSIM separates completely (target mean SSIM ≈ 0.7, novel
//! ≈ 0, all novel samples past the 99th-percentile threshold).

use bench::{
    images_of, indoor_dataset, outdoor_dataset, print_eval_report, print_header, ObsSink, Scale,
};
use neural::serialize::clone_network;
use novelty::eval::evaluate_recorded;
use novelty::{BackendKind, NoveltyDetectorBuilder, Preprocessing};
use obs::Scoped;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let sink = ObsSink::from_env();
    print_header(
        "fig5_dataset_comparison",
        "Figure 5 (dataset comparison)",
        scale,
    );

    let outdoor = outdoor_dataset(scale, scale.train_len() + scale.test_len(), 0xF165);
    let indoor = indoor_dataset(scale, scale.test_len(), 0xF166);
    let (train, held_out) = outdoor.split(scale.train_len() as f32 / outdoor.len() as f32);
    let target_images = images_of(&held_out.sample(scale.test_len(), 50));
    let novel_images = images_of(&indoor.sample(scale.test_len(), 51));
    println!(
        "train {} outdoor frames | test {} outdoor (target) + {} indoor (novel)",
        train.len(),
        target_images.len(),
        novel_images.len()
    );
    println!();

    // One steering CNN shared by both VBP pipelines (the representation
    // under test is the same; only the autoencoder objective differs).
    let base = NoveltyDetectorBuilder::paper()
        .cnn_epochs(scale.cnn_epochs())
        .ae_epochs(scale.ae_epochs())
        .train_fraction(1.0)
        .seed(5);
    println!("training shared steering CNN…");
    let cnn = base.train_steering_cnn_recorded(&train, sink.recorder())?;

    let mut summary = Vec::new();
    for kind in BackendKind::legacy() {
        let builder = NoveltyDetectorBuilder::for_kind(kind)
            .cnn_epochs(scale.cnn_epochs())
            .ae_epochs(scale.ae_epochs())
            .train_fraction(1.0)
            .seed(5);
        println!("training {} pipeline…", kind.name());
        let pretrained = match builder.kind() {
            BackendKind::RawMse => None,
            _ => Some(clone_network(&cnn)?),
        };
        // Probes from each pipeline land under its own prefix, so one
        // report distinguishes the three runs.
        let scoped = Scoped::new(sink.recorder(), kind.name());
        let detector = builder.train_with_cnn_recorded(&train, pretrained, &scoped)?;
        debug_assert_eq!(
            detector.preprocessing() == Some(Preprocessing::Vbp),
            kind != BackendKind::RawMse
        );
        let report = evaluate_recorded(&detector, &target_images, &novel_images, &scoped)?;
        print_eval_report(&format!("[{}]", kind.name()), &report, 20);
        summary.push((kind, report));
    }

    println!("Figure 5 summary (paper: separation improves left→right, VBP+SSIM separates fully)");
    println!("  pipeline    AUROC   overlap   target mean   novel mean   novel detected @99th pct");
    for (kind, r) in &summary {
        println!(
            "  {:<9} {:>6.3}   {:>7.3}   {:>11.4}   {:>10.4}   {:>6.1}%",
            kind.name(),
            r.separation.auroc,
            r.separation.overlap,
            r.separation.target_mean,
            r.separation.novel_mean,
            r.novel_detection_rate * 100.0
        );
    }
    sink.flush("fig5_dataset_comparison");
    Ok(())
}
