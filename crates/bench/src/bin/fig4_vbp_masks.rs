//! Experiment E3 — reproduces **Figure 4**: example VBP masks for both
//! datasets.
//!
//! The paper shows, for one frame of each dataset (DSI and DSU), the
//! input image, its VBP mask, and the mask overlaid on the input, and
//! argues the activations are where a human driver would look.
//!
//! We train a compact steering CNN per world, dump the same three-panel
//! stack as PGM/PPM files, and report the quantitative counterpart: the
//! concentration of mask mass on ground-truth lane pixels.

use bench::{dump_pgm, dump_ppm, print_header, world_dataset, Scale};
use novelty::NoveltyDetectorBuilder;
use saliency::mask::{area_fraction, concentration_ratio, mass_fraction_on, overlay};
use saliency::visual_backprop;
use simdrive::World;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    print_header("fig4_vbp_masks", "Figure 4 (VBP mask examples)", scale);

    for world in [World::Indoor, World::Outdoor] {
        let data = world_dataset(world, scale, scale.train_len(), 0xF164);
        let (train, test) = data.split(0.8);
        println!("[{world}] training steering CNN ({} frames)…", train.len());
        let cnn = NoveltyDetectorBuilder::paper()
            .cnn_epochs(scale.cnn_epochs())
            .seed(4)
            .train_steering_cnn(&train)?;

        let frame = &test.frames()[0];
        let mask = visual_backprop(&cnn, &frame.image)?;
        let over = overlay(&frame.image, &mask)?;

        let mass = mass_fraction_on(&mask, &frame.lane_mask, 0.5)?;
        let area = area_fraction(&frame.lane_mask, 0.5);
        let conc = concentration_ratio(&mask, &frame.lane_mask, 0.5)?;
        println!(
            "[{world}] mask mass on lane pixels: {:.1}% (lane area {:.1}% → concentration {conc:.2}x)",
            mass * 100.0,
            area * 100.0
        );

        for (suffix, img) in [("input", &frame.image), ("mask", &mask)] {
            if let Some(p) = dump_pgm(&format!("fig4_{world}_{suffix}"), img) {
                println!("  wrote {}", p.display());
            }
        }
        if let Some(p) = dump_ppm(&format!("fig4_{world}_overlay"), &over) {
            println!("  wrote {}", p.display());
        }
        println!();
    }
    println!("(paper: qualitative — masks highlight lane markings / road edges in both datasets)");
    Ok(())
}
