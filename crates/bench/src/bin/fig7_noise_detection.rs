//! Experiment E6 — reproduces **Figure 7**: detecting *noisy* versions of
//! in-distribution images.
//!
//! Protocol (paper §IV.B.3): the novel set is the target dataset itself
//! with Gaussian noise added; images pass through VBP (whose masks of
//! noisy images come out garbled) and are scored by the autoencoder under
//! both MSE and SSIM. The paper finds MSE cannot separate the clean and
//! noisy distributions while SSIM can, and that the separation is smaller
//! than the cross-dataset case of Fig. 5 (some lane features survive the
//! noise).

use bench::{images_of, outdoor_dataset, print_eval_report, print_header, Scale};
use neural::serialize::clone_network;
use novelty::eval::evaluate;
use novelty::{BackendKind, NoveltyDetectorBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vision::perturb;

const NOISE_SIGMA: f32 = 0.30;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    print_header(
        "fig7_noise_detection",
        "Figure 7 (noise-novelty histograms)",
        scale,
    );

    let outdoor = outdoor_dataset(scale, scale.train_len() + scale.test_len(), 0xF169);
    let (train, held_out) = outdoor.split(scale.train_len() as f32 / outdoor.len() as f32);
    let clean = held_out.sample(scale.test_len(), 70);
    let mut rng = StdRng::seed_from_u64(71);
    let noisy = clean.map_images(|img| {
        perturb::add_gaussian_noise(img, &mut rng, NOISE_SIGMA)
            .expect("non-negative sigma is always valid")
    });
    let clean_images = images_of(&clean);
    let noisy_images = images_of(&noisy);
    println!(
        "train {} outdoor frames | test {} clean vs {} noisy (σ = {NOISE_SIGMA})",
        train.len(),
        clean_images.len(),
        noisy_images.len()
    );
    println!();

    let base = NoveltyDetectorBuilder::paper()
        .cnn_epochs(scale.cnn_epochs())
        .ae_epochs(scale.ae_epochs())
        .train_fraction(1.0)
        .seed(7);
    println!("training shared steering CNN…");
    let cnn = base.train_steering_cnn(&train)?;

    let mut summary = Vec::new();
    // The figure compares MSE vs SSIM on VBP images; the paper notes the
    // raw-image MSE result is similar to the VBP+MSE panel, so we include
    // all three.
    for kind in [
        BackendKind::VbpMse,
        BackendKind::VbpSsim,
        BackendKind::RawMse,
    ] {
        let builder = NoveltyDetectorBuilder::for_kind(kind)
            .cnn_epochs(scale.cnn_epochs())
            .ae_epochs(scale.ae_epochs())
            .train_fraction(1.0)
            .seed(7);
        println!("training {} pipeline…", kind.name());
        let pretrained = match kind {
            BackendKind::RawMse => None,
            _ => Some(clone_network(&cnn)?),
        };
        let detector = builder.train_with_cnn(&train, pretrained)?;
        let report = evaluate(&detector, &clean_images, &noisy_images)?;
        print_eval_report(&format!("[{}] clean vs noisy", kind.name()), &report, 20);
        summary.push((kind, report));
    }

    println!("Figure 7 summary — paper: MSE fails, SSIM separates, gap smaller than Fig. 5.");
    println!("On this substrate the smaller-gap claim holds but the MSE/SSIM ordering");
    println!("inverts (the synthetic CNN is far more noise-robust); see EXPERIMENTS.md E6.");
    println!("  pipeline    AUROC   overlap   noisy detected @99th pct");
    for (kind, r) in &summary {
        println!(
            "  {:<9} {:>6.3}   {:>7.3}   {:>6.1}%",
            kind.name(),
            r.separation.auroc,
            r.separation.overlap,
            r.novel_detection_rate * 100.0
        );
    }
    Ok(())
}
