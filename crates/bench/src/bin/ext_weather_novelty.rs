//! Extension experiment E9 (ours) — novelty from *changed conditions in
//! the same world*.
//!
//! The paper's problem statement asks for detection of "altered, yet
//! similar images of a seen environment", but its evaluation only covers
//! a fully different dataset (Fig. 5) and synthetic noise (Fig. 7). This
//! experiment fills the gap: the detector trains on clear outdoor
//! driving and is then shown the *same* road in fog and rain — a milder,
//! more realistic distribution shift.
//!
//! Expected shape: detection rates between the Fig. 7 (noise) and Fig. 5
//! (cross-dataset) extremes, with fog (which erases distant road
//! structure that VBP relies on) harder to miss than rain.

use bench::{images_of, indoor_dataset, print_eval_report, print_header, Scale};
use novelty::eval::evaluate;
use novelty::NoveltyDetectorBuilder;
use simdrive::{DatasetConfig, Weather};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    print_header(
        "ext_weather_novelty",
        "extension E9: unseen weather in the training world",
        scale,
    );

    let make = |weather: Weather, len: usize, seed: u64| {
        DatasetConfig::outdoor()
            .with_len(len)
            .with_size(scale.height(), scale.width())
            .with_weather(weather)
            .generate(seed)
    };
    let clear = make(Weather::Clear, scale.train_len() + scale.test_len(), 0xE9);
    let (train, held_out) = clear.split(scale.train_len() as f32 / clear.len() as f32);
    let target_images = images_of(&held_out.sample(scale.test_len(), 60));

    println!(
        "training the paper's pipeline on {} clear outdoor frames…",
        train.len()
    );
    let detector = NoveltyDetectorBuilder::paper()
        .cnn_epochs(scale.cnn_epochs())
        .ae_epochs(scale.ae_epochs())
        .train_fraction(1.0)
        .seed(10)
        .train(&train)?;

    let mut rows = Vec::new();
    for weather in [Weather::Fog, Weather::Rain] {
        let shifted = make(weather, scale.test_len(), 0xE9 + weather as u64 + 1);
        let novel_images = images_of(&shifted);
        let report = evaluate(&detector, &target_images, &novel_images)?;
        print_eval_report(&format!("[clear vs {weather}]"), &report, 20);
        rows.push((weather.name(), report));
    }
    // Cross-dataset reference point at the same scale.
    let indoor = indoor_dataset(scale, scale.test_len(), 0xE99);
    let report = evaluate(&detector, &target_images, &images_of(&indoor))?;
    print_eval_report("[clear vs indoor (Fig. 5 reference)]", &report, 20);
    rows.push(("indoor", report));

    println!("weather-shift summary (ours; harder than noise, easier than cross-dataset)");
    println!("  novel condition   AUROC   overlap   detected @99th pct");
    for (name, r) in &rows {
        println!(
            "  {:<15} {:>6.3}   {:>7.3}   {:>6.1}%",
            name,
            r.separation.auroc,
            r.separation.overlap,
            r.novel_detection_rate * 100.0
        );
    }
    Ok(())
}
