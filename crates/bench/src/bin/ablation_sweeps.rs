//! Experiment A1 (ours) — ablation sweeps over the design choices
//! DESIGN.md calls out.
//!
//! The paper fixes three knobs without sweeping them; this binary
//! measures how sensitive the result is to each, holding everything else
//! at the paper's values:
//!
//! 1. **autoencoder bottleneck width** (paper: 64-16-64),
//! 2. **SSIM window size** (paper: 11×11),
//! 3. **threshold percentile** (paper: 99th) — trade-off between novel
//!    detection rate and false positives.
//!
//! All sweeps run the paper's pipeline (VBP+SSIM) on the cross-dataset
//! task at reduced sample counts (ablations need relative, not absolute,
//! numbers).

use bench::{images_of, indoor_dataset, outdoor_dataset, print_header, Scale};
use metrics::separation::detection_rate;
use neural::serialize::clone_network;
use novelty::eval::evaluate;
use novelty::{Calibrator, ClassifierConfig, NoveltyDetectorBuilder, ReconstructionObjective};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    print_header(
        "ablation_sweeps",
        "design-choice ablations (A1, ours)",
        scale,
    );

    let train_len = scale.train_len() / 2;
    let test_len = scale.test_len() / 2;
    let outdoor = outdoor_dataset(scale, train_len + test_len, 0xAB1);
    let indoor = indoor_dataset(scale, test_len, 0xAB2);
    let (train, held_out) = outdoor.split(train_len as f32 / outdoor.len() as f32);
    let target_images = images_of(&held_out.sample(test_len, 90));
    let novel_images = images_of(&indoor.sample(test_len, 91));

    let base = NoveltyDetectorBuilder::paper()
        .cnn_epochs(scale.cnn_epochs())
        .ae_epochs(scale.ae_epochs())
        .train_fraction(1.0)
        .seed(9);
    println!("training shared steering CNN…");
    let cnn = base.train_steering_cnn(&train)?;

    // ── Sweep 1: bottleneck width ────────────────────────────────────
    println!();
    println!("sweep 1: autoencoder bottleneck (hidden = [64, B, 64]; paper B = 16)");
    println!("  B     AUROC   overlap   target mean   novel mean");
    for bottleneck in [4usize, 8, 16, 32, 64] {
        let cfg = ClassifierConfig {
            hidden: vec![64, bottleneck, 64],
            epochs: scale.ae_epochs(),
            ..ClassifierConfig::paper()
        };
        let detector = base
            .clone()
            .classifier_config(cfg)
            .train_with_cnn(&train, Some(clone_network(&cnn)?))?;
        let r = evaluate(&detector, &target_images, &novel_images)?;
        println!(
            "  {bottleneck:<4} {:>6.3}   {:>7.3}   {:>11.4}   {:>10.4}",
            r.separation.auroc,
            r.separation.overlap,
            r.separation.target_mean,
            r.separation.novel_mean
        );
    }

    // ── Sweep 2: SSIM window ─────────────────────────────────────────
    println!();
    println!("sweep 2: SSIM window (paper: 11)");
    println!("  window   AUROC   overlap   target mean   novel mean");
    for window in [5usize, 7, 11, 17, 25] {
        let cfg = ClassifierConfig {
            epochs: scale.ae_epochs(),
            objective: ReconstructionObjective::Ssim { window },
            ..ClassifierConfig::paper()
        };
        let detector = base
            .clone()
            .classifier_config(cfg)
            .train_with_cnn(&train, Some(clone_network(&cnn)?))?;
        let r = evaluate(&detector, &target_images, &novel_images)?;
        println!(
            "  {window:<8} {:>5.3}   {:>7.3}   {:>11.4}   {:>10.4}",
            r.separation.auroc,
            r.separation.overlap,
            r.separation.target_mean,
            r.separation.novel_mean
        );
    }

    // ── Sweep 3: threshold percentile ────────────────────────────────
    println!();
    println!("sweep 3: threshold percentile (paper: 99; one detector, threshold re-calibrated)");
    let detector = base
        .clone()
        .ae_epochs(scale.ae_epochs())
        .train_with_cnn(&train, Some(clone_network(&cnn)?))?;
    let target_scores = detector.score_batch(&target_images)?;
    let novel_scores = detector.score_batch(&novel_images)?;
    println!("  percentile   threshold   novel detected   target FPR");
    for percentile in [90.0f32, 95.0, 99.0, 99.9] {
        let threshold = Calibrator::new(percentile)?
            .calibrate(detector.training_scores(), detector.threshold().direction())?;
        let orientation = threshold.direction().orientation();
        let dr = detection_rate(&novel_scores, threshold.value(), orientation)?;
        let fpr = detection_rate(&target_scores, threshold.value(), orientation)?;
        println!(
            "  {percentile:<12} {:>9.4}   {:>13.1}%   {:>9.1}%",
            threshold.value(),
            dr * 100.0,
            fpr * 100.0
        );
    }
    Ok(())
}
