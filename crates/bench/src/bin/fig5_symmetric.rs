//! Experiment E8 — reproduces the paper's §IV.B.3 closing remark: the
//! symmetric experiment (train on DSI, use DSU as novel data) yields
//! comparable results.
//!
//! Same protocol as `fig5_dataset_comparison` with the worlds swapped:
//! the indoor dataset is the target class, the outdoor dataset the novel
//! class. The paper notes DSU is the more varied dataset, so training on
//! the *less* varied DSI and rejecting DSU should remain easy, while
//! in-class SSIM is expected to be higher (the indoor world is more
//! structured).

use bench::{images_of, indoor_dataset, outdoor_dataset, print_eval_report, print_header, Scale};
use neural::serialize::clone_network;
use novelty::eval::evaluate;
use novelty::{BackendKind, NoveltyDetectorBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    print_header(
        "fig5_symmetric",
        "§IV.B.3 (train on DSI, novel = DSU)",
        scale,
    );

    let indoor = indoor_dataset(scale, scale.train_len() + scale.test_len(), 0xF170);
    let outdoor = outdoor_dataset(scale, scale.test_len(), 0xF171);
    let (train, held_out) = indoor.split(scale.train_len() as f32 / indoor.len() as f32);
    let target_images = images_of(&held_out.sample(scale.test_len(), 80));
    let novel_images = images_of(&outdoor.sample(scale.test_len(), 81));
    println!(
        "train {} indoor frames | test {} indoor (target) + {} outdoor (novel)",
        train.len(),
        target_images.len(),
        novel_images.len()
    );
    println!();

    let base = NoveltyDetectorBuilder::paper()
        .cnn_epochs(scale.cnn_epochs())
        .ae_epochs(scale.ae_epochs())
        .train_fraction(1.0)
        .seed(8);
    println!("training shared steering CNN…");
    let cnn = base.train_steering_cnn(&train)?;

    let mut summary = Vec::new();
    for kind in BackendKind::legacy() {
        let builder = NoveltyDetectorBuilder::for_kind(kind)
            .cnn_epochs(scale.cnn_epochs())
            .ae_epochs(scale.ae_epochs())
            .train_fraction(1.0)
            .seed(8);
        println!("training {} pipeline…", kind.name());
        let pretrained = match kind {
            BackendKind::RawMse => None,
            _ => Some(clone_network(&cnn)?),
        };
        let detector = builder.train_with_cnn(&train, pretrained)?;
        let report = evaluate(&detector, &target_images, &novel_images)?;
        print_eval_report(&format!("[{}]", kind.name()), &report, 20);
        summary.push((kind, report));
    }

    println!("symmetric-experiment summary (paper: comparable to Fig. 5)");
    println!("  pipeline    AUROC   overlap   target mean   novel mean   novel detected @99th pct");
    for (kind, r) in &summary {
        println!(
            "  {:<9} {:>6.3}   {:>7.3}   {:>11.4}   {:>10.4}   {:>6.1}%",
            kind.name(),
            r.separation.auroc,
            r.separation.overlap,
            r.separation.target_mean,
            r.separation.novel_mean,
            r.novel_detection_rate * 100.0
        );
    }
    Ok(())
}
