//! Machine-readable perf baseline for the scoring hot path.
//!
//! Emits `BENCH_pipeline.json`: kernel-level ns/iter for the GEMM
//! variants at pipeline-representative shapes, plus (schema v3) every
//! registered routine timed at each measured shape with the selector's
//! per-shape decision and autotune cache counters, plus end-to-end
//! single-thread `score_batch` and `StreamRuntime` frames/sec, plus
//! scratch-pool hit statistics, plus multi-tenant `StreamServer`
//! aggregate throughput at growing fleet sizes with the per-tenant
//! sequential baseline the coalesced batch must beat. The schema is
//! versioned so future PRs can diff trajectories mechanically.
//!
//! Usage:
//!   bench_pipeline [--out PATH] [--check PATH] [--quick]
//!
//! `--check PATH` loads a previously committed baseline and exits
//! non-zero if end-to-end frames/sec regressed more than 20% against it
//! (the CI bench-smoke gate). Baselines one schema generation older
//! (v2) are accepted: the gated fields exist unchanged in both layouts,
//! so comparisons stay like-for-like. `--quick` shrinks iteration
//! counts for smoke runs.

use std::hint::black_box;
use std::time::Instant;

use ndtensor::routines::{self, GemmOp};
use ndtensor::{
    matmul_a_bt_into, matmul_at_b_into, matmul_into, set_thread_config, Tensor, ThreadConfig,
};
use novelty::{
    ClassifierConfig, DecisionSource, NoveltyDetector, NoveltyDetectorBuilder, QueueConfig,
    ReconstructionObjective, StreamConfig, StreamRuntime, StreamServer, TenantSpec,
};
use serde::{Deserialize, Serialize};
use simdrive::DatasetConfig;
use vision::Image;

/// Bump on breaking changes to the JSON layout.
const BENCH_SCHEMA_VERSION: u32 = 3;

/// Oldest baseline schema `--check` still compares against: every gated
/// field (pipeline and serve frames/sec) is unchanged since v2.
const BENCH_SCHEMA_CHECK_FLOOR: u32 = 2;

/// One kernel microbenchmark result.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelBench {
    /// Kernel entry point measured.
    kernel: String,
    /// Human-readable shape, e.g. `m8 k25 n4212`.
    shape: String,
    /// Mean wall time per call, nanoseconds.
    ns_per_iter: f64,
}

/// One registered routine timed at one measured shape (schema v3),
/// through the same `routines::run_serial` body the autotuner measures.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RoutineBench {
    /// GEMM family (`matmul`, `matmul_at_b`, `matmul_a_bt`).
    op: String,
    /// Human-readable shape, e.g. `m32 k64 n9600`.
    shape: String,
    /// Stable registry name of the routine.
    routine: String,
    /// Mean wall time per whole-problem call, nanoseconds.
    ns_per_iter: f64,
    /// Whether the selector picked this routine for this shape.
    selected: bool,
    /// Whether this is the family's priority-0 (PR 5) default.
    family_default: bool,
}

/// The selector's decision at one measured shape (schema v3).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SelectionBench {
    /// GEMM family.
    op: String,
    /// Human-readable shape.
    shape: String,
    /// Routine the selector chose under the run's autotune mode.
    routine: String,
    /// Whether the choice came from a measured table entry (autotune on
    /// with a timer) rather than the static heuristic.
    measured: bool,
}

/// Autotune cache counters over the whole bench run (schema v3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct AutotuneBench {
    /// `on` or `off` — resolved `SALIENCY_AUTOTUNE` for this run.
    mode: String,
    /// Total selector lookups.
    lookups: u64,
    /// Lookups answered from the cached selection table.
    table_hits: u64,
    /// Shapes decided by measurement.
    measured: u64,
    /// Lookups decided by the static heuristic.
    heuristic: u64,
}

/// End-to-end throughput numbers (single thread).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PipelineBench {
    /// Frames scored per second through `NoveltyDetector::score_batch`.
    score_batch_frames_per_sec: f64,
    /// Frames processed per second through a warmed `StreamRuntime`.
    stream_frames_per_sec: f64,
}

/// Scratch-pool effectiveness over the stream run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScratchBench {
    /// Pool takes served from a recycled buffer.
    hits: u64,
    /// Pool takes that had to allocate.
    misses: u64,
    /// Bytes newly allocated through the pool.
    bytes_allocated: u64,
    /// hits / (hits + misses), 0 when the pool is idle.
    hit_rate: f64,
}

/// Multi-tenant serve throughput at one fleet size (single thread).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeBench {
    /// Tenant count.
    tenants: u64,
    /// Aggregate decisions per second through the `StreamServer`
    /// (cross-tenant coalesced scoring batches).
    frames_per_sec: f64,
    /// The same frames through one batch-1 `StreamRuntime` per tenant,
    /// served round-robin — what serving would cost without coalescing.
    sequential_frames_per_sec: f64,
    /// `frames_per_sec / sequential_frames_per_sec`; must exceed 1.0 for
    /// fleets large enough to batch (panel packing amortizes).
    coalesced_speedup: f64,
    /// Mean coalesced scoring-batch size across rounds.
    mean_batch: f64,
    /// Largest coalesced batch observed.
    max_batch: u64,
    /// `[batch_size, rounds]` pairs: how often each coalesced batch size
    /// occurred.
    batch_histogram: Vec<(u64, u64)>,
}

/// The whole report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    /// [`BENCH_SCHEMA_VERSION`] at write time.
    schema_version: u32,
    /// Worker threads pinned for the run (always 1 here).
    threads: u64,
    /// Frame geometry, `[height, width]`.
    image_hw: Vec<u64>,
    /// Kernel microbenchmarks.
    kernels: Vec<KernelBench>,
    /// Per-routine timings at every measured shape (schema v3; `None`
    /// when parsing an older baseline — the vendored serde maps a
    /// missing field to `None`, keeping v2 baselines loadable).
    routines: Option<Vec<RoutineBench>>,
    /// The selector's per-shape decisions (schema v3).
    selections: Option<Vec<SelectionBench>>,
    /// Autotune cache counters for the run (schema v3).
    autotune: Option<AutotuneBench>,
    /// End-to-end throughput.
    pipeline: PipelineBench,
    /// Scratch-pool statistics for the stream segment.
    scratch: ScratchBench,
    /// Multi-tenant serve throughput at growing fleet sizes.
    serve: Vec<ServeBench>,
    /// Numbers measured at the pre-PR kernels on the same machine, for
    /// the recorded before/after trajectory. Empty when not applicable.
    reference: Vec<PipelineBench>,
}

fn time_iters(iters: usize, mut f: impl FnMut()) -> f64 {
    // One warmup call, then a timed batch.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn pseudo(shape: impl Into<ndtensor::Shape>, seed: u64) -> Tensor {
    let shape = shape.into();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Tensor::from_fn(shape, |_| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

/// Pipeline-representative GEMM shapes: the first PilotNet conv layer as
/// im2col GEMM (compact widths, 60×160 input), a mid conv layer, and the
/// autoencoder's large dense layers at batch 1 (the streaming case).
/// Shared by the entry-point benches and the per-routine sweep so the
/// two views of the same shape are directly comparable.
const GEMM_CASES: &[(&str, usize, usize, usize)] = &[
    // conv1 as GEMM: f=8 filters, k=1*5*5, n=28*78 output pixels.
    ("matmul", 8, 25, 2184),
    // conv3 as GEMM: f=16, k=12*5*5, n=4*17.
    ("matmul", 16, 300, 68),
    // dense decode head at batch 1: [1, 64] x [9600, 64]^T.
    ("matmul_a_bt", 1, 64, 9600),
    // dense encode at batch 1: [1, 9600] x [64, 9600]^T.
    ("matmul_a_bt", 1, 9600, 64),
    // dense backward shapes (training path).
    ("matmul_at_b", 32, 64, 9600),
    ("matmul_at_b", 25, 8, 2184),
];

fn op_for(kernel: &str) -> GemmOp {
    match kernel {
        "matmul" => GemmOp::MatMul,
        "matmul_at_b" => GemmOp::MatMulAtB,
        _ => GemmOp::MatMulABt,
    }
}

/// Entry-point benches over [`GEMM_CASES`].
///
/// Schema v3 times the `_into` entry points over a recycled output
/// buffer: the scoring hot path runs on `ndtensor::scratch` storage, and
/// the allocating wrappers' per-call mmap churn (≈0.4 ms on the 1.2 MB
/// backward shape) would otherwise swamp the kernel being measured.
fn kernel_benches(iters: usize) -> Vec<KernelBench> {
    let mut out = Vec::new();
    for &(kernel, m, k, n) in GEMM_CASES {
        let mut c = vec![0.0f32; m * n];
        let ns = match kernel {
            "matmul" => {
                let a = pseudo([m, k], 11);
                let b = pseudo([k, n], 12);
                time_iters(iters, || {
                    matmul_into(black_box(&a), black_box(&b), &mut c).expect("matmul");
                    black_box(&mut c);
                })
            }
            "matmul_a_bt" => {
                let a = pseudo([m, k], 13);
                let b = pseudo([n, k], 14);
                time_iters(iters, || {
                    matmul_a_bt_into(black_box(&a), black_box(&b), &mut c).expect("matmul_a_bt");
                    black_box(&mut c);
                })
            }
            "matmul_at_b" => {
                let a = pseudo([k, m], 15);
                let b = pseudo([k, n], 16);
                time_iters(iters, || {
                    matmul_at_b_into(black_box(&a), black_box(&b), &mut c).expect("matmul_at_b");
                    black_box(&mut c);
                })
            }
            _ => unreachable!(),
        };
        out.push(KernelBench {
            kernel: kernel.to_string(),
            shape: format!("m{m} k{k} n{n}"),
            ns_per_iter: ns,
        });
    }
    out
}

/// Flat dense pseudo-random operand, matching the entry-point benches'
/// distribution (no exact zeros, so skip-vs-dense paths are comparable).
fn pseudo_flat(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// Times every registered routine applicable to each measured shape
/// through [`routines::run_serial`] — the exact body the autotuner
/// measures — and records the selector's per-shape decision under the
/// run's autotune mode.
fn routine_benches(iters: usize) -> (Vec<RoutineBench>, Vec<SelectionBench>) {
    let mut rows = Vec::new();
    let mut selections = Vec::new();
    for &(kernel, m, k, n) in GEMM_CASES {
        let op = op_for(kernel);
        let shape = format!("m{m} k{k} n{n}");
        // Operand layouts per family: `a` is [m,k] ([k,m] for AtB), `b`
        // is [k,n] ([n,k] for ABt) — the flat lengths coincide.
        let a = pseudo_flat(m * k, 21);
        let b = pseudo_flat(k * n, 22);
        let mut out = vec![0.0f32; m * n];
        let selected = routines::select(op, m, k, n);
        let family_default = routines::default_routine(op);
        let measured = routines::selection_table()
            .iter()
            .any(|e| e.op == op && e.m == m && e.k == k && e.n == n && e.measured);
        selections.push(SelectionBench {
            op: op.as_str().to_string(),
            shape: shape.clone(),
            routine: selected.name.to_string(),
            measured,
        });
        for routine in routines::candidates(op, m, k, n) {
            let ns = time_iters(iters, || {
                routines::run_serial(routine, m, k, n, &a, &b, &mut out);
                black_box(&mut out);
            });
            rows.push(RoutineBench {
                op: op.as_str().to_string(),
                shape: shape.clone(),
                routine: routine.name.to_string(),
                ns_per_iter: ns,
                selected: routine.name == selected.name,
                family_default: routine.name == family_default.name,
            });
        }
    }
    (rows, selections)
}

/// Trains the bench detector: paper geometry (60×160, VBP + SSIM), quick
/// weights — throughput does not depend on weight quality.
fn train_detector() -> NoveltyDetector {
    let data = DatasetConfig::outdoor().with_len(24).generate(7);
    NoveltyDetectorBuilder::paper()
        .cnn_epochs(1)
        .classifier_config(ClassifierConfig {
            epochs: 1,
            warmup_epochs: 0,
            objective: ReconstructionObjective::paper_ssim(),
            ..ClassifierConfig::paper()
        })
        .seed(1)
        .train(&data)
        .expect("bench detector trains")
}

/// Accumulators produced by the measured serve loop.
struct RoundTiming {
    decisions_total: u64,
    histogram: std::collections::BTreeMap<u64, u64>,
    serve_secs: f64,
    sequential_secs: f64,
}

/// The measured serve loop, separated from setup so the sncheck hot-root
/// cone covers exactly the code being timed. Interleaves the coalesced
/// and sequential measurements round-by-round so clock-frequency drift
/// and cache-state drift hit both paths equally: the gap being measured
/// is only a few percent.
// sncheck:hot-root
fn timed_rounds(
    server: &mut StreamServer,
    runtimes: &mut [StreamRuntime],
    batch: &[Image],
    tenants: usize,
    rounds: usize,
) -> RoundTiming {
    let frame_for = |t: usize, round: usize| &batch[(t + round) % batch.len()];
    let mut timing = RoundTiming {
        decisions_total: 0,
        histogram: std::collections::BTreeMap::new(),
        serve_secs: 0.0,
        sequential_secs: 0.0,
    };
    for round in 0..rounds {
        let start = Instant::now(); // sncheck:allow(hot-path-transitive-clock): this IS the stopwatch — the bench measures the hot path, the read sits outside the per-tenant scoring work
        for t in 0..tenants {
            server
                .offer(t, Some(frame_for(t, round).clone()))
                .expect("offer"); // sncheck:allow(hot-path-transitive-panic): tenant ids are in range by construction and the queue is lossless; aborting beats timing a half-fed server
        }
        let decisions = server.step();
        timing.serve_secs += start.elapsed().as_secs_f64();
        let coalesced = decisions
            .iter()
            .filter(|(_, d)| d.source == DecisionSource::Scored)
            .count() as u64;
        *timing.histogram.entry(coalesced).or_insert(0) += 1;
        timing.decisions_total += decisions.len() as u64;

        let start = Instant::now(); // sncheck:allow(hot-path-transitive-clock): stopwatch for the sequential baseline half of the same round
        for (t, runtime) in runtimes.iter_mut().enumerate() {
            let _ = black_box(runtime.process(Some(frame_for(t, round))));
        }
        timing.sequential_secs += start.elapsed().as_secs_f64();
    }
    timing
}

/// Measures aggregate multi-tenant throughput: `total` clean frames spread
/// round-robin over `tenants` lanes through one `StreamServer` (coalesced
/// cross-tenant batches), against the same schedule through one batch-1
/// `StreamRuntime` per tenant.
fn serve_bench(
    detector: &NoveltyDetector,
    batch: &[Image],
    tenants: usize,
    total: usize,
) -> ServeBench {
    // Lossless queue: the bench measures scoring throughput, not shedding.
    let queue = QueueConfig {
        capacity: tenants.max(4),
        drain: tenants.max(4),
        max_wait_rounds: u64::MAX,
    };
    // At least 6 interleaved round-pairs: large fleets would otherwise
    // measure so few pairs that drift-cancellation loses its grip.
    let rounds = (total / tenants).max(6);
    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|i| {
            TenantSpec::new(format!("bench-{i}"), StreamConfig::for_detector(detector))
                .with_queue(queue)
        })
        .collect();
    let frame_for = |t: usize, round: usize| &batch[(t + round) % batch.len()];

    let mut server = StreamServer::new(detector, specs).expect("bench server");
    // Warmup round: fills the scratch pool and packs weight panels.
    for t in 0..tenants {
        server
            .offer(t, Some(frame_for(t, 0).clone()))
            .expect("offer");
    }
    let _ = server.step();

    // Sequential baseline lanes: identical schedule, one batch-1 runtime
    // per tenant.
    let mut runtimes: Vec<StreamRuntime> = (0..tenants)
        .map(|_| {
            StreamRuntime::new(detector, StreamConfig::for_detector(detector))
                .expect("bench runtime")
        })
        .collect();
    for (t, runtime) in runtimes.iter_mut().enumerate() {
        let _ = runtime.process(Some(frame_for(t, 0))); // warmup
    }

    let timing = timed_rounds(&mut server, &mut runtimes, batch, tenants, rounds);
    let RoundTiming {
        decisions_total,
        histogram,
        serve_secs,
        sequential_secs,
    } = timing;
    assert_eq!(
        server.pending(),
        0,
        "lossless bench queue drained each round"
    );
    let frames_per_sec = decisions_total as f64 / serve_secs;
    let sequential_frames_per_sec = (rounds * tenants) as f64 / sequential_secs;

    let observed: u64 = histogram.values().sum();
    let weighted: u64 = histogram.iter().map(|(size, count)| size * count).sum();
    ServeBench {
        tenants: tenants as u64,
        frames_per_sec,
        sequential_frames_per_sec,
        coalesced_speedup: frames_per_sec / sequential_frames_per_sec,
        mean_batch: if observed == 0 {
            0.0
        } else {
            weighted as f64 / observed as f64
        },
        max_batch: histogram.keys().next_back().copied().unwrap_or(0),
        batch_histogram: histogram.into_iter().collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut check_path: Option<String> = None;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 1;
            }
            "--check" if i + 1 < args.len() => {
                check_path = Some(args[i + 1].clone());
                i += 1;
            }
            "--quick" => quick = true,
            other => {
                eprintln!("bench_pipeline: unknown argument `{other}`");
                eprintln!("usage: bench_pipeline [--out PATH] [--check PATH] [--quick]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Single-thread throughout: the acceptance criterion is the 1-core
    // (CI container) number, where the thread pool cannot help.
    set_thread_config(ThreadConfig::serial());

    // Install the sanctioned kernel timer so `SALIENCY_AUTOTUNE=on`
    // means *measured* selection rather than the heuristic fallback.
    obs::install_kernel_timer();
    let autotune_mode = match routines::autotune_mode() {
        routines::AutotuneMode::On => "on",
        routines::AutotuneMode::Off => "off",
    };
    eprintln!("bench_pipeline: autotune {autotune_mode}");

    let kernel_iters = if quick { 20 } else { 200 };
    let frames = if quick { 12 } else { 48 };

    eprintln!("bench_pipeline: kernels ({kernel_iters} iters each)");
    let kernels = kernel_benches(kernel_iters);

    eprintln!("bench_pipeline: per-routine sweep ({kernel_iters} iters each)");
    let (routine_rows, selections) = routine_benches(kernel_iters);
    for sel in &selections {
        eprintln!(
            "bench_pipeline: selected {} for {} {} ({})",
            sel.routine,
            sel.op,
            sel.shape,
            if sel.measured {
                "measured"
            } else {
                "heuristic"
            }
        );
    }
    // Selection-quality gate: on every measured shape the selector's
    // choice must not lose to the PR 5 priority-0 default it replaced.
    // The gate exists to catch gross mis-selection (a tiling whose
    // accumulators spill, a GEMV routed to a wide problem — integer
    // factors), so the tolerance sits well above run-to-run noise:
    // near-tie shapes (the batch-1 dense layers) jitter ±15% between
    // runs on a busy host.
    let tolerance = if quick { 1.6 } else { 1.25 };
    for sel in &selections {
        let ns_of = |name: &str| {
            routine_rows
                .iter()
                .find(|r| r.op == sel.op && r.shape == sel.shape && r.routine == name)
                .map(|r| r.ns_per_iter)
        };
        let (Some(chosen), Some(default_ns)) = (
            ns_of(&sel.routine),
            routine_rows
                .iter()
                .find(|r| r.op == sel.op && r.shape == sel.shape && r.family_default)
                .map(|r| r.ns_per_iter),
        ) else {
            continue;
        };
        assert!(
            chosen <= default_ns * tolerance,
            "bench_pipeline: SELECTION REGRESSION {} {}: selected {} at {:.0} ns/iter \
             is slower than the family default at {:.0} ns/iter",
            sel.op,
            sel.shape,
            sel.routine,
            chosen,
            default_ns
        );
    }

    eprintln!("bench_pipeline: training detector (60x160, quick weights)");
    let detector = train_detector();
    let data = DatasetConfig::outdoor().with_len(frames).generate(9);
    let batch: Vec<_> = data.frames().iter().map(|f| f.image.clone()).collect();

    // score_batch throughput.
    let _ = detector.score_batch(&batch).expect("warmup scores"); // warmup
    let start = Instant::now();
    let scores = detector.score_batch(&batch).expect("bench scores");
    let score_secs = start.elapsed().as_secs_f64();
    black_box(&scores);
    let score_fps = batch.len() as f64 / score_secs;
    eprintln!("bench_pipeline: score_batch {score_fps:.2} frames/sec");

    // Warmed stream throughput + scratch stats over the measured span.
    let stream_config = StreamConfig::for_detector(&detector);
    let mut runtime = StreamRuntime::new(&detector, stream_config).expect("stream runtime");
    for image in batch.iter().take(4) {
        let _ = runtime.process(Some(image)); // warmup
    }
    let scratch_before = ndtensor::scratch::stats();
    let start = Instant::now();
    for image in &batch {
        let _ = black_box(runtime.process(Some(image)));
    }
    let stream_secs = start.elapsed().as_secs_f64();
    let scratch_delta = ndtensor::scratch::stats().since(scratch_before);
    let stream_fps = batch.len() as f64 / stream_secs;
    eprintln!("bench_pipeline: stream {stream_fps:.2} frames/sec");

    // Multi-tenant serve: aggregate fps at growing fleet sizes. Total
    // scored work stays comparable across fleet sizes (rounds shrink as
    // tenants grow), except the 64-tenant point which needs one frame per
    // tenant minimum.
    let mut serve = Vec::new();
    // Longer span than the single-stream benches: the coalesced-vs-
    // sequential gap is a few percent, so the measurement needs more
    // frames than the fps numbers do to rise above run-to-run noise.
    let serve_total = if quick { frames } else { frames * 4 };
    for tenants in [1usize, 8, 64] {
        let bench = serve_bench(&detector, &batch, tenants, serve_total);
        eprintln!(
            "bench_pipeline: serve x{tenants} {:.2} frames/sec (sequential {:.2}, speedup {:.2}x, mean batch {:.1})",
            bench.frames_per_sec,
            bench.sequential_frames_per_sec,
            bench.coalesced_speedup,
            bench.mean_batch
        );
        serve.push(bench);
    }

    let autotune_stats = routines::stats();
    let total = scratch_delta.hits + scratch_delta.misses;
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        threads: 1,
        image_hw: vec![60, 160],
        kernels,
        routines: Some(routine_rows),
        selections: Some(selections),
        autotune: Some(AutotuneBench {
            mode: autotune_mode.to_string(),
            lookups: autotune_stats.lookups,
            table_hits: autotune_stats.table_hits,
            measured: autotune_stats.measured,
            heuristic: autotune_stats.heuristic,
        }),
        pipeline: PipelineBench {
            score_batch_frames_per_sec: score_fps,
            stream_frames_per_sec: stream_fps,
        },
        scratch: ScratchBench {
            hits: scratch_delta.hits,
            misses: scratch_delta.misses,
            bytes_allocated: scratch_delta.bytes_allocated,
            hit_rate: if total == 0 {
                0.0
            } else {
                scratch_delta.hits as f64 / total as f64
            },
        },
        serve,
        reference: Vec::new(),
    };

    // The coalesced path must beat per-tenant sequential scoring once the
    // fleet is large enough to batch. Quick runs are too noisy to gate.
    if !quick {
        // Coalescing must stay at least at parity with per-tenant
        // sequential scoring. The margin used to be a solid >1.0x, but
        // the routine registry gave batch-1 scoring a dedicated GEMV,
        // which shrank the very batch-1 penalty coalescing amortizes —
        // the two paths now sit within measurement noise of each other,
        // so the gate allows noise below exact parity while still
        // catching a real coalescing regression.
        for bench in report.serve.iter().filter(|b| b.tenants >= 8) {
            assert!(
                bench.coalesced_speedup >= 0.95,
                "coalesced serve at {} tenants fell behind sequential ({:.2}x < 0.95x)",
                bench.tenants,
                bench.coalesced_speedup
            );
        }
        // A lone tenant rides the single-frame fast path (batch of one
        // scores through scalar classify), so serving must cost the same
        // as a bare StreamRuntime: parity minus measurement noise. The
        // pre-fast-path batch-1 assembly overhead showed up here as a
        // consistent ~0.97x.
        for bench in report.serve.iter().filter(|b| b.tenants == 1) {
            assert!(
                bench.coalesced_speedup >= 0.9,
                "single-tenant serve fell behind a bare StreamRuntime ({:.3}x < 0.9x): \
                 the batch-of-1 fast path regressed",
                bench.coalesced_speedup
            );
        }
    }

    // Load the baseline before writing: with the default --out the check
    // target and the output file are the same path, and writing first
    // would compare the run against itself.
    let baseline = check_path.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("bench_pipeline: cannot read baseline {path}: {e}"));
        let baseline: BenchReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("bench_pipeline: baseline {path} does not parse: {e}"));
        assert!(
            (BENCH_SCHEMA_CHECK_FLOOR..=BENCH_SCHEMA_VERSION).contains(&baseline.schema_version),
            "baseline schema v{} is outside the comparable range v{}..=v{}",
            baseline.schema_version,
            BENCH_SCHEMA_CHECK_FLOOR,
            BENCH_SCHEMA_VERSION
        );
        if baseline.schema_version < BENCH_SCHEMA_VERSION {
            eprintln!(
                "bench_pipeline: baseline is schema v{} (current v{}); \
                 comparing the fields both layouts share",
                baseline.schema_version, BENCH_SCHEMA_VERSION
            );
        }
        baseline
    });

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("report is written");
    eprintln!("bench_pipeline: wrote {out_path}");

    if let Some(baseline) = baseline {
        let mut failed = false;
        let mut gates = vec![
            (
                "score_batch",
                score_fps,
                baseline.pipeline.score_batch_frames_per_sec,
            ),
            (
                "stream",
                stream_fps,
                baseline.pipeline.stream_frames_per_sec,
            ),
        ];
        for now_bench in &report.serve {
            if let Some(then_bench) = baseline
                .serve
                .iter()
                .find(|b| b.tenants == now_bench.tenants)
            {
                gates.push((
                    match now_bench.tenants {
                        1 => "serve x1",
                        8 => "serve x8",
                        _ => "serve x64",
                    },
                    now_bench.frames_per_sec,
                    then_bench.frames_per_sec,
                ));
            }
        }
        for (name, now, then) in gates {
            let floor = 0.8 * then;
            if now < floor {
                eprintln!(
                    "bench_pipeline: REGRESSION {name}: {now:.2} frames/sec < 80% of baseline {then:.2}"
                );
                failed = true;
            } else {
                eprintln!(
                    "bench_pipeline: {name} ok: {now:.2} frames/sec vs baseline {then:.2} (floor {floor:.2})"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
