//! Experiment E5 — reproduces **Figure 6**: reconstruction quality of the
//! two end pipelines.
//!
//! The paper shows that the raw+MSE autoencoder produces blurry
//! reconstructions even for *in-class* images (making target and novel
//! indistinguishable by eye), while the VBP+SSIM autoencoder reconstructs
//! in-class masks cleanly.
//!
//! We dump the (input representation, reconstruction) pairs for one
//! in-class and one novel frame under both pipelines, and report each
//! pair's MSE/SSIM so the qualitative claim has numbers attached.

use bench::{dump_pgm, indoor_dataset, outdoor_dataset, print_header, Scale};
use metrics::{mse, ssim, SsimConfig};
use novelty::{BackendKind, NoveltyDetector, NoveltyDetectorBuilder};
use vision::Image;

fn describe(
    label: &str,
    detector: &NoveltyDetector,
    image: &Image,
) -> Result<(Image, Image), Box<dyn std::error::Error>> {
    let (rep, recon) = detector.reconstruct(image)?;
    let m = mse(&rep, &recon)?;
    let s = ssim(&rep, &recon, &SsimConfig::default())?;
    println!("  {label:<24} recon MSE {m:>8.5}   recon SSIM {s:>6.3}");
    Ok((rep, recon))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    print_header(
        "fig6_reconstructions",
        "Figure 6 (reconstruction quality)",
        scale,
    );

    let outdoor = outdoor_dataset(scale, scale.train_len(), 0xF167);
    let indoor = indoor_dataset(scale, 4, 0xF168);
    let (train, test) = outdoor.split(0.8);
    let in_class = &test.frames()[0].image;
    let novel = &indoor.frames()[0].image;

    for kind in [BackendKind::RawMse, BackendKind::VbpSsim] {
        println!("[{}]", kind.name());
        let detector = NoveltyDetectorBuilder::for_kind(kind)
            .cnn_epochs(scale.cnn_epochs())
            .ae_epochs(scale.ae_epochs())
            .train_fraction(1.0)
            .seed(6)
            .train(&train)?;
        let (rep_in, recon_in) = describe("in-class (outdoor)", &detector, in_class)?;
        let (rep_out, recon_out) = describe("novel (indoor)", &detector, novel)?;
        for (suffix, img) in [
            ("input_inclass", &rep_in),
            ("recon_inclass", &recon_in),
            ("input_novel", &rep_out),
            ("recon_novel", &recon_out),
        ] {
            if let Some(p) = dump_pgm(
                &format!("fig6_{}_{suffix}", kind.name().replace('+', "_")),
                img,
            ) {
                println!("  wrote {}", p.display());
            }
        }
        println!();
    }
    println!("(paper: raw+mse reconstructions are blurry even in-class; vbp+ssim in-class");
    println!(" reconstructions are clean while novel inputs reconstruct to garbage)");
    Ok(())
}
