//! Experiment E2 — reproduces **Figure 3**: MSE cannot tell noise from
//! brightness; SSIM can.
//!
//! The paper engineers two perturbations of the same road image — added
//! Gaussian noise and a brightness increase — so that both have almost
//! the same pixel-wise MSE, then shows SSIM drops sharply for noise
//! (0.64) but barely for brightness (0.98).
//!
//! We follow the same protocol on a rendered outdoor frame: pick a noise
//! level, measure its MSE, then solve for the brightness delta with the
//! same MSE (`Δ = √MSE` before saturation effects), and report both
//! metrics. MSE is reported in the paper's 0–255² intensity convention
//! so magnitudes are comparable to the figure.

use bench::{dump_pgm, outdoor_dataset, print_header, ObsSink, Scale};
use metrics::{mse, ssim, SsimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vision::perturb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let sink = ObsSink::from_env();
    let recorder = sink.recorder();
    print_header("fig3_mse_vs_ssim", "Figure 3 (MSE vs SSIM example)", scale);

    let frame = outdoor_dataset(scale, 1, 0xF163).frames()[0].image.clone();
    let cfg = SsimConfig::default();

    let sigma = 0.075f32;
    let mut rng = StdRng::seed_from_u64(42);
    let noisy = obs::time(recorder, "perturb", || {
        perturb::add_gaussian_noise(&frame, &mut rng, sigma)
    })?;
    let noise_mse = obs::time(recorder, "mse", || mse(&frame, &noisy))?;
    // Brightness shift with (approximately) the same MSE.
    let bright = obs::time(recorder, "perturb", || {
        perturb::adjust_brightness(&frame, noise_mse.sqrt())
    });
    let bright_mse = obs::time(recorder, "mse", || mse(&frame, &bright))?;

    let noise_ssim = obs::time(recorder, "ssim", || ssim(&frame, &noisy, &cfg))?;
    let bright_ssim = obs::time(recorder, "ssim", || ssim(&frame, &bright, &cfg))?;
    recorder.gauge("fig3.noise_mse", noise_mse as f64);
    recorder.gauge("fig3.bright_mse", bright_mse as f64);
    recorder.gauge("fig3.noise_ssim", noise_ssim as f64);
    recorder.gauge("fig3.bright_ssim", bright_ssim as f64);

    let to_255sq = 255.0f32 * 255.0; // paper reports MSE on 0–255 intensities
    println!("                      original    +gaussian noise    +brightness");
    println!(
        "  MSE (0-255 scale)   {:>8.1}    {:>15.1}    {:>11.1}",
        0.0,
        noise_mse * to_255sq,
        bright_mse * to_255sq
    );
    println!(
        "  SSIM                {:>8.2}    {:>15.2}    {:>11.2}",
        1.0, noise_ssim, bright_ssim
    );
    println!();
    println!("  paper reports       MSE 0.0 / 91.7 / 90.6   SSIM 0.0* / 0.64 / 0.98");
    println!("  (*paper's left column lists SSIM 0.0 for the original by convention;");
    println!("   identical images actually score 1.0, as the metric defines)");
    println!();
    let gap = bright_ssim - noise_ssim;
    println!(
        "  SSIM separates the two perturbations by {gap:.2} while their MSEs differ by {:.1}%",
        100.0 * (noise_mse - bright_mse).abs() / noise_mse
    );

    for (name, img) in [
        ("fig3_original", &frame),
        ("fig3_noisy", &noisy),
        ("fig3_bright", &bright),
    ] {
        if let Some(p) = dump_pgm(name, img) {
            println!("  wrote {}", p.display());
        }
    }
    sink.flush("fig3_mse_vs_ssim");
    Ok(())
}
