#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! Shared experiment harness for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` §4 for the index and
//! `EXPERIMENTS.md` for recorded results). They share:
//!
//! * [`Scale`] — experiment sizing. `SALIENCY_NOVELTY_SCALE=quick` runs a
//!   reduced (seconds-scale) variant for smoke testing; the default
//!   `full` matches the paper's sample sizes (500 test images per class).
//! * dataset construction helpers with the paper's 60×160 geometry,
//! * consistent printing of histogram panels and summary tables.

use metrics::histogram::Histogram;
use novelty::eval::EvalReport;
use simdrive::{DatasetConfig, DrivingDataset, World};
use vision::Image;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale: ~1000 training frames, 500 test frames per class.
    Full,
    /// Smoke-test scale: tens of frames, a couple of epochs.
    Quick,
}

impl Scale {
    /// Reads the scale from `SALIENCY_NOVELTY_SCALE` (`quick` or `full`,
    /// default `full`).
    pub fn from_env() -> Scale {
        match std::env::var("SALIENCY_NOVELTY_SCALE").as_deref() {
            Ok("quick") | Ok("QUICK") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Number of frames to generate per training dataset.
    pub fn train_len(&self) -> usize {
        match self {
            Scale::Full => 1000,
            Scale::Quick => 60,
        }
    }

    /// Number of test images sampled per class (paper: 500).
    pub fn test_len(&self) -> usize {
        match self {
            Scale::Full => 500,
            Scale::Quick => 20,
        }
    }

    /// Steering-CNN training epochs.
    pub fn cnn_epochs(&self) -> usize {
        match self {
            Scale::Full => 8,
            Scale::Quick => 2,
        }
    }

    /// Autoencoder training epochs. The paper reports no epoch count; 60
    /// is where reconstruction quality saturates on the synthetic data
    /// (train-set SSIM ≈ 0.64, close to the paper's ≈ 0.7).
    pub fn ae_epochs(&self) -> usize {
        match self {
            Scale::Full => 60,
            Scale::Quick => 12,
        }
    }

    /// Image height (the paper's 60 in both scales — geometry matters to
    /// the pipeline more than sample count).
    pub fn height(&self) -> usize {
        60
    }

    /// Image width.
    pub fn width(&self) -> usize {
        160
    }
}

/// Generates the DSU stand-in (outdoor world) at this scale.
pub fn outdoor_dataset(scale: Scale, len: usize, seed: u64) -> DrivingDataset {
    DatasetConfig::outdoor()
        .with_len(len)
        .with_size(scale.height(), scale.width())
        .generate(seed)
}

/// Generates the DSI stand-in (indoor world) at this scale.
pub fn indoor_dataset(scale: Scale, len: usize, seed: u64) -> DrivingDataset {
    DatasetConfig::indoor()
        .with_len(len)
        .with_size(scale.height(), scale.width())
        .generate(seed)
}

/// Generates either world.
pub fn world_dataset(world: World, scale: Scale, len: usize, seed: u64) -> DrivingDataset {
    DatasetConfig::for_world(world)
        .with_len(len)
        .with_size(scale.height(), scale.width())
        .generate(seed)
}

/// Extracts owned images from a dataset.
pub fn images_of(dataset: &DrivingDataset) -> Vec<Image> {
    dataset.frames().iter().map(|f| f.image.clone()).collect()
}

/// Prints one histogram panel (the textual analogue of a Fig. 5/7
/// subplot).
pub fn print_histogram_panel(title: &str, histogram: &Histogram) {
    println!("  {title}");
    for row in histogram.render_rows(46) {
        println!("    {row}");
    }
}

/// Prints a full evaluation report in the format the figures use:
/// target/novel histogram pair plus the summary line.
///
/// # Panics
///
/// Panics when the report's scores cannot be histogrammed (empty samples
/// cannot occur for reports produced by `novelty::eval::evaluate`).
pub fn print_eval_report(label: &str, report: &EvalReport, bins: usize) {
    let (target_hist, novel_hist) = report
        .histograms(bins)
        .expect("evaluate() guarantees non-empty, finite scores");
    println!("{label}");
    print_histogram_panel("target class:", &target_hist);
    print_histogram_panel("novel class:", &novel_hist);
    println!("  summary: {report}");
    println!();
}

/// Writes an image as PGM into `out/` (created on demand), returning the
/// path. Failures are printed, not fatal — figure binaries should not die
/// on a read-only filesystem.
pub fn dump_pgm(name: &str, image: &Image) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("out");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create out/: {e}");
        return None;
    }
    let path = dir.join(format!("{name}.pgm"));
    match vision::io::save_pgm(image, &path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Writes an RGB image as PPM into `out/`.
pub fn dump_ppm(name: &str, image: &vision::RgbImage) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("out");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create out/: {e}");
        return None;
    }
    let path = dir.join(format!("{name}.ppm"));
    match vision::io::save_ppm(image, &path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Observability sink for the figure binaries, controlled by the
/// `SALIENCY_NOVELTY_OBS_OUT` environment variable. When set, a live
/// [`obs::RunRecorder`] collects the run and [`ObsSink::flush`] writes a
/// report in the same schema the CLI's `--obs-out` flag produces (so
/// `saliency-novelty report --file …` reads both). When unset, every
/// probe goes to the no-op recorder and costs nothing.
#[derive(Debug)]
pub struct ObsSink {
    recorder: Option<obs::RunRecorder>,
    path: Option<std::path::PathBuf>,
}

impl ObsSink {
    /// Builds the sink from `SALIENCY_NOVELTY_OBS_OUT`.
    pub fn from_env() -> ObsSink {
        match std::env::var_os("SALIENCY_NOVELTY_OBS_OUT") {
            Some(path) if !path.is_empty() => ObsSink {
                recorder: Some(obs::RunRecorder::new()),
                path: Some(path.into()),
            },
            _ => ObsSink {
                recorder: None,
                path: None,
            },
        }
    }

    /// The recorder to thread through pipeline calls.
    pub fn recorder(&self) -> &dyn obs::Recorder {
        match &self.recorder {
            Some(r) => r,
            None => obs::noop(),
        }
    }

    /// Writes the report if recording is enabled. Failures are printed,
    /// not fatal — figure binaries should not die on a read-only
    /// filesystem.
    pub fn flush(&self, command: &str) {
        if let (Some(recorder), Some(path)) = (&self.recorder, &self.path) {
            match recorder.report(command).save(path) {
                Ok(()) => println!("wrote observability report to {}", path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    }
}

/// Prints the standard experiment header.
pub fn print_header(experiment: &str, paper_artifact: &str, scale: Scale) {
    println!("================================================================");
    println!("{experiment} — reproduces {paper_artifact}");
    println!("scale: {scale:?} (set SALIENCY_NOVELTY_SCALE=quick for a fast run)");
    println!("================================================================");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        // Default is Full (the variable is unlikely to be set in tests;
        // handle both to stay hermetic).
        match std::env::var("SALIENCY_NOVELTY_SCALE").as_deref() {
            Ok("quick") => assert_eq!(Scale::from_env(), Scale::Quick),
            _ => assert_eq!(Scale::from_env(), Scale::Full),
        }
        assert!(Scale::Full.train_len() > Scale::Quick.train_len());
        assert!(Scale::Full.test_len() > Scale::Quick.test_len());
        assert_eq!(Scale::Full.height(), 60);
        assert_eq!(Scale::Full.width(), 160);
    }

    #[test]
    fn obs_sink_roundtrips_through_env() {
        // Unset (or empty) → no-op recorder, flush writes nothing.
        std::env::remove_var("SALIENCY_NOVELTY_OBS_OUT");
        let sink = ObsSink::from_env();
        assert!(!sink.recorder().enabled());
        sink.flush("noop");

        let dir = std::env::temp_dir().join("saliency_novelty_obs_sink");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        std::env::set_var("SALIENCY_NOVELTY_OBS_OUT", &path);
        let sink = ObsSink::from_env();
        std::env::remove_var("SALIENCY_NOVELTY_OBS_OUT");
        assert!(sink.recorder().enabled());
        obs::time(sink.recorder(), "stage", || std::hint::black_box(0));
        sink.flush("bench-test");
        let report = obs::RunReport::load(&path).unwrap();
        assert_eq!(report.command, "bench-test");
        assert!(report.stage("stage").is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dataset_helpers_respect_scale() {
        let ds = outdoor_dataset(Scale::Quick, 4, 1);
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.frames()[0].image.height(), 60);
        assert_eq!(ds.frames()[0].image.width(), 160);
        let di = indoor_dataset(Scale::Quick, 3, 1);
        assert_eq!(di.world(), World::Indoor);
        assert_eq!(world_dataset(World::Outdoor, Scale::Quick, 2, 1).len(), 2);
        assert_eq!(images_of(&ds).len(), 4);
    }
}
