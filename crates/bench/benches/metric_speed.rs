//! Latency of the similarity metrics on the paper's 60×160 images:
//! pixel-wise MSE, windowed SSIM (integral-image implementation), and
//! SSIM with its analytic gradient (the cost added to every autoencoder
//! training step when switching the objective from MSE to SSIM).

use criterion::{criterion_group, criterion_main, Criterion};
use metrics::{mse, ssim, ssim_with_grad, SsimConfig};
use std::hint::black_box;
use vision::Image;

fn pair() -> (Image, Image) {
    let a = Image::from_fn(60, 160, |y, x| ((y * 11 + x * 5) % 19) as f32 / 18.0)
        .expect("non-zero dimensions");
    let b = a.map(|v| (v * 0.9 + 0.03).min(1.0));
    (a, b)
}

fn metric_speed(c: &mut Criterion) {
    let (a, b) = pair();
    let cfg = SsimConfig::default();

    let mut group = c.benchmark_group("metric_per_image_60x160");
    group.bench_function("mse", |bch| {
        bch.iter(|| mse(black_box(&a), black_box(&b)).unwrap())
    });
    group.bench_function("ssim_w11", |bch| {
        bch.iter(|| ssim(black_box(&a), black_box(&b), &cfg).unwrap())
    });
    group.bench_function("ssim_with_grad_w11", |bch| {
        bch.iter(|| ssim_with_grad(black_box(&a), black_box(&b), &cfg).unwrap())
    });
    group.bench_function("ssim_w5", |bch| {
        bch.iter(|| ssim(black_box(&a), black_box(&b), &SsimConfig::with_window(5)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, metric_speed);
criterion_main!(benches);
